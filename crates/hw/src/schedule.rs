//! The Fig. 5 duty sequence and daily energy budgets (Table IV, Fig. 6).

use crate::kernel::{CalibratedCycleModel, PredictionKernel};
use crate::supply::{AdcModel, Supply};

/// The per-day sampling/prediction schedule: `n` wake-ups per day, one
/// acquisition and one prediction each.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SamplingSchedule {
    /// Wake-ups (slots) per day — the paper's N.
    pub n: usize,
}

impl SamplingSchedule {
    /// Creates a schedule with `n` wake-ups per day.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "n must be positive");
        SamplingSchedule { n }
    }

    /// Computes the full daily energy budget for a kernel shape under a
    /// supply/ADC/cycle model.
    pub fn daily_budget(
        &self,
        supply: &Supply,
        adc: &AdcModel,
        cycles: &CalibratedCycleModel,
        kernel: &PredictionKernel,
    ) -> DailyBudget {
        let adc_j = adc.energy_j(supply);
        let prediction_j = cycles.cycles(kernel) * supply.energy_per_cycle_j();
        let per_wake_j = adc_j + prediction_j;
        let active_per_day_j = per_wake_j * self.n as f64;
        let sleep_per_day_j = supply.sleep_energy_per_day_j();
        DailyBudget {
            n: self.n,
            adc_j,
            prediction_j,
            per_wake_j,
            active_per_day_j,
            sleep_per_day_j,
            overhead_fraction: active_per_day_j / sleep_per_day_j,
        }
    }
}

/// The daily energy budget of harvested-power sampling + prediction —
/// everything in the paper's Table IV bottom rows and Fig. 6.
#[derive(Copy, Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DailyBudget {
    /// Wake-ups per day.
    pub n: usize,
    /// Energy of one acquisition in joules.
    pub adc_j: f64,
    /// Energy of one prediction in joules.
    pub prediction_j: f64,
    /// Energy of one full wake-up (acquisition + prediction).
    pub per_wake_j: f64,
    /// Total sampling + prediction energy per day.
    pub active_per_day_j: f64,
    /// Deep-sleep energy per day.
    pub sleep_per_day_j: f64,
    /// `active_per_day / sleep_per_day` — the paper's Fig. 6 overhead.
    pub overhead_fraction: f64,
}

impl DailyBudget {
    /// Overhead as a percentage, as printed in Fig. 6.
    pub fn overhead_pct(&self) -> f64 {
        self.overhead_fraction * 100.0
    }
}

impl std::fmt::Display for DailyBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "N={}: {:.1} µJ/wake, {:.2} mJ/day active, {:.2}% of sleep",
            self.n,
            self.per_wake_j * 1e6,
            self.active_per_day_j * 1e3,
            self.overhead_pct()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget(n: usize, k: usize, alpha: f64) -> DailyBudget {
        SamplingSchedule::new(n).daily_budget(
            &Supply::msp430f1611(),
            &AdcModel::msp430_paper(),
            &CalibratedCycleModel::paper(),
            &PredictionKernel::new(k, alpha),
        )
    }

    #[test]
    fn per_wake_energy_near_paper_60_microjoules() {
        // The paper takes "roughly 60 µJ" per wake (55 ADC + ~5
        // prediction) for its Fig. 6 arithmetic.
        let b = budget(48, 2, 0.7);
        assert!((b.per_wake_j - 60.0e-6).abs() < 2.0e-6, "{}", b.per_wake_j);
    }

    #[test]
    fn table_iv_daily_totals() {
        // Paper: 48 samples/day @55 µJ = 2640 µJ; with prediction @60 µJ
        // = 2880 µJ per day.
        let b = budget(48, 2, 0.7);
        let adc_only = b.adc_j * 48.0;
        assert!((adc_only - 2640e-6).abs() < 30e-6, "{adc_only}");
        assert!((b.active_per_day_j - 2880e-6).abs() < 100e-6);
    }

    #[test]
    fn fig6_overhead_shape() {
        // Paper Fig. 6: 4.85%, 1.62%, 1.21%, 0.81%, 0.40% at
        // N = 288, 96, 72, 48, 24 (with sleep rounded to 356 mJ; we use
        // the exact 362.9 mJ, landing within 3%).
        let paper = [(288, 4.85), (96, 1.62), (72, 1.21), (48, 0.81), (24, 0.40)];
        for (n, expect) in paper {
            let b = budget(n, 2, 0.7);
            let got = b.overhead_pct();
            assert!(
                (got - expect).abs() / expect < 0.06,
                "N={n}: got {got:.2}%, paper {expect}%"
            );
        }
    }

    #[test]
    fn overhead_scales_linearly_in_n() {
        let b24 = budget(24, 2, 0.7);
        let b288 = budget(288, 2, 0.7);
        let ratio = b288.overhead_fraction / b24.overhead_fraction;
        assert!((ratio - 12.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_dominates_prediction_at_high_n() {
        // The paper's §IV-B observation: at N = 288 the overhead is
        // dominated by the ADC, not the prediction.
        let b = budget(288, 1, 1.0);
        assert!(b.adc_j / b.per_wake_j > 0.9);
    }

    #[test]
    fn display_is_informative() {
        let b = budget(48, 2, 0.7);
        let s = b.to_string();
        assert!(s.contains("N=48"));
        assert!(s.contains('%'));
    }

    #[test]
    #[should_panic(expected = "n must be positive")]
    fn zero_n_panics() {
        let _ = SamplingSchedule::new(0);
    }
}
