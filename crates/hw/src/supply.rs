//! Supply, clock and ADC electrical parameters.

/// Electrical operating point of the microcontroller.
///
/// # Example
///
/// ```
/// use msp430_energy::Supply;
///
/// let supply = Supply::msp430f1611();
/// // 3 V, 5 MHz, 0.5 mA/MHz active: 1.5 nJ per cycle.
/// assert!((supply.energy_per_cycle_j() - 1.5e-9).abs() < 1e-15);
/// ```
#[derive(Copy, Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Supply {
    /// Supply voltage in volts.
    pub voltage_v: f64,
    /// CPU clock in hertz.
    pub frequency_hz: f64,
    /// Active-mode current in amperes at this voltage/clock.
    pub active_current_a: f64,
    /// Deep-sleep (LPM3, wake-up timer running) current in amperes.
    pub sleep_current_a: f64,
}

impl Supply {
    /// The paper's operating point: MSP430F1611 at 3 V / 5 MHz, active
    /// current 0.5 mA/MHz, sleep current 1.4 µA (the paper's stated
    /// figure).
    pub fn msp430f1611() -> Self {
        Supply {
            voltage_v: 3.0,
            frequency_hz: 5.0e6,
            active_current_a: 2.5e-3,
            sleep_current_a: 1.4e-6,
        }
    }

    /// Energy of one active CPU cycle in joules: `V · I_active / f`.
    pub fn energy_per_cycle_j(&self) -> f64 {
        self.voltage_v * self.active_current_a / self.frequency_hz
    }

    /// Deep-sleep power draw in watts.
    pub fn sleep_power_w(&self) -> f64 {
        self.voltage_v * self.sleep_current_a
    }

    /// Deep-sleep energy over one day in joules. With the paper's 1.4 µA
    /// at 3 V this is 362.9 mJ (the paper rounds to 356 mJ).
    pub fn sleep_energy_per_day_j(&self) -> f64 {
        self.sleep_power_w() * 86_400.0
    }
}

/// Energy model of one harvested-power acquisition: voltage-reference
/// settling (the dominant term — the MCU sleeps with the reference
/// powered for 45 ms) plus the conversion itself.
#[derive(Copy, Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AdcModel {
    /// Reference settling time in seconds (paper: 45 ms).
    pub vref_settle_s: f64,
    /// Current drawn while the reference settles, in amperes.
    pub vref_current_a: f64,
    /// Conversion time in seconds.
    pub conversion_s: f64,
    /// Current during conversion in amperes.
    pub conversion_current_a: f64,
}

impl AdcModel {
    /// Calibrated to the paper's 55 µJ per acquisition at 3 V: the
    /// 45 ms settle at ~405 µA (reference + timer) dominates; the
    /// conversion itself contributes well under a microjoule.
    pub fn msp430_paper() -> Self {
        AdcModel {
            vref_settle_s: 45.0e-3,
            vref_current_a: 405.0e-6,
            conversion_s: 130.0e-6,
            conversion_current_a: 800.0e-6,
        }
    }

    /// Energy of one acquisition in joules at a given supply.
    pub fn energy_j(&self, supply: &Supply) -> f64 {
        supply.voltage_v
            * (self.vref_settle_s * self.vref_current_a
                + self.conversion_s * self.conversion_current_a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_energy_matches_hand_computation() {
        let s = Supply::msp430f1611();
        assert!((s.energy_per_cycle_j() - 3.0 * 2.5e-3 / 5.0e6).abs() < 1e-18);
    }

    #[test]
    fn sleep_day_energy_near_paper_value() {
        let s = Supply::msp430f1611();
        let day = s.sleep_energy_per_day_j();
        // 1.4 µA · 3 V · 86400 s = 362.88 mJ; the paper rounds to 356 mJ.
        assert!((day - 0.36288).abs() < 1e-9);
        assert!((day - 0.356).abs() / 0.356 < 0.03, "within 3% of the paper");
    }

    #[test]
    fn adc_energy_is_55_microjoules() {
        let adc = AdcModel::msp430_paper();
        let e = adc.energy_j(&Supply::msp430f1611());
        assert!((e - 55.0e-6).abs() < 0.5e-6, "adc energy {e}");
    }

    #[test]
    fn vref_settle_dominates_adc_energy() {
        let adc = AdcModel::msp430_paper();
        let s = Supply::msp430f1611();
        let settle = s.voltage_v * adc.vref_settle_s * adc.vref_current_a;
        assert!(settle / adc.energy_j(&s) > 0.95);
    }
}
