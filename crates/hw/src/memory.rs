//! Memory footprint of the prediction algorithm's state.
//!
//! The paper motivates the D ≈ 10–11 guideline partly by the "samples
//! storage memory requirement of prediction algorithm": the `E_{D×N}`
//! history matrix is the dominant RAM consumer, and the MSP430F1611 has
//! only 10 KiB of RAM to share with the application. This module prices
//! the predictor state for the storage formats an MCU port would use.

/// How one power sample is stored in the history matrix.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum SampleFormat {
    /// IEEE-754 single precision (4 bytes) — the software-float port.
    F32,
    /// Q16.16 fixed point (4 bytes).
    Q16,
    /// Raw 12-bit ADC counts packed in 16 bits (2 bytes) — what a
    /// memory-tight port stores, converting on use.
    AdcU16,
}

impl SampleFormat {
    /// Bytes per stored sample.
    pub const fn bytes(self) -> usize {
        match self {
            SampleFormat::F32 | SampleFormat::Q16 => 4,
            SampleFormat::AdcU16 => 2,
        }
    }
}

impl std::fmt::Display for SampleFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleFormat::F32 => write!(f, "f32"),
            SampleFormat::Q16 => write!(f, "Q16.16"),
            SampleFormat::AdcU16 => write!(f, "u16 ADC"),
        }
    }
}

/// MSP430F1611 RAM size in bytes (10 KiB).
pub const MSP430F1611_RAM_BYTES: usize = 10 * 1024;

/// Memory footprint of one WCMA predictor configuration.
///
/// # Example
///
/// ```
/// use msp430_energy::memory::{MemoryFootprint, SampleFormat};
///
/// let fp = MemoryFootprint::wcma(20, 48, 6, SampleFormat::F32);
/// // The paper's D=20, N=48 history alone is 20·48·4 = 3840 bytes.
/// assert_eq!(fp.history_bytes, 3840);
/// assert!(fp.fits_msp430f1611());
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemoryFootprint {
    /// Bytes of the `E_{D×N}` history matrix.
    pub history_bytes: usize,
    /// Bytes of the current-day vector (`Ẽ_N`).
    pub current_day_bytes: usize,
    /// Bytes of per-slot running means (the incremental-μ optimization
    /// that keeps the kernel O(K)).
    pub means_bytes: usize,
    /// Bytes of the K-deep ratio ring and scalar state.
    pub scratch_bytes: usize,
}

impl MemoryFootprint {
    /// Footprint of a WCMA configuration (history depth `d`, `n` slots
    /// per day, window `k`) with samples stored in `format`.
    ///
    /// Running means and ratios always use the arithmetic word (4 bytes):
    /// they are computed quantities, not raw samples.
    pub fn wcma(d: usize, n: usize, k: usize, format: SampleFormat) -> Self {
        MemoryFootprint {
            history_bytes: d * n * format.bytes(),
            current_day_bytes: n * format.bytes(),
            means_bytes: n * 4,
            scratch_bytes: k * 4 + 16,
        }
    }

    /// Footprint of the Kansal EWMA baseline (one estimate per slot).
    pub fn ewma(n: usize) -> Self {
        MemoryFootprint {
            history_bytes: 0,
            current_day_bytes: 0,
            means_bytes: n * 4,
            scratch_bytes: 8,
        }
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> usize {
        self.history_bytes + self.current_day_bytes + self.means_bytes + self.scratch_bytes
    }

    /// Fraction of the MSP430F1611's RAM this state occupies.
    pub fn msp430f1611_fraction(&self) -> f64 {
        self.total_bytes() as f64 / MSP430F1611_RAM_BYTES as f64
    }

    /// Whether the state leaves at least half the MSP430F1611 RAM to the
    /// application — the practical deployability bar.
    pub fn fits_msp430f1611(&self) -> bool {
        self.total_bytes() * 2 <= MSP430F1611_RAM_BYTES
    }
}

impl std::fmt::Display for MemoryFootprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} B total ({} history + {} day + {} means + {} scratch)",
            self.total_bytes(),
            self.history_bytes,
            self.current_day_bytes,
            self.means_bytes,
            self.scratch_bytes
        )
    }
}

/// The largest history depth D whose WCMA state still passes
/// [`MemoryFootprint::fits_msp430f1611`] at the given `n`, `k` and
/// `format`; `None` if even D = 1 does not fit.
pub fn max_feasible_d(n: usize, k: usize, format: SampleFormat) -> Option<usize> {
    (1..=512)
        .take_while(|&d| MemoryFootprint::wcma(d, n, k, format).fits_msp430f1611())
        .last()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_sizes() {
        // D=20, N=48 floats: 3840 B history + 192 day + 192 means ≈ 4.2 KiB.
        let fp = MemoryFootprint::wcma(20, 48, 2, SampleFormat::F32);
        assert_eq!(fp.history_bytes, 3840);
        assert_eq!(fp.current_day_bytes, 192);
        assert!(fp.total_bytes() < 4500);
        assert!(fp.fits_msp430f1611());
    }

    #[test]
    fn n288_is_memory_hungry() {
        // D=20 at N=288 in f32 is 23 KiB of history alone — more than
        // twice the MSP430F1611's RAM: the memory side of the paper's
        // N trade-off. Packed ADC storage with a modest D is what keeps
        // N=288 deployable at all.
        let fat = MemoryFootprint::wcma(20, 288, 2, SampleFormat::F32);
        assert!(!fat.fits_msp430f1611());
        let lean = MemoryFootprint::wcma(5, 288, 2, SampleFormat::AdcU16);
        assert!(
            lean.fits_msp430f1611(),
            "lean config uses {} B",
            lean.total_bytes()
        );
        // The guideline D=10 at N=288 exceeds the half-RAM bar even
        // packed — the honest cost of the highest sampling rate.
        let guideline = MemoryFootprint::wcma(10, 288, 2, SampleFormat::AdcU16);
        assert!(!guideline.fits_msp430f1611());
    }

    #[test]
    fn max_feasible_d_monotone_in_n() {
        let d48 = max_feasible_d(48, 2, SampleFormat::F32).unwrap();
        let d288 = max_feasible_d(288, 2, SampleFormat::F32).unwrap();
        assert!(d48 > d288, "d48 {d48} vs d288 {d288}");
        // The paper's D=20 at N=48 is feasible in f32.
        assert!(d48 >= 20);
    }

    #[test]
    fn adc_format_halves_history() {
        let f = MemoryFootprint::wcma(10, 96, 2, SampleFormat::F32);
        let u = MemoryFootprint::wcma(10, 96, 2, SampleFormat::AdcU16);
        assert_eq!(u.history_bytes * 2, f.history_bytes);
    }

    #[test]
    fn ewma_is_tiny() {
        let fp = MemoryFootprint::ewma(288);
        assert!(fp.total_bytes() < 1200);
        assert!(fp.fits_msp430f1611());
    }

    #[test]
    fn formats_display_and_bytes() {
        assert_eq!(SampleFormat::F32.bytes(), 4);
        assert_eq!(SampleFormat::AdcU16.bytes(), 2);
        assert_eq!(SampleFormat::Q16.to_string(), "Q16.16");
        let fp = MemoryFootprint::wcma(2, 4, 1, SampleFormat::F32);
        assert!(fp.to_string().contains("history"));
    }
}
