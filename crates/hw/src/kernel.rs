//! Operation counts and cycle models of the WCMA prediction kernel.

/// The shape of one prediction-kernel invocation: what varies the cost in
/// the paper's Table IV (K and whether the persistence path runs at all).
#[derive(Copy, Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PredictionKernel {
    k: usize,
    alpha: f64,
}

impl PredictionKernel {
    /// Creates a kernel description for window `K` and weight `α`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `α` is not a finite value in `[0, 1]`.
    pub fn new(k: usize, alpha: f64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(
            alpha.is_finite() && (0.0..=1.0).contains(&alpha),
            "alpha must be in [0, 1]"
        );
        PredictionKernel { k, alpha }
    }

    /// The conditioning window K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The weighting α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Whether the persistence path executes (α > 0). At α = 0 firmware
    /// skips converting and weighting the fresh sample — the source of the
    /// Table IV gap between (K=7, α=0.7) and (K=7, α=0).
    pub fn persistence_path(&self) -> bool {
        self.alpha > 0.0
    }

    /// Analytic operation counts of one prediction with the *incremental*
    /// firmware implementation: per-slot running means are updated in
    /// place (subtract oldest, add newest, divide), η ratios are read from
    /// stored means, and the θ weights are precomputed.
    ///
    /// Derivation per prediction:
    ///
    /// * μ update of the just-measured slot: 2 adds + 1 div;
    /// * Φ: K divides (η), K multiplies (θ·η), K adds (Σ), 1 divide
    ///   (normalize);
    /// * blend: 1 multiply (μ·Φ), 1 multiply ((1−α)·cond), 1 add, plus
    ///   1 multiply (α·ẽ) only when the persistence path runs.
    pub fn op_counts(&self) -> OpCounts {
        let k = self.k as u32;
        OpCounts {
            adds: 2 + k + 1,
            muls: k + 2 + u32::from(self.persistence_path()),
            divs: 1 + k + 1,
        }
    }
}

/// Counts of arithmetic operations of one kernel invocation.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OpCounts {
    /// Additions/subtractions.
    pub adds: u32,
    /// Multiplications.
    pub muls: u32,
    /// Divisions.
    pub divs: u32,
}

impl OpCounts {
    /// Total operation count.
    pub fn total(&self) -> u32 {
        self.adds + self.muls + self.divs
    }
}

impl std::ops::Add for OpCounts {
    type Output = OpCounts;
    fn add(self, rhs: OpCounts) -> OpCounts {
        OpCounts {
            adds: self.adds + rhs.adds,
            muls: self.muls + rhs.muls,
            divs: self.divs + rhs.divs,
        }
    }
}

/// Per-operation cycle costs for an arithmetic style on a 16-bit MCU
/// without hardware multiply/divide support for the type.
#[derive(Copy, Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OpCostModel {
    /// Cycles per addition/subtraction.
    pub cycles_add: f64,
    /// Cycles per multiplication.
    pub cycles_mul: f64,
    /// Cycles per division.
    pub cycles_div: f64,
    /// Fixed per-invocation overhead (call/loop/bookkeeping).
    pub overhead_cycles: f64,
}

impl OpCostModel {
    /// IEEE-754 single-precision software floating point on MSP430
    /// (typical library magnitudes).
    pub fn software_float() -> Self {
        OpCostModel {
            cycles_add: 184.0,
            cycles_mul: 395.0,
            cycles_div: 405.0,
            overhead_cycles: 120.0,
        }
    }

    /// Q16.16 fixed point with 32-bit software multiply/divide.
    pub fn fixed_q16() -> Self {
        OpCostModel {
            cycles_add: 10.0,
            cycles_mul: 150.0,
            cycles_div: 360.0,
            overhead_cycles: 80.0,
        }
    }

    /// Cycles for a set of operation counts.
    pub fn cycles(&self, ops: OpCounts) -> f64 {
        self.overhead_cycles
            + ops.adds as f64 * self.cycles_add
            + ops.muls as f64 * self.cycles_mul
            + ops.divs as f64 * self.cycles_div
    }
}

/// The cycle model calibrated *exactly* to the paper's three Table IV
/// prediction-energy anchors:
///
/// ```text
/// cycles(K, α) = base + per_k · K + [α > 0] · persistence_path
/// ```
///
/// At 1.5 nJ/cycle (3 V, 5 MHz, 0.5 mA/MHz) the anchors give
/// `per_k = 533.3` (one software-float div + mul + add per window slot),
/// `persistence_path = 1266.7` (ADC-sample conversion plus the α
/// multiply-accumulate) and `base = 600`.
#[derive(Copy, Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CalibratedCycleModel {
    /// Fixed per-prediction cycles.
    pub base: f64,
    /// Cycles per window slot K.
    pub per_k: f64,
    /// Cycles of the persistence path (paid when α > 0).
    pub persistence_path: f64,
}

impl CalibratedCycleModel {
    /// The paper-anchored calibration (see type docs).
    pub fn paper() -> Self {
        CalibratedCycleModel {
            base: 600.0,
            per_k: 1600.0 / 3.0,            // 533.33…
            persistence_path: 3800.0 / 3.0, // 1266.67…
        }
    }

    /// Cycles of one prediction for a kernel shape.
    pub fn cycles(&self, kernel: &PredictionKernel) -> f64 {
        self.base
            + self.per_k * kernel.k() as f64
            + if kernel.persistence_path() {
                self.persistence_path
            } else {
                0.0
            }
    }
}

/// A runtime-counting shadow of the incremental WCMA firmware kernel:
/// walks the same arithmetic the firmware performs for one prediction and
/// tallies operations, cross-checking [`PredictionKernel::op_counts`].
///
/// `history` is the stored per-slot mean for each of the K window slots
/// plus the target slot (values only affect nothing — counting is
/// data-independent — but realistic inputs keep the walk honest).
pub fn counted_prediction(
    kernel: &PredictionKernel,
    history_mu: &[f64],
    window: &[f64],
) -> (f64, OpCounts) {
    assert_eq!(window.len(), kernel.k(), "window must hold K values");
    assert_eq!(
        history_mu.len(),
        kernel.k() + 1,
        "need K window means plus the target mean"
    );
    let mut ops = OpCounts::default();
    // Incremental mean update of the just-measured slot: subtract the
    // evicted sample, add the new one, divide by D.
    let mut mu_update = history_mu[0] - 0.0;
    ops.adds += 1;
    mu_update += window[kernel.k() - 1];
    ops.adds += 1;
    let _mu = mu_update / 1.0;
    ops.divs += 1;

    // Φ: K ratio divides, K weighted multiplies, K accumulating adds,
    // one normalizing divide.
    let mut num = 0.0;
    for (i, &v) in window.iter().enumerate() {
        let eta = v / history_mu[i].max(f64::MIN_POSITIVE);
        ops.divs += 1;
        let weighted = eta * ((i + 1) as f64 / kernel.k() as f64);
        ops.muls += 1;
        num += weighted;
        ops.adds += 1;
    }
    let phi = num / 1.0;
    ops.divs += 1;

    // Blend.
    let cond = history_mu[kernel.k()] * phi;
    ops.muls += 1;
    let weighted_cond = (1.0 - kernel.alpha()) * cond;
    ops.muls += 1;
    let mut prediction = weighted_cond;
    if kernel.persistence_path() {
        prediction += kernel.alpha() * window[kernel.k() - 1];
        ops.muls += 1;
    }
    prediction += 0.0;
    ops.adds += 1;
    (prediction, ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    const NJ_PER_CYCLE: f64 = 1.5e-9;

    #[test]
    fn calibration_reproduces_paper_anchors() {
        let m = CalibratedCycleModel::paper();
        let e = |k, a| m.cycles(&PredictionKernel::new(k, a)) * NJ_PER_CYCLE;
        assert!(
            (e(1, 0.7) - 3.6e-6).abs() < 1e-9,
            "K=1 a=0.7: {}",
            e(1, 0.7)
        );
        assert!(
            (e(7, 0.7) - 8.4e-6).abs() < 1e-9,
            "K=7 a=0.7: {}",
            e(7, 0.7)
        );
        assert!(
            (e(7, 0.0) - 6.5e-6).abs() < 1e-9,
            "K=7 a=0.0: {}",
            e(7, 0.0)
        );
    }

    #[test]
    fn cycles_increase_with_k_and_alpha_path() {
        let m = CalibratedCycleModel::paper();
        for k in 1..7 {
            assert!(
                m.cycles(&PredictionKernel::new(k + 1, 0.5))
                    > m.cycles(&PredictionKernel::new(k, 0.5))
            );
        }
        assert!(
            m.cycles(&PredictionKernel::new(3, 0.5)) > m.cycles(&PredictionKernel::new(3, 0.0))
        );
        // α > 0 cost is flat in α: only the path matters.
        assert_eq!(
            m.cycles(&PredictionKernel::new(3, 0.1)),
            m.cycles(&PredictionKernel::new(3, 0.9))
        );
    }

    #[test]
    fn analytic_counts_match_runtime_shadow() {
        for k in 1..=7 {
            for &alpha in &[0.0, 0.5, 1.0] {
                let kernel = PredictionKernel::new(k, alpha);
                let window: Vec<f64> = (0..k).map(|i| 100.0 + i as f64).collect();
                let mu: Vec<f64> = (0..=k).map(|i| 90.0 + i as f64).collect();
                let (pred, counted) = counted_prediction(&kernel, &mu, &window);
                assert!(pred.is_finite());
                assert_eq!(counted, kernel.op_counts(), "K={k} alpha={alpha}");
            }
        }
    }

    #[test]
    fn op_cost_models_order_sensibly() {
        let kernel = PredictionKernel::new(3, 0.7);
        let float = OpCostModel::software_float().cycles(kernel.op_counts());
        let fixed = OpCostModel::fixed_q16().cycles(kernel.op_counts());
        assert!(
            fixed < float,
            "fixed point ({fixed}) must be cheaper than software float ({float})"
        );
        // The analytic software-float cost lands in the same regime as the
        // calibrated measurement (same order of magnitude).
        let calibrated = CalibratedCycleModel::paper().cycles(&kernel);
        let ratio = float / calibrated;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn op_counts_add() {
        let a = OpCounts {
            adds: 1,
            muls: 2,
            divs: 3,
        };
        let b = OpCounts {
            adds: 10,
            muls: 20,
            divs: 30,
        };
        let c = a + b;
        assert_eq!(
            c,
            OpCounts {
                adds: 11,
                muls: 22,
                divs: 33
            }
        );
        assert_eq!(c.total(), 66);
    }

    #[test]
    #[should_panic(expected = "alpha must be")]
    fn kernel_validates_alpha() {
        let _ = PredictionKernel::new(1, 1.5);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn kernel_validates_k() {
        let _ = PredictionKernel::new(0, 0.5);
    }
}
