//! MSP430F1611 energy and cycle cost model for harvested-power sampling
//! and prediction.
//!
//! The paper measures, on an MSP-TS430PM64 board (TI MSP430F1611,
//! 3 V @ 5 MHz), the energy of the Fig. 5 duty sequence: wake → enable
//! the ADC voltage reference and sleep through its settling → convert →
//! run the prediction → deep sleep. Its Table IV anchors:
//!
//! | activity | energy |
//! |---|---|
//! | A/D conversion | 55 µJ |
//! | + prediction (K=1, α=0.7) | 58.6 µJ |
//! | + prediction (K=7, α=0.7) | 63.4 µJ |
//! | + prediction (K=7, α=0.0) | 61.5 µJ |
//! | sleep (1.4 µA @ 3 V) | ≈356 mJ/day |
//!
//! This crate substitutes the physical board with a two-level model:
//!
//! * [`CalibratedCycleModel`] — cycles(K, α) fitted exactly to the three
//!   prediction anchors (a base cost, a per-K cost, and a persistence-path
//!   cost paid only when α > 0).
//! * [`kernel`] — *analytic operation counts* of the incremental WCMA
//!   kernel (what firmware actually executes per prediction), priced by
//!   per-operation software-float or Q16.16 cycle costs, cross-checked
//!   against a runtime-counting shadow implementation. This exposes the
//!   *structure* behind the calibrated numbers and supports design
//!   exploration (fixed-point ablation).
//!
//! [`schedule`] combines either model with the [`Supply`] and [`AdcModel`]
//! into per-day budgets and the overhead-% figures of the paper's Fig. 6.
//!
//! # Example
//!
//! ```
//! use msp430_energy::{AdcModel, CalibratedCycleModel, PredictionKernel, Supply};
//!
//! let supply = Supply::msp430f1611();
//! let adc = AdcModel::msp430_paper();
//! let model = CalibratedCycleModel::paper();
//! let kernel = PredictionKernel::new(1, 0.7);
//! let pred_j = model.cycles(&kernel) * supply.energy_per_cycle_j();
//! // The paper's 3.6 µJ anchor.
//! assert!((pred_j - 3.6e-6).abs() < 1e-8);
//! assert!((adc.energy_j(&supply) - 55e-6).abs() < 1e-6);
//! ```

pub mod kernel;
pub mod memory;
pub mod schedule;
mod supply;

pub use kernel::{CalibratedCycleModel, OpCostModel, OpCounts, PredictionKernel};
pub use memory::{MemoryFootprint, SampleFormat};
pub use schedule::{DailyBudget, SamplingSchedule};
pub use supply::{AdcModel, Supply};
