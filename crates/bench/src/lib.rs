//! Shared fixtures for the Criterion benchmark harness.
//!
//! The benches are the host-side analogue of the paper's hardware cost
//! measurements (Table IV): per-prediction kernel cost versus K and
//! arithmetic style, sweep-engine throughput, generator throughput, and
//! simulator step rate. See `crates/bench/benches/`.

use solar_synth::{Site, TraceGenerator};
use solar_trace::PowerTrace;

/// Fixed bench seed, distinct from the experiment data sets.
pub const BENCH_SEED: u64 = 0xBE;

/// A deterministic trace for benchmarking: `days` days of the HSU-like
/// site (1-minute resolution, variable weather).
pub fn bench_trace(days: usize) -> PowerTrace {
    TraceGenerator::new(Site::Hsu.config(), BENCH_SEED)
        .generate_days(days)
        .expect("days > 0")
}

/// A deterministic 5-minute trace (SPMD-like site).
pub fn bench_trace_5min(days: usize) -> PowerTrace {
    TraceGenerator::new(Site::Spmd.config(), BENCH_SEED)
        .generate_days(days)
        .expect("days > 0")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(bench_trace(2), bench_trace(2));
        assert_eq!(bench_trace_5min(2).resolution().as_seconds(), 300);
    }
}
