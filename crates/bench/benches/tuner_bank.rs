//! Batched candidate evaluation: the [`CandidateBank`] kernel against
//! per-candidate solo predictors, and a whole warm-cache tuner
//! refinement round through the single-pass engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use param_explore::ParamGrid;
use scenario_fleet::{Catalog, FleetEngine, FleetMatrix, ManagerSpec, PredictorSpec};
use solar_predict::{CandidateBank, Predictor, WcmaParams, WcmaPredictor};
use std::hint::black_box;

const N: usize = 48;

fn grid_params(alphas: &[f64]) -> Vec<WcmaParams> {
    let mut params = Vec::new();
    for &alpha in alphas {
        for days in [6usize, 10, 15] {
            for k in [1usize, 2, 3] {
                params.push(WcmaParams::new(alpha, days, k, N).unwrap());
            }
        }
    }
    params
}

fn toy_slot(step: usize) -> f64 {
    let slot = step % N;
    let x = (slot as f64 / N as f64 - 0.5) * 6.0;
    900.0 * (-x * x).exp() * (0.6 + ((step * 7919) % 89) as f64 / 200.0)
}

/// 27 candidates over 30 days of slots: one shared-kernel pass versus
/// 27 solo predictor runs (the pre-bank tuner round cost).
fn bench_bank_vs_solo(c: &mut Criterion) {
    let params = grid_params(&[0.45, 0.7, 0.95]);
    let slots = N * 30;
    let mut group = c.benchmark_group("bank_vs_solo_27_candidates");
    group.throughput(Throughput::Elements((slots * params.len()) as u64));
    group.bench_function("bank", |b| {
        b.iter(|| {
            let mut bank = CandidateBank::new(params.clone()).unwrap();
            let mut acc = 0.0;
            for step in 0..slots {
                acc += bank.observe_and_predict(toy_slot(step))[0];
            }
            black_box(acc)
        });
    });
    group.bench_function("solo", |b| {
        b.iter(|| {
            let mut solos: Vec<WcmaPredictor> =
                params.iter().map(|&p| WcmaPredictor::new(p)).collect();
            let mut acc = 0.0;
            for step in 0..slots {
                let measured = toy_slot(step);
                for solo in &mut solos {
                    acc += solo.observe_and_predict(measured);
                }
            }
            black_box(acc)
        });
    });
    group.finish();
}

/// A warm-cache refinement round: the coarse grid's outcomes are
/// cached; the round scores the `refined_around` grid's fresh
/// candidates on two scenarios — one slot pass per scenario, all
/// candidates banked.
fn bench_refinement_round(c: &mut Criterion) {
    let catalog = Catalog::builtin();
    let scenarios = vec![
        catalog.get("desert-clear-sky").unwrap().clone(),
        catalog.get("marine-fog").unwrap().clone(),
    ];
    let coarse = ParamGrid::builder()
        .alphas(vec![0.0, 0.5, 1.0])
        .days(vec![2, 10, 20])
        .ks(vec![1, 2, 4])
        .build()
        .unwrap();
    let mut base = FleetMatrix::new(
        PredictorSpec::family_from_grid(&coarse),
        vec![ManagerSpec::EnergyNeutral {
            target_soc: 0.5,
            gain: 0.25,
        }],
        scenarios,
    )
    .unwrap();
    let engine = FleetEngine::new(0xBEEF);
    let mut warm = engine.new_cache();
    engine.run_cached(&base, &mut warm).unwrap();
    let refined = coarse.refined_around(0.5, 10, 2).unwrap();
    let mut fresh = 0u64;
    for spec in PredictorSpec::family_from_grid(&refined) {
        if !base.predictors.contains(&spec) {
            base.predictors.push(spec);
            fresh += 1;
        }
    }

    let mut group = c.benchmark_group("tuner_refinement_round");
    group.sample_size(10);
    group.throughput(Throughput::Elements(fresh));
    group.bench_with_input(BenchmarkId::from_parameter(fresh), &fresh, |b, _| {
        b.iter(|| {
            let mut cache = warm.clone();
            black_box(engine.run_cached(&base, &mut cache).unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_bank_vs_solo, bench_refinement_round);
criterion_main!(benches);
