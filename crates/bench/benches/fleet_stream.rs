//! Streamed vs materialized engine paths on the default catalog
//! matrix: the streamed path (bounded/zero trace cache, one generator
//! pass per scenario shared by its jobs) must be no slower than the
//! classic materialize-everything path — it trades the per-job
//! `SlotView` builds for one shared generation pass, so the work is
//! comparable while memory drops from full-horizon traces to one-day
//! buffers. A third case measures the sharded reduction's overhead
//! (shard + merge) over the monolithic scorecard.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use scenario_fleet::{
    Catalog, FleetEngine, FleetMatrix, ManagerSpec, PredictorSpec, TraceCachePolicy,
};
use std::hint::black_box;

/// The default fast-regime catalog matrix: every builtin scenario up to
/// one year (the multi-year entries are exercised by tests; a bench
/// iteration must stay sub-second) × 2 predictors × 2 managers.
fn default_matrix() -> FleetMatrix {
    let scenarios: Vec<_> = Catalog::builtin()
        .scenarios()
        .iter()
        .filter(|s| s.days <= 365)
        .cloned()
        .collect();
    FleetMatrix::new(
        vec![
            PredictorSpec::Wcma {
                alpha: 0.7,
                days: 10,
                k: 2,
            },
            PredictorSpec::Persistence,
        ],
        vec![
            ManagerSpec::EnergyNeutral {
                target_soc: 0.5,
                gain: 0.25,
            },
            ManagerSpec::Greedy,
        ],
        scenarios,
    )
    .unwrap()
}

fn bench_stream_vs_materialized(c: &mut Criterion) {
    let matrix = default_matrix();
    let mut group = c.benchmark_group("fleet_stream");
    group.sample_size(10);
    group.throughput(Throughput::Elements(matrix.job_count() as u64));

    group.bench_function("materialized", |b| {
        let engine = FleetEngine::new(0xD1CE);
        b.iter(|| black_box(engine.run(&matrix).unwrap()));
    });

    group.bench_function("streamed", |b| {
        let engine = FleetEngine::new(0xD1CE).with_trace_cache(TraceCachePolicy::streaming_only());
        b.iter(|| black_box(engine.run(&matrix).unwrap()));
    });

    group.bench_function("sharded_merge", |b| {
        let engine = FleetEngine::new(0xD1CE).with_shards(4);
        b.iter(|| black_box(engine.run(&matrix).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_stream_vs_materialized);
criterion_main!(benches);
