//! The single-pass hot path end to end: day-constant synthesis
//! throughput, and one scenario's slot pass fanning out to a whole
//! predictor × manager block — the unit of work every fleet run and
//! tuner round is made of.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scenario_fleet::{
    CatalogGenerator, Collector, FleetEngine, FleetMatrix, ManagerSpec, PredictorSpec,
    TraceCachePolicy,
};
use solar_synth::{Site, TraceGenerator};
use solar_trace::SlotsPerDay;
use std::hint::black_box;

/// Streaming synthesis at N = 48: the generator's per-day constants
/// (declination, `sin φ sin δ`, `cos φ cos δ`, hour-angle cosine grid)
/// are hoisted out of the sample loop; this measures what remains.
fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_synthesis");
    for days in [10usize, 60] {
        let generator = TraceGenerator::new(Site::Hsu.config(), 0xBE);
        let n = SlotsPerDay::new(48).unwrap();
        group.throughput(Throughput::Elements((days * 48) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(days), &days, |b, &days| {
            b.iter(|| {
                let mut sum = 0.0;
                for slot in generator.slot_stream(days, n).unwrap() {
                    sum += slot.mean_power;
                }
                black_box(sum)
            });
        });
    }
    group.finish();
}

/// A generated-catalog block (guideline family × default managers) over
/// a handful of regimes — one slot pass per scenario feeds all fifteen
/// job machines, materialized or streamed.
fn bench_generated_block(c: &mut Criterion) {
    let catalog = CatalogGenerator::new(2026).generate(4).unwrap();
    let matrix = FleetMatrix::new(
        PredictorSpec::guideline_family(),
        ManagerSpec::default_set(),
        catalog.scenarios().to_vec(),
    )
    .unwrap();
    let mut group = c.benchmark_group("hotpath_generated_block");
    group.sample_size(10);
    group.throughput(Throughput::Elements(
        matrix
            .scenarios
            .iter()
            .map(|s| (s.days * s.slots_per_day as usize) as u64)
            .sum::<u64>()
            * (matrix.predictors.len() * matrix.managers.len()) as u64,
    ));
    // The default engine carries the no-op collector — "materialized"
    // and "streaming" are the zero-cost baseline; the "recording"
    // variant runs the same matrix with full ledger + span collection
    // so a hot-loop instrumentation regression shows up as a gap here.
    for (label, policy, collector) in [
        (
            "materialized",
            TraceCachePolicy::unbounded(),
            Collector::noop(),
        ),
        (
            "streaming",
            TraceCachePolicy::streaming_only(),
            Collector::noop(),
        ),
        (
            "materialized_recording",
            TraceCachePolicy::unbounded(),
            Collector::recording(),
        ),
    ] {
        group.bench_function(label, |b| {
            let engine = FleetEngine::new(2026)
                .with_trace_cache(policy)
                .with_collector(collector.clone());
            b.iter(|| black_box(engine.run(&matrix).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_synthesis, bench_generated_block);
criterion_main!(benches);
