//! Per-prediction kernel cost — the host-side analogue of the paper's
//! Table IV: how the WCMA cost scales with K, what the persistence path
//! adds, and how fixed point compares, next to the EWMA baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use repro_bench::bench_trace;
use solar_predict::fixed_point::FixedWcmaPredictor;
use solar_predict::{
    run_predictor, EwmaPredictor, PersistencePredictor, Predictor, WcmaParams, WcmaPredictor,
};
use solar_trace::{SlotView, SlotsPerDay};
use std::hint::black_box;

fn bench_wcma_vs_k(c: &mut Criterion) {
    let trace = bench_trace(30);
    let view = SlotView::new(&trace, SlotsPerDay::new(48).unwrap()).unwrap();
    let predictions = view.total_slots() as u64;
    let mut group = c.benchmark_group("wcma_kernel_vs_k");
    group.throughput(Throughput::Elements(predictions));
    for k in [1usize, 2, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let params = WcmaParams::new(0.7, 10, k, 48).unwrap();
            b.iter(|| {
                let mut p = WcmaPredictor::new(params);
                black_box(run_predictor(&view, &mut p))
            });
        });
    }
    group.finish();
}

fn bench_wcma_vs_d(c: &mut Criterion) {
    let trace = bench_trace(30);
    let view = SlotView::new(&trace, SlotsPerDay::new(48).unwrap()).unwrap();
    let mut group = c.benchmark_group("wcma_kernel_vs_d");
    group.throughput(Throughput::Elements(view.total_slots() as u64));
    for d in [2usize, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let params = WcmaParams::new(0.7, d, 2, 48).unwrap();
            b.iter(|| {
                let mut p = WcmaPredictor::new(params);
                black_box(run_predictor(&view, &mut p))
            });
        });
    }
    group.finish();
}

fn bench_predictor_zoo(c: &mut Criterion) {
    let trace = bench_trace(30);
    let view = SlotView::new(&trace, SlotsPerDay::new(48).unwrap()).unwrap();
    let mut group = c.benchmark_group("predictor_zoo");
    group.throughput(Throughput::Elements(view.total_slots() as u64));
    let params = WcmaParams::new(0.7, 10, 2, 48).unwrap();
    group.bench_function("wcma_f64", |b| {
        b.iter(|| {
            let mut p = WcmaPredictor::new(params);
            black_box(run_predictor(&view, &mut p))
        })
    });
    group.bench_function("wcma_q16", |b| {
        b.iter(|| {
            let mut p = FixedWcmaPredictor::new(params);
            black_box(run_predictor(&view, &mut p))
        })
    });
    group.bench_function("ewma", |b| {
        b.iter(|| {
            let mut p = EwmaPredictor::new(0.5, 48).unwrap();
            black_box(run_predictor(&view, &mut p))
        })
    });
    group.bench_function("persistence", |b| {
        b.iter(|| {
            let mut p = PersistencePredictor::new(48);
            black_box(run_predictor(&view, &mut p))
        })
    });
    group.finish();
}

fn bench_single_step(c: &mut Criterion) {
    // The cost of one observe_and_predict call in steady state — the
    // direct analogue of a single MCU kernel invocation.
    let trace = bench_trace(12);
    let view = SlotView::new(&trace, SlotsPerDay::new(48).unwrap()).unwrap();
    let samples: Vec<f64> = view.start_series().to_vec();
    c.bench_function("wcma_single_step", |b| {
        let params = WcmaParams::new(0.7, 10, 2, 48).unwrap();
        let mut p = WcmaPredictor::new(params);
        for &s in &samples {
            p.observe_and_predict(s);
        }
        let mut idx = 0usize;
        b.iter(|| {
            let s = samples[idx % samples.len()];
            idx += 1;
            black_box(p.observe_and_predict(black_box(s)))
        });
    });
}

criterion_group!(
    benches,
    bench_wcma_vs_k,
    bench_wcma_vs_d,
    bench_predictor_zoo,
    bench_single_step
);
criterion_main!(benches);
