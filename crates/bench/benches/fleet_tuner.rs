//! Tuning-loop economics: what incremental re-scoring saves when one
//! predictor-axis value changes between rounds — the [`FleetCache`]
//! contract that makes the per-regime search affordable — plus the cost
//! of a whole smoke-scale tuning loop.

use criterion::{criterion_group, criterion_main, Criterion};
use fleet_tuner::{FleetTuner, TunerConfig};
use scenario_fleet::{Catalog, FleetEngine, FleetMatrix, ManagerSpec, PredictorSpec};
use std::hint::black_box;

/// Two fast scenarios × 5 predictors × 1 manager — a typical search
/// round's working set.
fn base_matrix() -> FleetMatrix {
    let catalog = Catalog::builtin();
    FleetMatrix::new(
        PredictorSpec::guideline_family(),
        vec![ManagerSpec::EnergyNeutral {
            target_soc: 0.5,
            gain: 0.25,
        }],
        vec![
            catalog.get("desert-clear-sky").unwrap().clone(),
            catalog.get("aging-node").unwrap().clone(),
        ],
    )
    .unwrap()
}

/// The matrix after a search step: one new candidate on the predictor
/// axis, everything else unchanged.
fn grown_matrix() -> FleetMatrix {
    let mut matrix = base_matrix();
    matrix.predictors.push(PredictorSpec::Wcma {
        alpha: 0.85,
        days: 12,
        k: 3,
    });
    matrix
}

fn bench_rescoring(c: &mut Criterion) {
    let base = base_matrix();
    let grown = grown_matrix();
    let mut group = c.benchmark_group("rescoring_one_axis_change");
    group.sample_size(10);

    // Full re-run: every job of the grown matrix from scratch.
    group.bench_function("full", |b| {
        let engine = FleetEngine::new(0xCAFE);
        b.iter(|| black_box(engine.run(&grown).unwrap()));
    });

    // Incremental: a warm cache answers the unchanged jobs; only the
    // new predictor's jobs run. The per-iteration cache clone is part
    // of the measured cost (it is what a real loop pays to keep the
    // warm state intact).
    group.bench_function("incremental", |b| {
        let engine = FleetEngine::new(0xCAFE);
        let mut warm = engine.new_cache();
        engine.run_cached(&base, &mut warm).unwrap();
        b.iter(|| {
            let mut cache = warm.clone();
            black_box(engine.run_cached(&grown, &mut cache).unwrap())
        });
    });
    group.finish();
}

fn bench_tuning_loop(c: &mut Criterion) {
    let catalog = Catalog::builtin();
    let scenarios = vec![
        catalog.get("desert-clear-sky").unwrap().clone(),
        catalog.get("marine-fog").unwrap().clone(),
    ];
    let mut group = c.benchmark_group("tuning_loop");
    group.sample_size(10);
    group.bench_function("smoke_two_regimes", |b| {
        b.iter(|| {
            let tuner = FleetTuner::new(TunerConfig::smoke(0xBEEF)).unwrap();
            black_box(tuner.tune(&scenarios).unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_rescoring, bench_tuning_loop);
criterion_main!(benches);
