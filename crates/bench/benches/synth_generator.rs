//! Generator throughput: how fast the synthetic substrate produces the
//! paper's data sets (Table I scale: a 1-minute site year is 525,600
//! samples).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use solar_synth::{Site, TraceGenerator};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation_10_days");
    for site in [Site::Spmd, Site::Ornl, Site::Pfci] {
        let config = site.config();
        let samples = config.resolution.samples_per_day() as u64 * 10;
        group.throughput(Throughput::Elements(samples));
        group.bench_with_input(
            BenchmarkId::from_parameter(site.code()),
            &site,
            |b, &site| {
                b.iter(|| {
                    let generator = TraceGenerator::new(site.config(), 7);
                    black_box(generator.generate_days(10).unwrap())
                });
            },
        );
    }
    group.finish();
}

fn bench_slotting(c: &mut Criterion) {
    use solar_trace::{SlotView, SlotsPerDay};
    let trace = repro_bench::bench_trace(30);
    let mut group = c.benchmark_group("slot_view_build");
    for n in [288u32, 48, 24] {
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(SlotView::new(&trace, SlotsPerDay::new(n).unwrap()).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation, bench_slotting);
criterion_main!(benches);
