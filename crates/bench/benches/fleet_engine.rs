//! Fleet-engine throughput: jobs/second through the full
//! generate → fault → predict → simulate → reduce pipeline, and the
//! thread-scaling of the parallel layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scenario_fleet::{Catalog, FleetEngine, FleetMatrix, ManagerSpec, PredictorSpec};
use std::hint::black_box;

/// A compact matrix: 2 fast scenarios × 3 predictors × 2 managers.
fn bench_matrix() -> FleetMatrix {
    let catalog = Catalog::builtin();
    FleetMatrix::new(
        vec![
            PredictorSpec::Wcma {
                alpha: 0.7,
                days: 10,
                k: 2,
            },
            PredictorSpec::Ewma { gamma: 0.5 },
            PredictorSpec::Persistence,
        ],
        vec![
            ManagerSpec::EnergyNeutral {
                target_soc: 0.5,
                gain: 0.25,
            },
            ManagerSpec::Greedy,
        ],
        vec![
            catalog.get("desert-clear-sky").unwrap().clone(),
            catalog.get("aging-node").unwrap().clone(),
        ],
    )
    .unwrap()
}

fn bench_fleet_throughput(c: &mut Criterion) {
    let matrix = bench_matrix();
    let mut group = c.benchmark_group("fleet_engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(matrix.job_count() as u64));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let engine = FleetEngine::new(0xBE).with_threads(threads);
                b.iter(|| black_box(engine.run(&matrix).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_scorecard_reduce(c: &mut Criterion) {
    // Isolate the reduction + JSON rendering from the simulation cost.
    let matrix = bench_matrix();
    let result = FleetEngine::new(0xBE).run(&matrix).unwrap();
    let mut group = c.benchmark_group("scorecard");
    group.throughput(Throughput::Elements(result.outcomes.len() as u64));
    group.bench_function("reduce_and_render", |b| {
        b.iter(|| {
            let card = scenario_fleet::Scorecard::build(&matrix, &result.outcomes, 0xBE);
            black_box(card.to_json_string())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fleet_throughput, bench_scorecard_reduce);
criterion_main!(benches);
