//! Sweep-engine throughput: the cost of regenerating a Table III cell
//! (one site × one N × the full 1254-configuration grid), and how the
//! one-pass engine compares to naive per-configuration runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use param_explore::{sweep, ParamGrid};
use pred_metrics::EvalProtocol;
use repro_bench::bench_trace;
use solar_predict::{run_predictor, WcmaParams, WcmaPredictor};
use solar_trace::{SlotView, SlotsPerDay};
use std::hint::black_box;

fn bench_full_grid(c: &mut Criterion) {
    let trace = bench_trace(40);
    let protocol = EvalProtocol::paper();
    let grid = ParamGrid::paper();
    let mut group = c.benchmark_group("sweep_full_grid");
    group.sample_size(10);
    for n in [96u32, 48, 24] {
        let view = SlotView::new(&trace, SlotsPerDay::new(n).unwrap()).unwrap();
        group.throughput(Throughput::Elements(grid.configs() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(sweep(&view, &grid, &protocol)));
        });
    }
    group.finish();
}

fn bench_sweep_vs_naive(c: &mut Criterion) {
    // A small sub-grid where running each configuration separately is
    // feasible, to quantify the one-pass speedup.
    let trace = bench_trace(40);
    let view = SlotView::new(&trace, SlotsPerDay::new(48).unwrap()).unwrap();
    let protocol = EvalProtocol::paper();
    let grid = ParamGrid::builder()
        .alphas(vec![0.0, 0.5, 1.0])
        .days(vec![5, 10, 20])
        .ks(vec![1, 2, 3])
        .build()
        .unwrap();
    let mut group = c.benchmark_group("sweep_vs_naive_27_configs");
    group.sample_size(10);
    group.bench_function("one_pass_sweep", |b| {
        b.iter(|| black_box(sweep(&view, &grid, &protocol)));
    });
    group.bench_function("naive_per_config", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for &alpha in grid.alphas() {
                for &d in grid.days() {
                    for &k in grid.ks() {
                        let params = WcmaParams::new(alpha, d, k, 48).unwrap();
                        let log = run_predictor(&view, &mut WcmaPredictor::new(params));
                        total += protocol.evaluate(&log).mape;
                    }
                }
            }
            black_box(total)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_full_grid, bench_sweep_vs_naive);
criterion_main!(benches);
