//! Evaluation-protocol and node-simulator throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use harvest_sim::{
    simulate_node, EnergyNeutralManager, EnergyStorage, Load, NodeConfig, SolarPanel,
};
use pred_metrics::EvalProtocol;
use repro_bench::bench_trace;
use solar_predict::{run_predictor, WcmaParams, WcmaPredictor};
use solar_trace::{SlotView, SlotsPerDay};
use std::hint::black_box;

fn bench_protocol_evaluate(c: &mut Criterion) {
    let trace = bench_trace(60);
    let view = SlotView::new(&trace, SlotsPerDay::new(48).unwrap()).unwrap();
    let params = WcmaParams::new(0.7, 10, 2, 48).unwrap();
    let log = run_predictor(&view, &mut WcmaPredictor::new(params));
    let protocol = EvalProtocol::paper();
    let mut group = c.benchmark_group("protocol_evaluate");
    group.throughput(Throughput::Elements(log.len() as u64));
    group.bench_function("paper_protocol", |b| {
        b.iter(|| black_box(protocol.evaluate(&log)));
    });
    group.finish();
}

fn bench_clairvoyant(c: &mut Criterion) {
    use param_explore::dynamic::clairvoyant_eval;
    let trace = bench_trace(40);
    let view = SlotView::new(&trace, SlotsPerDay::new(48).unwrap()).unwrap();
    let protocol = EvalProtocol::paper();
    let alphas: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let mut group = c.benchmark_group("clairvoyant_eval");
    group.sample_size(10);
    group.throughput(Throughput::Elements(view.total_slots() as u64));
    group.bench_function("alpha_and_k", |b| {
        b.iter(|| black_box(clairvoyant_eval(&view, 20, &alphas, 6, &protocol)));
    });
    group.finish();
}

fn bench_node_sim(c: &mut Criterion) {
    let trace = bench_trace(60);
    let view = SlotView::new(&trace, SlotsPerDay::new(48).unwrap()).unwrap();
    let config = NodeConfig {
        panel: SolarPanel::new(0.01, 0.15).unwrap(),
        storage: EnergyStorage::with_losses(4000.0, 2000.0, 0.9, 0.9, 0.001).unwrap(),
        load: Load::new(0.05, 0.0005).unwrap(),
    };
    let mut group = c.benchmark_group("node_simulation");
    group.throughput(Throughput::Elements(view.total_slots() as u64));
    group.bench_function("wcma_energy_neutral", |b| {
        b.iter(|| {
            let mut predictor = WcmaPredictor::new(WcmaParams::new(0.7, 10, 2, 48).unwrap());
            let mut manager = EnergyNeutralManager::default();
            black_box(simulate_node(&view, &mut predictor, &mut manager, &config))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_protocol_evaluate,
    bench_clairvoyant,
    bench_node_sim
);
criterion_main!(benches);
