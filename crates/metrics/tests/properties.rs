//! Property tests for the evaluation methodology.

use pred_metrics::{DiurnalProfile, ErrorFunction, EvalProtocol, PredictionLog, PredictionRecord};
use proptest::prelude::*;

fn log_strategy() -> impl Strategy<Value = PredictionLog> {
    proptest::collection::vec(
        (
            0u32..60,
            0u32..8,
            0.0f64..1000.0,
            0.0f64..1000.0,
            0.0f64..1000.0,
        ),
        1..300,
    )
    .prop_map(|records| {
        let mut log = PredictionLog::new(8);
        for (day, slot, predicted, actual_start, actual_mean) in records {
            log.push(PredictionRecord {
                day,
                slot,
                predicted,
                actual_start,
                actual_mean,
            });
        }
        log
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn evaluation_count_shrinks_with_stricter_filters(log in log_strategy()) {
        let loose = EvalProtocol::new(0.0, 0).evaluate(&log);
        let roi = EvalProtocol::new(0.3, 0).evaluate(&log);
        let warm = EvalProtocol::new(0.0, 30).evaluate(&log);
        let both = EvalProtocol::new(0.3, 30).evaluate(&log);
        prop_assert!(roi.count <= loose.count);
        prop_assert!(warm.count <= loose.count);
        prop_assert!(both.count <= roi.count.min(warm.count));
    }

    #[test]
    fn mape_is_scale_invariant_over_logs(log in log_strategy(), scale in 0.1f64..50.0) {
        let mut scaled = PredictionLog::new(log.slots_per_day());
        for r in &log {
            scaled.push(PredictionRecord {
                day: r.day,
                slot: r.slot,
                predicted: r.predicted * scale,
                actual_start: r.actual_start * scale,
                actual_mean: r.actual_mean * scale,
            });
        }
        let protocol = EvalProtocol::new(0.1, 5);
        let a = protocol.evaluate(&log);
        let b = protocol.evaluate(&scaled);
        prop_assert_eq!(a.count, b.count);
        prop_assert!((a.mape - b.mape).abs() < 1e-9);
        prop_assert!((a.mape_prime - b.mape_prime).abs() < 1e-9);
        // RMSE/MAE scale linearly instead.
        prop_assert!((b.rmse - scale * a.rmse).abs() < 1e-6 * (1.0 + b.rmse));
    }

    #[test]
    fn diurnal_profile_counts_sum_to_summary_count(log in log_strategy()) {
        let protocol = EvalProtocol::new(0.1, 5);
        let summary = protocol.evaluate(&log);
        let profile = DiurnalProfile::of(&log, &protocol);
        let per_slot: usize = (0..profile.slots_per_day()).map(|s| profile.count(s)).sum();
        // MAPE skips actual_mean == 0 records; the protocol ROI already
        // removes them when the peak is positive, so counts agree.
        prop_assert_eq!(per_slot, summary.count);
    }

    #[test]
    fn perfect_predictions_have_zero_error(
        refs in proptest::collection::vec((0u32..50, 1.0f64..900.0), 1..100)
    ) {
        let mut log = PredictionLog::new(4);
        for (day, value) in refs {
            log.push(PredictionRecord {
                day,
                slot: day % 4,
                predicted: value,
                actual_start: value,
                actual_mean: value,
            });
        }
        let summary = EvalProtocol::new(0.0, 0).evaluate(&log);
        prop_assert!(summary.mape < 1e-12);
        prop_assert!(summary.mape_prime < 1e-12);
        prop_assert!(summary.rmse < 1e-12);
    }

    #[test]
    fn error_functions_are_nonnegative(
        pairs in proptest::collection::vec((0.0f64..1e4, 0.0f64..1e4), 0..200)
    ) {
        for f in [ErrorFunction::Mape, ErrorFunction::Rmse, ErrorFunction::Mae] {
            prop_assert!(f.evaluate(pairs.iter().copied()) >= 0.0);
        }
    }
}
