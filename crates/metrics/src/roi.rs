//! Region-of-interest masking (§III).
//!
//! Night-time slots (zero power: trivially predicted, irrelevant to
//! management) and dawn/dusk slivers (tiny power: percentage errors
//! meaningless) must not influence the average error. The paper keeps
//! only samples whose value is at least 10% of the data set's peak.

/// A relative-threshold region-of-interest filter.
///
/// # Example
///
/// ```
/// use pred_metrics::RoiFilter;
///
/// let roi = RoiFilter::paper(); // 10% of peak
/// assert!(roi.includes(120.0, 1000.0));
/// assert!(!roi.includes(50.0, 1000.0));
/// ```
#[derive(Copy, Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RoiFilter {
    threshold_fraction: f64,
}

impl RoiFilter {
    /// Creates a filter keeping values at least `threshold_fraction` of
    /// the peak.
    ///
    /// # Panics
    ///
    /// Panics if `threshold_fraction` is not a finite value in `[0, 1]`.
    pub fn new(threshold_fraction: f64) -> Self {
        assert!(
            threshold_fraction.is_finite() && (0.0..=1.0).contains(&threshold_fraction),
            "threshold fraction must be in [0, 1], got {threshold_fraction}"
        );
        RoiFilter { threshold_fraction }
    }

    /// The paper's 10%-of-peak filter.
    pub fn paper() -> Self {
        RoiFilter::new(0.10)
    }

    /// The configured fraction.
    pub fn threshold_fraction(&self) -> f64 {
        self.threshold_fraction
    }

    /// The absolute threshold for a given peak.
    pub fn threshold(&self, peak: f64) -> f64 {
        self.threshold_fraction * peak
    }

    /// Whether `value` is inside the region of interest for a given peak.
    pub fn includes(&self, value: f64, peak: f64) -> bool {
        value >= self.threshold(peak)
    }

    /// Boolean mask over a reference series using the series' own peak.
    pub fn mask(&self, reference: &[f64]) -> Vec<bool> {
        let peak = reference.iter().copied().fold(0.0, f64::max);
        reference.iter().map(|&v| self.includes(v, peak)).collect()
    }
}

impl Default for RoiFilter {
    fn default() -> Self {
        RoiFilter::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_ten_percent() {
        assert_eq!(RoiFilter::paper().threshold_fraction(), 0.10);
        assert_eq!(RoiFilter::default(), RoiFilter::paper());
    }

    #[test]
    fn threshold_scales_with_peak() {
        let roi = RoiFilter::new(0.2);
        assert_eq!(roi.threshold(500.0), 100.0);
        assert!(roi.includes(100.0, 500.0));
        assert!(!roi.includes(99.9, 500.0));
    }

    #[test]
    fn mask_uses_series_peak() {
        let roi = RoiFilter::paper();
        let series = [0.0, 5.0, 50.0, 100.0, 1000.0];
        let mask = roi.mask(&series);
        assert_eq!(mask, vec![false, false, false, true, true]);
    }

    #[test]
    fn zero_threshold_keeps_everything() {
        let roi = RoiFilter::new(0.0);
        assert!(roi.mask(&[0.0, 1.0, 2.0]).iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "threshold fraction")]
    fn invalid_fraction_panics() {
        let _ = RoiFilter::new(1.5);
    }
}
