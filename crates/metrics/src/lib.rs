//! Prediction-error evaluation methodology from the DATE'10 paper (§III).
//!
//! The paper's central methodological point is *what to compare against
//! and how to average*:
//!
//! * A prediction for slot `t` should be compared to the **mean power of
//!   slot `t`** (`ē`, Eq. 7) because that is what determines harvested
//!   energy — not to the single sample at the slot boundary (Eq. 6).
//!   This crate computes both: [`ErrorFunction::Mape`] over mean-power
//!   references and the primed variant over start samples.
//! * The average should be **MAPE** (scale-free, robust to outliers), not
//!   RMSE (outlier-dominated) or MAE (scale-dependent); all are provided
//!   for comparison.
//! * Only slots in the **region of interest** count: mean power at least
//!   10% of the trace peak ([`RoiFilter`]), evaluated from day 21 onward
//!   so the D=20 history is full ([`EvalProtocol`]).
//!
//! # Example
//!
//! ```
//! use pred_metrics::{EvalProtocol, PredictionLog, PredictionRecord};
//!
//! let mut log = PredictionLog::new(4);
//! for day in 0..30u32 {
//!     for slot in 0..4u32 {
//!         log.push(PredictionRecord {
//!             day,
//!             slot,
//!             predicted: 100.0,
//!             actual_start: 110.0,
//!             actual_mean: 105.0,
//!         });
//!     }
//! }
//! let protocol = EvalProtocol::new(0.10, 20);
//! let summary = protocol.evaluate(&log);
//! assert!((summary.mape - 5.0 / 105.0).abs() < 1e-12);
//! assert!(summary.mape_prime > summary.mape);
//! ```

mod aggregate;
mod cost;
mod diurnal;
mod error_fn;
mod record;
mod roi;
mod summary;

pub use aggregate::SummaryAggregate;
pub use cost::{CostAggregate, RunCost};
pub use diurnal::DiurnalProfile;
pub use error_fn::{
    ErrorFunction, MaeAccumulator, MapeAccumulator, MbeAccumulator, RmseAccumulator,
};
pub use record::{PredictionLog, PredictionRecord};
pub use roi::RoiFilter;
pub use summary::{ErrorSummary, EvalProtocol, RecordSink, StreamingEval};
