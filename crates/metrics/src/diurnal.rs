//! Diurnal (time-of-day) error profiles.
//!
//! The paper's region-of-interest argument (§III) is about *where in the
//! day* errors matter: night is trivially predicted, dawn/dusk
//! percentages are meaningless, and energy arrives in mid-day bursts.
//! This module resolves a prediction log by slot-of-day so that claim can
//! be inspected directly — and it is what motivates the time-of-day
//! bucketing in the causal dynamic selector.

use crate::error_fn::MapeAccumulator;
use crate::record::PredictionLog;
use crate::summary::EvalProtocol;

/// Per-slot-of-day MAPE profile of one prediction log.
///
/// # Example
///
/// ```
/// use pred_metrics::{DiurnalProfile, EvalProtocol, PredictionLog, PredictionRecord};
///
/// let mut log = PredictionLog::new(4);
/// for day in 20..60u32 {
///     for slot in 0..4u32 {
///         log.push(PredictionRecord {
///             day, slot,
///             predicted: 90.0,
///             actual_start: 100.0,
///             actual_mean: if slot == 2 { 100.0 } else { 120.0 },
///         });
///     }
/// }
/// let profile = DiurnalProfile::of(&log, &EvalProtocol::new(0.0, 20));
/// // Slot 2's reference is closer to the prediction: lower MAPE there.
/// assert!(profile.mape(2).unwrap() < profile.mape(1).unwrap());
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiurnalProfile {
    slots_per_day: usize,
    mape: Vec<f64>,
    counts: Vec<usize>,
}

impl DiurnalProfile {
    /// Computes the per-slot profile of `log` under `protocol` (same
    /// inclusion rules as [`EvalProtocol::evaluate`]).
    pub fn of(log: &PredictionLog, protocol: &EvalProtocol) -> DiurnalProfile {
        let n = log.slots_per_day();
        let peak = log.peak_actual_mean();
        let mut accs = vec![MapeAccumulator::new(); n];
        for r in log {
            if protocol.includes(r.day, r.actual_mean, peak) {
                accs[r.slot as usize].add(r.actual_mean, r.predicted);
            }
        }
        DiurnalProfile {
            slots_per_day: n,
            mape: accs.iter().map(MapeAccumulator::value).collect(),
            counts: accs.iter().map(MapeAccumulator::count).collect(),
        }
    }

    /// Slots per day of the underlying log.
    pub fn slots_per_day(&self) -> usize {
        self.slots_per_day
    }

    /// MAPE of a slot-of-day, `None` if no prediction for that slot
    /// passed the filters (e.g. night slots).
    pub fn mape(&self, slot: usize) -> Option<f64> {
        if slot < self.slots_per_day && self.counts[slot] > 0 {
            Some(self.mape[slot])
        } else {
            None
        }
    }

    /// Number of evaluated predictions per slot-of-day.
    pub fn count(&self, slot: usize) -> usize {
        self.counts.get(slot).copied().unwrap_or(0)
    }

    /// Iterates `(slot, mape)` over slots with data.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        (0..self.slots_per_day).filter_map(|s| self.mape(s).map(|m| (s, m)))
    }

    /// The slot with the worst MAPE, if any slot has data.
    pub fn worst_slot(&self) -> Option<(usize, f64)> {
        self.iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("mape values are finite"))
    }

    /// The evaluated fraction of the day: slots with at least one
    /// included prediction over all slots. For solar data this is the
    /// daylight window inside the region of interest.
    pub fn coverage(&self) -> f64 {
        self.counts.iter().filter(|&&c| c > 0).count() as f64 / self.slots_per_day as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PredictionRecord;

    fn log_with_day_structure() -> PredictionLog {
        // 8 slots: 0-1 and 6-7 "night" (zero mean), 2-5 "day" with slot 3
        // badly predicted.
        let mut log = PredictionLog::new(8);
        for day in 20..80u32 {
            for slot in 0..8u32 {
                let mean = match slot {
                    0 | 1 | 6 | 7 => 0.0,
                    3 => 100.0,
                    _ => 100.0,
                };
                let predicted = if slot == 3 { 50.0 } else { 95.0 };
                log.push(PredictionRecord {
                    day,
                    slot,
                    predicted,
                    actual_start: mean,
                    actual_mean: mean,
                });
            }
        }
        log
    }

    #[test]
    fn night_slots_have_no_data() {
        let profile = DiurnalProfile::of(&log_with_day_structure(), &EvalProtocol::paper());
        for night in [0usize, 1, 6, 7] {
            assert_eq!(profile.mape(night), None);
            assert_eq!(profile.count(night), 0);
        }
        assert!((profile.coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn worst_slot_is_the_bad_one() {
        let profile = DiurnalProfile::of(&log_with_day_structure(), &EvalProtocol::paper());
        let (slot, mape) = profile.worst_slot().unwrap();
        assert_eq!(slot, 3);
        assert!((mape - 0.5).abs() < 1e-12);
        // Good slots are at 5%.
        assert!((profile.mape(2).unwrap() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn iter_covers_only_populated_slots() {
        let profile = DiurnalProfile::of(&log_with_day_structure(), &EvalProtocol::paper());
        let slots: Vec<usize> = profile.iter().map(|(s, _)| s).collect();
        assert_eq!(slots, vec![2, 3, 4, 5]);
        assert_eq!(profile.slots_per_day(), 8);
    }

    #[test]
    fn empty_log_profile() {
        let profile = DiurnalProfile::of(&PredictionLog::new(4), &EvalProtocol::paper());
        assert_eq!(profile.coverage(), 0.0);
        assert!(profile.worst_slot().is_none());
    }
}
