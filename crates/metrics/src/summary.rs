//! The paper's full evaluation protocol (§III–§IV-A) and its result type.

use crate::error_fn::{MaeAccumulator, MapeAccumulator, MbeAccumulator, RmseAccumulator};
use crate::record::PredictionLog;
use crate::roi::RoiFilter;

/// Aggregated error figures of one predictor run under one protocol.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ErrorSummary {
    /// MAPE against mean slot power (the paper's headline metric), as a
    /// fraction.
    pub mape: f64,
    /// MAPE against slot-start samples (the paper's MAPE′), as a fraction.
    pub mape_prime: f64,
    /// RMSE against mean slot power.
    pub rmse: f64,
    /// MAE against mean slot power.
    pub mae: f64,
    /// Mean bias against mean slot power.
    pub mbe: f64,
    /// Number of predictions that passed the filters.
    pub count: usize,
}

impl ErrorSummary {
    /// MAPE in percent, as printed in the paper's tables.
    pub fn mape_pct(&self) -> f64 {
        self.mape * 100.0
    }

    /// MAPE′ in percent.
    pub fn mape_prime_pct(&self) -> f64 {
        self.mape_prime * 100.0
    }
}

impl std::fmt::Display for ErrorSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MAPE {:.2}% / MAPE' {:.2}% over {} predictions",
            self.mape_pct(),
            self.mape_prime_pct(),
            self.count
        )
    }
}

/// The paper's evaluation protocol: region-of-interest filter + warm-up
/// day cut-off.
///
/// Evaluation keeps a record when **both** hold:
///
/// * `record.day >= first_eval_day` — the paper evaluates days 21–365
///   (1-based) so the `D = 20` history matrix is full and every `D` sees
///   identical evaluation points; `first_eval_day` is 0-based, so the
///   paper value is 20.
/// * `record.actual_mean` is at least `roi` of the log's peak mean power.
///   The same mask (based on mean slot power) is used for MAPE and MAPE′
///   so both average over identical sample points, as §IV-A requires.
///
/// # Example
///
/// ```
/// use pred_metrics::EvalProtocol;
///
/// let protocol = EvalProtocol::paper();
/// assert_eq!(protocol.first_eval_day(), 20);
/// assert_eq!(protocol.roi().threshold_fraction(), 0.10);
/// ```
#[derive(Copy, Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EvalProtocol {
    roi: RoiFilter,
    first_eval_day: u32,
}

impl EvalProtocol {
    /// Creates a protocol with a custom ROI fraction and warm-up.
    ///
    /// # Panics
    ///
    /// Panics if `roi_fraction` is outside `[0, 1]` (see
    /// [`RoiFilter::new`]).
    pub fn new(roi_fraction: f64, first_eval_day: u32) -> Self {
        EvalProtocol {
            roi: RoiFilter::new(roi_fraction),
            first_eval_day,
        }
    }

    /// The paper's protocol: 10% ROI, evaluate from (0-based) day 20.
    pub fn paper() -> Self {
        EvalProtocol {
            roi: RoiFilter::paper(),
            first_eval_day: 20,
        }
    }

    /// The region-of-interest filter.
    pub fn roi(&self) -> RoiFilter {
        self.roi
    }

    /// First 0-based day included in averages.
    pub fn first_eval_day(&self) -> u32 {
        self.first_eval_day
    }

    /// Whether a record at `day` with reference mean `actual_mean`
    /// participates, given the log peak.
    pub fn includes(&self, day: u32, actual_mean: f64, peak: f64) -> bool {
        day >= self.first_eval_day && self.roi.includes(actual_mean, peak)
    }

    /// Evaluates a prediction log under this protocol.
    ///
    /// The ROI peak is the largest mean slot power *in the log*, matching
    /// the paper's per-data-set peak.
    pub fn evaluate(&self, log: &PredictionLog) -> ErrorSummary {
        let peak = log.peak_actual_mean();
        let mut mape = MapeAccumulator::new();
        let mut mape_prime = MapeAccumulator::new();
        let mut rmse = RmseAccumulator::new();
        let mut mae = MaeAccumulator::new();
        let mut mbe = MbeAccumulator::new();
        for r in log {
            if !self.includes(r.day, r.actual_mean, peak) {
                continue;
            }
            mape.add(r.actual_mean, r.predicted);
            // MAPE′: same sample points, error against the slot-start
            // sample, normalized by the same reference power so the two
            // numbers differ only in the error definition (Eq. 6 vs 7).
            if r.actual_mean != 0.0 {
                mape_prime.add_abs_pct(((r.actual_start - r.predicted) / r.actual_mean).abs());
            }
            rmse.add(r.actual_mean, r.predicted);
            mae.add(r.actual_mean, r.predicted);
            mbe.add(r.actual_mean, r.predicted);
        }
        ErrorSummary {
            mape: mape.value(),
            mape_prime: mape_prime.value(),
            rmse: rmse.value(),
            mae: mae.value(),
            mbe: mbe.value(),
            count: mape.count(),
        }
    }
}

impl Default for EvalProtocol {
    fn default() -> Self {
        EvalProtocol::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PredictionRecord;

    fn make_log() -> PredictionLog {
        let mut log = PredictionLog::new(2);
        // Day 0: should be excluded by warm-up.
        log.push(PredictionRecord {
            day: 0,
            slot: 0,
            predicted: 0.0,
            actual_start: 1000.0,
            actual_mean: 1000.0,
        });
        // Day 30, in ROI.
        log.push(PredictionRecord {
            day: 30,
            slot: 0,
            predicted: 900.0,
            actual_start: 950.0,
            actual_mean: 1000.0,
        });
        // Day 31, below ROI (5% of peak).
        log.push(PredictionRecord {
            day: 31,
            slot: 1,
            predicted: 10.0,
            actual_start: 50.0,
            actual_mean: 50.0,
        });
        log
    }

    #[test]
    fn warmup_and_roi_filter_records() {
        let summary = EvalProtocol::paper().evaluate(&make_log());
        assert_eq!(summary.count, 1);
        assert!((summary.mape - 0.10).abs() < 1e-12);
        assert!((summary.mape_prime - 0.05).abs() < 1e-12);
        assert!((summary.rmse - 100.0).abs() < 1e-12);
        assert!((summary.mae - 100.0).abs() < 1e-12);
        assert!((summary.mbe - 100.0).abs() < 1e-12);
    }

    #[test]
    fn zero_roi_and_zero_warmup_keep_all() {
        let protocol = EvalProtocol::new(0.0, 0);
        let summary = protocol.evaluate(&make_log());
        assert_eq!(summary.count, 3);
    }

    #[test]
    fn empty_log_gives_zeros() {
        let summary = EvalProtocol::paper().evaluate(&PredictionLog::new(48));
        assert_eq!(summary.count, 0);
        assert_eq!(summary.mape, 0.0);
    }

    #[test]
    fn percent_helpers() {
        let s = ErrorSummary {
            mape: 0.158,
            mape_prime: 0.42,
            ..Default::default()
        };
        assert!((s.mape_pct() - 15.8).abs() < 1e-12);
        assert!((s.mape_prime_pct() - 42.0).abs() < 1e-12);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn includes_matches_evaluate_semantics() {
        let p = EvalProtocol::paper();
        assert!(p.includes(20, 100.0, 1000.0));
        assert!(!p.includes(19, 100.0, 1000.0));
        assert!(!p.includes(20, 99.0, 1000.0));
    }
}
