//! The paper's full evaluation protocol (§III–§IV-A) and its result type.

use crate::error_fn::{MaeAccumulator, MapeAccumulator, MbeAccumulator, RmseAccumulator};
use crate::record::{PredictionLog, PredictionRecord};
use crate::roi::RoiFilter;

/// Aggregated error figures of one predictor run under one protocol.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ErrorSummary {
    /// MAPE against mean slot power (the paper's headline metric), as a
    /// fraction.
    pub mape: f64,
    /// MAPE against slot-start samples (the paper's MAPE′), as a fraction.
    pub mape_prime: f64,
    /// RMSE against mean slot power.
    pub rmse: f64,
    /// MAE against mean slot power.
    pub mae: f64,
    /// Mean bias against mean slot power.
    pub mbe: f64,
    /// Number of predictions that passed the filters.
    pub count: usize,
}

impl ErrorSummary {
    /// MAPE in percent, as printed in the paper's tables.
    pub fn mape_pct(&self) -> f64 {
        self.mape * 100.0
    }

    /// MAPE′ in percent.
    pub fn mape_prime_pct(&self) -> f64 {
        self.mape_prime * 100.0
    }
}

impl std::fmt::Display for ErrorSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MAPE {:.2}% / MAPE' {:.2}% over {} predictions",
            self.mape_pct(),
            self.mape_prime_pct(),
            self.count
        )
    }
}

/// The paper's evaluation protocol: region-of-interest filter + warm-up
/// day cut-off.
///
/// Evaluation keeps a record when **both** hold:
///
/// * `record.day >= first_eval_day` — the paper evaluates days 21–365
///   (1-based) so the `D = 20` history matrix is full and every `D` sees
///   identical evaluation points; `first_eval_day` is 0-based, so the
///   paper value is 20.
/// * `record.actual_mean` is at least `roi` of the log's peak mean power.
///   The same mask (based on mean slot power) is used for MAPE and MAPE′
///   so both average over identical sample points, as §IV-A requires.
///
/// # Example
///
/// ```
/// use pred_metrics::EvalProtocol;
///
/// let protocol = EvalProtocol::paper();
/// assert_eq!(protocol.first_eval_day(), 20);
/// assert_eq!(protocol.roi().threshold_fraction(), 0.10);
/// ```
#[derive(Copy, Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EvalProtocol {
    roi: RoiFilter,
    first_eval_day: u32,
}

impl EvalProtocol {
    /// Creates a protocol with a custom ROI fraction and warm-up.
    ///
    /// # Panics
    ///
    /// Panics if `roi_fraction` is outside `[0, 1]` (see
    /// [`RoiFilter::new`]).
    pub fn new(roi_fraction: f64, first_eval_day: u32) -> Self {
        EvalProtocol {
            roi: RoiFilter::new(roi_fraction),
            first_eval_day,
        }
    }

    /// The paper's protocol: 10% ROI, evaluate from (0-based) day 20.
    pub fn paper() -> Self {
        EvalProtocol {
            roi: RoiFilter::paper(),
            first_eval_day: 20,
        }
    }

    /// The region-of-interest filter.
    pub fn roi(&self) -> RoiFilter {
        self.roi
    }

    /// First 0-based day included in averages.
    pub fn first_eval_day(&self) -> u32 {
        self.first_eval_day
    }

    /// Whether a record at `day` with reference mean `actual_mean`
    /// participates, given the log peak.
    pub fn includes(&self, day: u32, actual_mean: f64, peak: f64) -> bool {
        day >= self.first_eval_day && self.roi.includes(actual_mean, peak)
    }

    /// Evaluates a prediction log under this protocol.
    ///
    /// The ROI peak is the largest mean slot power *in the log*, matching
    /// the paper's per-data-set peak. Delegates to [`StreamingEval`]
    /// (one record at a time with the peak known up front), so log-based
    /// and streaming evaluation are bit-identical by construction.
    pub fn evaluate(&self, log: &PredictionLog) -> ErrorSummary {
        let mut eval = StreamingEval::new(*self, log.peak_actual_mean());
        for r in log {
            eval.push_record(*r);
        }
        eval.finish()
    }
}

/// A sink for completed [`PredictionRecord`]s — what a metrics pass
/// feeds, whether it materializes the log ([`PredictionLog`]) or folds
/// each record straight into protocol accumulators ([`StreamingEval`]).
pub trait RecordSink {
    /// Accepts the next record (records arrive in time order).
    fn push_record(&mut self, record: PredictionRecord);
}

impl RecordSink for PredictionLog {
    fn push_record(&mut self, record: PredictionRecord) {
        self.push(record);
    }
}

/// [`EvalProtocol::evaluate`] as a one-record-at-a-time fold: O(1)
/// memory instead of a horizon-proportional log.
///
/// The paper's ROI filter needs the *global* peak mean power before any
/// record can be judged, so the peak must be supplied up front. For a
/// fleet scenario that is cheap: `actual_mean` is a property of the
/// trace (and its climate dimming), identical for every job, so one
/// generator pre-pass per scenario yields the peak all of its jobs
/// share. Folding records in time order with that peak reproduces
/// [`EvalProtocol::evaluate`] bit-for-bit (the log path delegates here;
/// a test pins the equality).
#[derive(Clone, Debug)]
pub struct StreamingEval {
    protocol: EvalProtocol,
    peak: f64,
    mape: MapeAccumulator,
    mape_prime: MapeAccumulator,
    rmse: RmseAccumulator,
    mae: MaeAccumulator,
    mbe: MbeAccumulator,
}

impl StreamingEval {
    /// Starts an evaluation with the ROI peak known up front.
    pub fn new(protocol: EvalProtocol, peak_actual_mean: f64) -> Self {
        StreamingEval {
            protocol,
            peak: peak_actual_mean,
            mape: MapeAccumulator::new(),
            mape_prime: MapeAccumulator::new(),
            rmse: RmseAccumulator::new(),
            mae: MaeAccumulator::new(),
            mbe: MbeAccumulator::new(),
        }
    }

    /// Closes the evaluation.
    pub fn finish(self) -> ErrorSummary {
        ErrorSummary {
            mape: self.mape.value(),
            mape_prime: self.mape_prime.value(),
            rmse: self.rmse.value(),
            mae: self.mae.value(),
            mbe: self.mbe.value(),
            count: self.mape.count(),
        }
    }
}

impl RecordSink for StreamingEval {
    fn push_record(&mut self, r: PredictionRecord) {
        if !self.protocol.includes(r.day, r.actual_mean, self.peak) {
            return;
        }
        self.mape.add(r.actual_mean, r.predicted);
        // MAPE′: same sample points, error against the slot-start
        // sample, normalized by the same reference power so the two
        // numbers differ only in the error definition (Eq. 6 vs 7).
        if r.actual_mean != 0.0 {
            self.mape_prime
                .add_abs_pct(((r.actual_start - r.predicted) / r.actual_mean).abs());
        }
        self.rmse.add(r.actual_mean, r.predicted);
        self.mae.add(r.actual_mean, r.predicted);
        self.mbe.add(r.actual_mean, r.predicted);
    }
}

impl Default for EvalProtocol {
    fn default() -> Self {
        EvalProtocol::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PredictionRecord;

    fn make_log() -> PredictionLog {
        let mut log = PredictionLog::new(2);
        // Day 0: should be excluded by warm-up.
        log.push(PredictionRecord {
            day: 0,
            slot: 0,
            predicted: 0.0,
            actual_start: 1000.0,
            actual_mean: 1000.0,
        });
        // Day 30, in ROI.
        log.push(PredictionRecord {
            day: 30,
            slot: 0,
            predicted: 900.0,
            actual_start: 950.0,
            actual_mean: 1000.0,
        });
        // Day 31, below ROI (5% of peak).
        log.push(PredictionRecord {
            day: 31,
            slot: 1,
            predicted: 10.0,
            actual_start: 50.0,
            actual_mean: 50.0,
        });
        log
    }

    #[test]
    fn warmup_and_roi_filter_records() {
        let summary = EvalProtocol::paper().evaluate(&make_log());
        assert_eq!(summary.count, 1);
        assert!((summary.mape - 0.10).abs() < 1e-12);
        assert!((summary.mape_prime - 0.05).abs() < 1e-12);
        assert!((summary.rmse - 100.0).abs() < 1e-12);
        assert!((summary.mae - 100.0).abs() < 1e-12);
        assert!((summary.mbe - 100.0).abs() < 1e-12);
    }

    #[test]
    fn zero_roi_and_zero_warmup_keep_all() {
        let protocol = EvalProtocol::new(0.0, 0);
        let summary = protocol.evaluate(&make_log());
        assert_eq!(summary.count, 3);
    }

    #[test]
    fn empty_log_gives_zeros() {
        let summary = EvalProtocol::paper().evaluate(&PredictionLog::new(48));
        assert_eq!(summary.count, 0);
        assert_eq!(summary.mape, 0.0);
    }

    #[test]
    fn percent_helpers() {
        let s = ErrorSummary {
            mape: 0.158,
            mape_prime: 0.42,
            ..Default::default()
        };
        assert!((s.mape_pct() - 15.8).abs() < 1e-12);
        assert!((s.mape_prime_pct() - 42.0).abs() < 1e-12);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn streaming_eval_with_precomputed_peak_matches_log_evaluation() {
        let log = make_log();
        let protocol = EvalProtocol::paper();
        let from_log = protocol.evaluate(&log);
        let mut streaming = StreamingEval::new(protocol, log.peak_actual_mean());
        for r in &log {
            streaming.push_record(*r);
        }
        assert_eq!(streaming.finish(), from_log);
    }

    #[test]
    fn includes_matches_evaluate_semantics() {
        let p = EvalProtocol::paper();
        assert!(p.includes(20, 100.0, 1000.0));
        assert!(!p.includes(19, 100.0, 1000.0));
        assert!(!p.includes(20, 99.0, 1000.0));
    }
}
