//! Aggregation of [`ErrorSummary`]s across runs — the metric layer under
//! fleet scorecards.
//!
//! A fleet evaluation produces one [`ErrorSummary`] per (predictor,
//! scenario) pair; ranking predictors needs those collapsed across
//! scenarios. The aggregate keeps the three views that matter for a
//! robust ranking: the prediction-count-weighted mean (overall
//! accuracy), the unweighted mean (every scenario counts equally, so a
//! short arctic winter is not drowned out by a year of desert sun), and
//! the worst case (tail behaviour).

use crate::summary::ErrorSummary;

/// Collapsed error figures over a set of runs.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SummaryAggregate {
    /// Number of summaries aggregated (zero-count summaries are skipped).
    pub runs: usize,
    /// Total prediction count across runs.
    pub predictions: usize,
    /// Prediction-count-weighted mean MAPE (fraction).
    pub weighted_mape: f64,
    /// Unweighted mean MAPE across runs (fraction).
    pub mean_mape: f64,
    /// Largest per-run MAPE (fraction).
    pub worst_mape: f64,
    /// Unweighted mean MAPE′ across runs (fraction).
    pub mean_mape_prime: f64,
}

impl SummaryAggregate {
    /// Aggregates summaries, ignoring runs with zero evaluated
    /// predictions (a scenario whose ROI filtered everything out — e.g.
    /// polar night — carries no error information).
    pub fn of<'a>(summaries: impl IntoIterator<Item = &'a ErrorSummary>) -> Self {
        let mut agg = SummaryAggregate::default();
        let mut mape_sum = 0.0;
        let mut mape_prime_sum = 0.0;
        let mut weighted_sum = 0.0;
        for s in summaries {
            if s.count == 0 {
                continue;
            }
            agg.runs += 1;
            agg.predictions += s.count;
            mape_sum += s.mape;
            mape_prime_sum += s.mape_prime;
            weighted_sum += s.mape * s.count as f64;
            if s.mape > agg.worst_mape {
                agg.worst_mape = s.mape;
            }
        }
        if agg.runs > 0 {
            agg.mean_mape = mape_sum / agg.runs as f64;
            agg.mean_mape_prime = mape_prime_sum / agg.runs as f64;
        }
        if agg.predictions > 0 {
            agg.weighted_mape = weighted_sum / agg.predictions as f64;
        }
        agg
    }
}

impl std::fmt::Display for SummaryAggregate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean MAPE {:.2}% (weighted {:.2}%, worst {:.2}%) over {} runs",
            self.mean_mape * 100.0,
            self.weighted_mape * 100.0,
            self.worst_mape * 100.0,
            self.runs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(mape: f64, count: usize) -> ErrorSummary {
        ErrorSummary {
            mape,
            mape_prime: mape * 2.0,
            count,
            ..Default::default()
        }
    }

    #[test]
    fn empty_input_gives_zeros() {
        let agg = SummaryAggregate::of([]);
        assert_eq!(agg.runs, 0);
        assert_eq!(agg.mean_mape, 0.0);
        assert_eq!(agg.weighted_mape, 0.0);
    }

    #[test]
    fn zero_count_runs_are_skipped() {
        let runs = [summary(0.5, 0), summary(0.1, 100)];
        let agg = SummaryAggregate::of(&runs);
        assert_eq!(agg.runs, 1);
        assert!((agg.mean_mape - 0.1).abs() < 1e-12);
        assert!((agg.worst_mape - 0.1).abs() < 1e-12);
    }

    #[test]
    fn weighted_and_unweighted_differ_as_expected() {
        let runs = [summary(0.10, 900), summary(0.30, 100)];
        let agg = SummaryAggregate::of(&runs);
        assert!((agg.mean_mape - 0.20).abs() < 1e-12);
        assert!((agg.weighted_mape - 0.12).abs() < 1e-12);
        assert!((agg.worst_mape - 0.30).abs() < 1e-12);
        assert!((agg.mean_mape_prime - 0.40).abs() < 1e-12);
        assert_eq!(agg.predictions, 1000);
        assert!(!agg.to_string().is_empty());
    }
}
