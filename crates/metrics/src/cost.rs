//! Evaluation-cost accounting — the metric layer under tuning loops.
//!
//! A fleet evaluation is itself a workload worth measuring: a tuning
//! loop that re-scores hundreds of candidate predictors needs to know
//! what each job cost (wall time) and how hard each predictor works per
//! slot (candidate configurations evaluated — 1 for a fixed predictor,
//! `|α| · K_max` for a dynamic selector). [`RunCost`] records one job;
//! [`CostAggregate`] collapses many.
//!
//! Wall time is **not deterministic** and must never leak into
//! byte-pinned artifacts (scorecard/report JSON); candidate counts are
//! spec-derived and deterministic, so they may. Renderers follow that
//! split: JSON carries candidate counts only, text reports show both.

/// Cost of one evaluation job.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunCost {
    /// Wall-clock time of the job in nanoseconds (non-deterministic;
    /// keep out of byte-pinned output).
    pub wall_nanos: u64,
    /// Peak number of candidate configurations the predictor evaluated
    /// per slot (deterministic, spec-derived).
    pub peak_candidates: usize,
    /// Peak bytes of trace-derived data the job held — the full
    /// materialized trace on the cached path; on the streamed path one
    /// day's buffer plus the metrics log when the horizon is short
    /// enough to materialize it. Varies with cache policy and
    /// warm/cold state, so it belongs in text reports only, never in
    /// byte-pinned JSON.
    pub peak_trace_bytes: usize,
}

/// Collapsed cost figures over a set of jobs.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CostAggregate {
    /// Number of jobs aggregated.
    pub jobs: usize,
    /// Total wall-clock nanoseconds across jobs.
    pub total_wall_nanos: u64,
    /// Largest per-job wall-clock nanoseconds.
    pub max_wall_nanos: u64,
    /// Largest per-job peak candidate count.
    pub peak_candidates: usize,
    /// Largest per-job peak trace memory in bytes (text-report only,
    /// like wall time — see [`RunCost::peak_trace_bytes`]).
    pub peak_trace_bytes: usize,
}

impl CostAggregate {
    /// Aggregates job costs.
    pub fn of(costs: impl IntoIterator<Item = RunCost>) -> Self {
        let mut agg = CostAggregate::default();
        for cost in costs {
            agg.add(cost);
        }
        agg
    }

    /// Folds one more job in.
    pub fn add(&mut self, cost: RunCost) {
        self.jobs += 1;
        self.total_wall_nanos += cost.wall_nanos;
        self.max_wall_nanos = self.max_wall_nanos.max(cost.wall_nanos);
        self.peak_candidates = self.peak_candidates.max(cost.peak_candidates);
        self.peak_trace_bytes = self.peak_trace_bytes.max(cost.peak_trace_bytes);
    }

    /// Merges another aggregate (e.g. per-round costs into a loop total).
    pub fn merge(&mut self, other: &CostAggregate) {
        self.jobs += other.jobs;
        self.total_wall_nanos += other.total_wall_nanos;
        self.max_wall_nanos = self.max_wall_nanos.max(other.max_wall_nanos);
        self.peak_candidates = self.peak_candidates.max(other.peak_candidates);
        self.peak_trace_bytes = self.peak_trace_bytes.max(other.peak_trace_bytes);
    }

    /// Total wall time in seconds.
    pub fn total_wall_seconds(&self) -> f64 {
        self.total_wall_nanos as f64 / 1e9
    }
}

impl std::fmt::Display for CostAggregate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} jobs in {:.3}s wall (max {:.3}s, peak {} candidates, peak trace {:.1} KiB)",
            self.jobs,
            self.total_wall_seconds(),
            self.max_wall_nanos as f64 / 1e9,
            self.peak_candidates,
            self.peak_trace_bytes as f64 / 1024.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_aggregate_is_zero() {
        let agg = CostAggregate::of([]);
        assert_eq!(agg.jobs, 0);
        assert_eq!(agg.total_wall_nanos, 0);
        assert_eq!(agg.peak_candidates, 0);
    }

    #[test]
    fn aggregate_sums_and_maxes() {
        let agg = CostAggregate::of([
            RunCost {
                wall_nanos: 100,
                peak_candidates: 1,
                peak_trace_bytes: 4096,
            },
            RunCost {
                wall_nanos: 300,
                peak_candidates: 30,
                peak_trace_bytes: 1024,
            },
            RunCost {
                wall_nanos: 200,
                peak_candidates: 5,
                peak_trace_bytes: 2048,
            },
        ]);
        assert_eq!(agg.jobs, 3);
        assert_eq!(agg.total_wall_nanos, 600);
        assert_eq!(agg.max_wall_nanos, 300);
        assert_eq!(agg.peak_candidates, 30);
        assert_eq!(agg.peak_trace_bytes, 4096);
        assert!(!agg.to_string().is_empty());
    }

    #[test]
    fn merge_matches_flat_aggregation() {
        let a = RunCost {
            wall_nanos: 10,
            peak_candidates: 2,
            peak_trace_bytes: 100,
        };
        let b = RunCost {
            wall_nanos: 20,
            peak_candidates: 7,
            peak_trace_bytes: 900,
        };
        let mut left = CostAggregate::of([a]);
        left.merge(&CostAggregate::of([b]));
        assert_eq!(left, CostAggregate::of([a, b]));
    }
}
