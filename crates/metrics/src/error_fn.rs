//! Average error functions and their streaming accumulators.
//!
//! The paper discusses why MAPE is the right average for harvested-energy
//! prediction (§III): RMSE is outlier-dominated and scale-dependent, MAE
//! is scale-dependent; MAPE is scale-free and therefore comparable across
//! data sets. All four (plus the mean bias) are implemented so the
//! comparison itself can be reproduced.

/// The average error functions discussed in the paper.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum ErrorFunction {
    /// Mean Absolute Percentage Error — the paper's choice (Eq. 8).
    Mape,
    /// Root Mean Squared Error.
    Rmse,
    /// Mean Absolute Error.
    Mae,
    /// Mean Bias Error (signed mean of `actual − predicted`).
    Mbe,
}

impl ErrorFunction {
    /// Evaluates the error function over `(actual, predicted)` pairs.
    ///
    /// Pairs with `actual == 0` are skipped for MAPE (percentage of zero
    /// is undefined); the paper's region of interest removes these anyway.
    ///
    /// Returns `0.0` for an empty input.
    ///
    /// # Example
    ///
    /// ```
    /// use pred_metrics::ErrorFunction;
    ///
    /// let pairs = [(100.0, 90.0), (200.0, 220.0)];
    /// let mape = ErrorFunction::Mape.evaluate(pairs.iter().copied());
    /// assert!((mape - 0.10).abs() < 1e-12); // (10% + 10%) / 2
    /// ```
    pub fn evaluate(self, pairs: impl IntoIterator<Item = (f64, f64)>) -> f64 {
        match self {
            ErrorFunction::Mape => {
                let mut acc = MapeAccumulator::new();
                for (actual, predicted) in pairs {
                    acc.add(actual, predicted);
                }
                acc.value()
            }
            ErrorFunction::Rmse => {
                let mut acc = RmseAccumulator::new();
                for (actual, predicted) in pairs {
                    acc.add(actual, predicted);
                }
                acc.value()
            }
            ErrorFunction::Mae => {
                let mut acc = MaeAccumulator::new();
                for (actual, predicted) in pairs {
                    acc.add(actual, predicted);
                }
                acc.value()
            }
            ErrorFunction::Mbe => {
                let mut acc = MbeAccumulator::new();
                for (actual, predicted) in pairs {
                    acc.add(actual, predicted);
                }
                acc.value()
            }
        }
    }
}

impl std::fmt::Display for ErrorFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrorFunction::Mape => write!(f, "MAPE"),
            ErrorFunction::Rmse => write!(f, "RMSE"),
            ErrorFunction::Mae => write!(f, "MAE"),
            ErrorFunction::Mbe => write!(f, "MBE"),
        }
    }
}

/// Streaming MAPE: `mean(|actual − predicted| / actual)`.
///
/// Pairs with `actual == 0` are ignored (see [`ErrorFunction::evaluate`]).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct MapeAccumulator {
    sum: f64,
    count: usize,
}

impl MapeAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one `(actual, predicted)` pair.
    pub fn add(&mut self, actual: f64, predicted: f64) {
        if actual != 0.0 {
            self.sum += ((actual - predicted) / actual).abs();
            self.count += 1;
        }
    }

    /// Adds a pre-computed absolute percentage error.
    pub fn add_abs_pct(&mut self, abs_pct: f64) {
        self.sum += abs_pct;
        self.count += 1;
    }

    /// Number of accumulated pairs.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The MAPE as a fraction (multiply by 100 for percent); `0.0` when
    /// empty.
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Streaming RMSE: `sqrt(mean((actual − predicted)²))`.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct RmseAccumulator {
    sum_sq: f64,
    count: usize,
}

impl RmseAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one `(actual, predicted)` pair.
    pub fn add(&mut self, actual: f64, predicted: f64) {
        let e = actual - predicted;
        self.sum_sq += e * e;
        self.count += 1;
    }

    /// Number of accumulated pairs.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The RMSE; `0.0` when empty.
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum_sq / self.count as f64).sqrt()
        }
    }
}

/// Streaming MAE: `mean(|actual − predicted|)`.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct MaeAccumulator {
    sum: f64,
    count: usize,
}

impl MaeAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one `(actual, predicted)` pair.
    pub fn add(&mut self, actual: f64, predicted: f64) {
        self.sum += (actual - predicted).abs();
        self.count += 1;
    }

    /// Number of accumulated pairs.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The MAE; `0.0` when empty.
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Streaming mean bias error: `mean(actual − predicted)`. Positive means
/// systematic under-prediction.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct MbeAccumulator {
    sum: f64,
    count: usize,
}

impl MbeAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one `(actual, predicted)` pair.
    pub fn add(&mut self, actual: f64, predicted: f64) {
        self.sum += actual - predicted;
        self.count += 1;
    }

    /// Number of accumulated pairs.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The MBE; `0.0` when empty.
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAIRS: [(f64, f64); 4] = [(100.0, 90.0), (100.0, 110.0), (50.0, 50.0), (200.0, 100.0)];

    #[test]
    fn mape_matches_hand_computation() {
        let mape = ErrorFunction::Mape.evaluate(PAIRS);
        // (0.1 + 0.1 + 0 + 0.5) / 4
        assert!((mape - 0.175).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let mape = ErrorFunction::Mape.evaluate([(0.0, 10.0), (100.0, 90.0)]);
        assert!((mape - 0.10).abs() < 1e-12);
    }

    #[test]
    fn rmse_matches_hand_computation() {
        let rmse = ErrorFunction::Rmse.evaluate(PAIRS);
        let expect = ((100.0_f64 + 100.0 + 0.0 + 10_000.0) / 4.0).sqrt();
        assert!((rmse - expect).abs() < 1e-12);
    }

    #[test]
    fn mae_and_mbe_match_hand_computation() {
        let mae = ErrorFunction::Mae.evaluate(PAIRS);
        assert!((mae - (10.0 + 10.0 + 0.0 + 100.0) / 4.0).abs() < 1e-12);
        let mbe = ErrorFunction::Mbe.evaluate(PAIRS);
        assert!((mbe - (10.0 - 10.0 + 0.0 + 100.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_give_zero() {
        for f in [
            ErrorFunction::Mape,
            ErrorFunction::Rmse,
            ErrorFunction::Mae,
            ErrorFunction::Mbe,
        ] {
            assert_eq!(f.evaluate(std::iter::empty()), 0.0);
        }
    }

    #[test]
    fn perfect_prediction_gives_zero() {
        let pairs = [(10.0, 10.0), (42.0, 42.0)];
        for f in [
            ErrorFunction::Mape,
            ErrorFunction::Rmse,
            ErrorFunction::Mae,
            ErrorFunction::Mbe,
        ] {
            assert_eq!(f.evaluate(pairs), 0.0, "{f}");
        }
    }

    #[test]
    fn mape_is_scale_invariant_others_are_not() {
        let scaled: Vec<(f64, f64)> = PAIRS.iter().map(|&(a, p)| (a * 7.0, p * 7.0)).collect();
        let m1 = ErrorFunction::Mape.evaluate(PAIRS);
        let m2 = ErrorFunction::Mape.evaluate(scaled.iter().copied());
        assert!((m1 - m2).abs() < 1e-12);
        let r1 = ErrorFunction::Rmse.evaluate(PAIRS);
        let r2 = ErrorFunction::Rmse.evaluate(scaled.iter().copied());
        assert!((r2 - 7.0 * r1).abs() < 1e-9);
    }

    #[test]
    fn rmse_is_outlier_dominated_relative_to_mae() {
        // One huge outlier: RMSE blows past MAE, the paper's argument
        // against RMSE for spiky solar errors.
        let pairs = [(100.0, 100.0); 9]
            .iter()
            .copied()
            .chain(std::iter::once((100.0, 1100.0)))
            .collect::<Vec<_>>();
        let rmse = ErrorFunction::Rmse.evaluate(pairs.iter().copied());
        let mae = ErrorFunction::Mae.evaluate(pairs.iter().copied());
        assert!(rmse > 3.0 * mae);
    }

    #[test]
    fn accumulator_counts() {
        let mut acc = MapeAccumulator::new();
        acc.add(10.0, 9.0);
        acc.add(0.0, 9.0); // skipped
        acc.add_abs_pct(0.5);
        assert_eq!(acc.count(), 2);
        assert!((acc.value() - (0.1 + 0.5) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_names() {
        assert_eq!(ErrorFunction::Mape.to_string(), "MAPE");
        assert_eq!(ErrorFunction::Rmse.to_string(), "RMSE");
    }
}
