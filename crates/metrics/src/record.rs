//! Prediction logs: the raw material of every error evaluation.

/// One prediction outcome: what was predicted at a slot boundary and what
/// the slot actually delivered.
///
/// Index semantics follow the paper's Fig. 4: the prediction `ê(n+1)` is
/// made at the boundary of slot `n` and estimates the energy of slot `n`
/// itself (the interval between boundaries `n` and `n+1`), so the record
/// is keyed by slot `n`.
#[derive(Copy, Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PredictionRecord {
    /// 0-based day of the slot being estimated.
    pub day: u32,
    /// 0-based index of the slot within its day.
    pub slot: u32,
    /// The predicted power `ê(n+1)`.
    pub predicted: f64,
    /// The measured sample at the *next* boundary — `e(n+1)`, the
    /// reference of the paper's Eq. 6 / MAPE′.
    pub actual_start: f64,
    /// The mean power over the slot — `ē_n`, the reference of Eq. 7 /
    /// MAPE.
    pub actual_mean: f64,
}

impl PredictionRecord {
    /// Signed error against the mean-power reference (Eq. 7):
    /// `ē − ê`.
    pub fn error(&self) -> f64 {
        self.actual_mean - self.predicted
    }

    /// Signed error against the slot-start sample (Eq. 6): `e − ê`.
    pub fn error_prime(&self) -> f64 {
        self.actual_start - self.predicted
    }
}

/// An append-only log of prediction outcomes for one run of a predictor
/// over one trace at one `N`.
///
/// # Example
///
/// ```
/// use pred_metrics::{PredictionLog, PredictionRecord};
///
/// let mut log = PredictionLog::new(48);
/// log.push(PredictionRecord {
///     day: 21, slot: 30, predicted: 410.0, actual_start: 400.0, actual_mean: 402.0,
/// });
/// assert_eq!(log.len(), 1);
/// assert_eq!(log.slots_per_day(), 48);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PredictionLog {
    slots_per_day: usize,
    records: Vec<PredictionRecord>,
}

impl PredictionLog {
    /// Creates an empty log for a given slot count per day.
    pub fn new(slots_per_day: usize) -> Self {
        PredictionLog {
            slots_per_day,
            records: Vec::new(),
        }
    }

    /// Creates an empty log with pre-allocated capacity.
    pub fn with_capacity(slots_per_day: usize, capacity: usize) -> Self {
        PredictionLog {
            slots_per_day,
            records: Vec::with_capacity(capacity),
        }
    }

    /// The slot count per day this log was produced at.
    pub fn slots_per_day(&self) -> usize {
        self.slots_per_day
    }

    /// Appends one record.
    pub fn push(&mut self, record: PredictionRecord) {
        self.records.push(record);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records in insertion order.
    pub fn records(&self) -> &[PredictionRecord] {
        &self.records
    }

    /// Iterates over records.
    pub fn iter(&self) -> std::slice::Iter<'_, PredictionRecord> {
        self.records.iter()
    }

    /// The largest `actual_mean` in the log — the peak used by the region
    /// of interest.
    pub fn peak_actual_mean(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.actual_mean)
            .fold(0.0, f64::max)
    }
}

impl Extend<PredictionRecord> for PredictionLog {
    fn extend<T: IntoIterator<Item = PredictionRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

impl<'a> IntoIterator for &'a PredictionLog {
    type Item = &'a PredictionRecord;
    type IntoIter = std::slice::Iter<'a, PredictionRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(day: u32, mean: f64) -> PredictionRecord {
        PredictionRecord {
            day,
            slot: 0,
            predicted: 1.0,
            actual_start: 2.0,
            actual_mean: mean,
        }
    }

    #[test]
    fn errors_have_paper_sign_convention() {
        let r = PredictionRecord {
            day: 0,
            slot: 0,
            predicted: 10.0,
            actual_start: 12.0,
            actual_mean: 11.0,
        };
        assert_eq!(r.error(), 1.0);
        assert_eq!(r.error_prime(), 2.0);
    }

    #[test]
    fn log_grows_and_iterates() {
        let mut log = PredictionLog::new(24);
        assert!(log.is_empty());
        log.push(record(0, 5.0));
        log.extend([record(1, 7.0), record(2, 3.0)]);
        assert_eq!(log.len(), 3);
        assert_eq!(log.peak_actual_mean(), 7.0);
        let days: Vec<u32> = (&log).into_iter().map(|r| r.day).collect();
        assert_eq!(days, vec![0, 1, 2]);
    }

    #[test]
    fn with_capacity_preallocates() {
        let log = PredictionLog::with_capacity(48, 1000);
        assert_eq!(log.slots_per_day(), 48);
        assert!(log.is_empty());
    }
}
