//! Property tests for the node simulator: storage invariants and energy
//! conservation under arbitrary operation sequences and configurations.

use harvest_sim::{
    simulate_node, EnergyNeutralManager, EnergyStorage, FixedDutyManager, Load, NodeConfig,
    SolarPanel,
};
use proptest::prelude::*;
use solar_predict::PersistencePredictor;
use solar_trace::{PowerTrace, Resolution, SlotView, SlotsPerDay};

#[derive(Clone, Debug)]
enum StorageOp {
    Charge(f64),
    Discharge(f64),
    Leak(f64),
}

fn op_strategy() -> impl Strategy<Value = StorageOp> {
    prop_oneof![
        (0.0f64..500.0).prop_map(StorageOp::Charge),
        (0.0f64..500.0).prop_map(StorageOp::Discharge),
        (0.0f64..3600.0).prop_map(StorageOp::Leak),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn storage_level_stays_in_bounds(
        capacity in 10.0f64..5000.0,
        initial_frac in 0.0f64..=1.0,
        charge_eff in 0.5f64..=1.0,
        discharge_eff in 0.5f64..=1.0,
        leakage in 0.0f64..0.01,
        ops in proptest::collection::vec(op_strategy(), 0..200),
    ) {
        let mut storage = EnergyStorage::with_losses(
            capacity,
            initial_frac * capacity,
            charge_eff,
            discharge_eff,
            leakage,
        )
        .unwrap();
        for op in ops {
            match op {
                StorageOp::Charge(j) => {
                    let out = storage.charge(j);
                    prop_assert!(out.stored_j >= 0.0 && out.wasted_j >= -1e-12);
                    prop_assert!(out.stored_j + out.wasted_j <= j + 1e-9);
                }
                StorageOp::Discharge(j) => {
                    let delivered = storage.discharge(j);
                    prop_assert!(delivered >= 0.0 && delivered <= j + 1e-9);
                }
                StorageOp::Leak(dt) => {
                    let leaked = storage.leak(dt);
                    prop_assert!(leaked >= 0.0);
                }
            }
            prop_assert!(storage.level_j() >= -1e-9);
            prop_assert!(storage.level_j() <= capacity + 1e-9);
        }
    }

    #[test]
    fn node_simulation_conserves_energy(
        days in 2usize..6,
        day_power in 10.0f64..1000.0,
        capacity in 100.0f64..5000.0,
        duty in 0.0f64..=1.0,
        charge_eff in 0.6f64..=1.0,
        discharge_eff in 0.6f64..=1.0,
    ) {
        let n = 12usize;
        let samples: Vec<f64> = (0..days * n)
            .map(|i| if (3..9).contains(&(i % n)) { day_power } else { 0.0 })
            .collect();
        let trace = PowerTrace::new(
            "prop",
            Resolution::from_seconds(86_400 / n as u32).unwrap(),
            samples,
        )
        .unwrap();
        let view = SlotView::new(&trace, SlotsPerDay::new(n as u32).unwrap()).unwrap();
        let config = NodeConfig {
            panel: SolarPanel::new(0.01, 0.15).unwrap(),
            storage: EnergyStorage::with_losses(
                capacity,
                capacity / 2.0,
                charge_eff,
                discharge_eff,
                0.001,
            )
            .unwrap(),
            load: Load::new(0.05, 0.0001).unwrap(),
        };
        let mut predictor = PersistencePredictor::new(n);
        let mut manager = FixedDutyManager::new(duty);
        let report = simulate_node(&view, &mut predictor, &mut manager, &config);
        prop_assert!(
            report.energy_balance_error_j() < 1e-6 * report.harvested_j.max(1.0),
            "residual {}",
            report.energy_balance_error_j()
        );
        prop_assert!((report.mean_duty - duty).abs() < 1e-9);
        prop_assert!(report.utilization >= 0.0 && report.utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn energy_neutral_duty_is_always_valid(
        predicted in 0.0f64..5.0,
        level_frac in 0.0f64..=1.0,
        gain in 0.0f64..1.0,
        target in 0.0f64..=1.0,
    ) {
        use harvest_sim::{PowerManager, SlotContext};
        let mut manager = EnergyNeutralManager {
            min_duty: 0.0,
            max_duty: 1.0,
            target_soc: target,
            gain,
        };
        let ctx = SlotContext {
            predicted_harvest_w: predicted,
            storage_level_j: level_frac * 1000.0,
            storage_capacity_j: 1000.0,
            slot_seconds: 1800.0,
            load_active_w: 0.05,
            load_sleep_w: 0.001,
        };
        let duty = manager.plan_duty(&ctx);
        prop_assert!((0.0..=1.0).contains(&duty), "duty {duty}");
    }
}
