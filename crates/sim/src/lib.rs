//! Energy-harvesting node simulator.
//!
//! The paper's Fig. 1 frames prediction inside a harvested-energy
//! management loop: an energy harvester feeds storage through a power
//! conditioner, an intelligent controller adapts the embedded
//! application's consumption to the *predicted* incoming energy. This
//! crate closes that loop so the repository can demonstrate (and
//! benchmark) what prediction accuracy buys:
//!
//! * [`EnergyStorage`] — capacity-limited store with charge/discharge
//!   efficiencies and leakage,
//! * [`SolarPanel`] — irradiance → electrical power,
//! * [`Load`] — a duty-cycled consumer (sensor node),
//! * [`PowerManager`] implementations — a prediction-driven
//!   energy-neutral controller (after Kansal et al.), plus greedy and
//!   fixed-duty baselines,
//! * [`simulate_node`] — a slot-stepped simulation with full energy
//!   accounting (conservation is property-tested),
//! * [`SlotHook`] / [`simulate_node_hooked`] — per-slot fault injection
//!   (dead panels, corrupted sensors) that cannot break the energy
//!   ledger,
//! * [`simulate_batch`] — many (predictor, manager, hardware, fault)
//!   jobs over one trace, the unit the `scenario-fleet` engine
//!   parallelises.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use harvest_sim::{simulate_node, EnergyNeutralManager, EnergyStorage, Load, NodeConfig, SolarPanel};
//! use solar_predict::{WcmaParams, WcmaPredictor};
//! use solar_trace::{PowerTrace, Resolution, SlotsPerDay, SlotView};
//!
//! let day: Vec<f64> = (0..24).map(|h| if (6..18).contains(&h) { 600.0 } else { 0.0 }).collect();
//! let samples: Vec<f64> = (0..30).flat_map(|_| day.clone()).collect();
//! let trace = PowerTrace::new("sim", Resolution::from_minutes(60)?, samples)?;
//! let view = SlotView::new(&trace, SlotsPerDay::new(24)?)?;
//!
//! let config = NodeConfig {
//!     panel: SolarPanel::new(0.01, 0.15)?,          // 100 cm², 15%
//!     storage: EnergyStorage::new(200.0, 100.0)?,   // 200 J supercap
//!     load: Load::new(0.05, 0.0001)?,               // 50 mW active
//! };
//! let mut predictor = WcmaPredictor::new(WcmaParams::new(0.5, 5, 2, 24)?);
//! let mut manager = EnergyNeutralManager::default();
//! let report = simulate_node(&view, &mut predictor, &mut manager, &config);
//! assert!(report.energy_balance_error_j() < 1e-6);
//! # Ok(())
//! # }
//! ```

mod batch;
mod error;
mod hook;
mod load;
mod manager;
mod node;
mod panel;
mod storage;
mod stream;

pub use batch::{simulate_batch, BatchJob, BatchOutcome};
pub use error::SimError;
pub use hook::{NoFaults, SlotHook};
pub use load::Load;
pub use manager::{
    EnergyNeutralManager, FixedDutyManager, GreedyManager, PowerManager, SlotContext,
};
pub use node::{simulate_node, simulate_node_hooked, NodeConfig, NodeReport};
pub use panel::SolarPanel;
pub use storage::{ChargeOutcome, EnergyStorage};
pub use stream::{simulate_node_streamed, NodeSimulation, SimDayCheckpoint, SlotInput};
