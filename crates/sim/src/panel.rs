//! Photovoltaic panel model.

use crate::error::SimError;

/// A PV panel converting irradiance (W/m²) into electrical power, with a
/// fixed conversion efficiency folding in the power-conditioning stage of
/// the paper's Fig. 1.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use harvest_sim::SolarPanel;
///
/// // A 100 cm² panel at 15% efficiency under full sun (1000 W/m²).
/// let panel = SolarPanel::new(0.01, 0.15)?;
/// assert!((panel.power_w(1000.0) - 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Copy, Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SolarPanel {
    area_m2: f64,
    efficiency: f64,
}

impl SolarPanel {
    /// Creates a panel with `area_m2` square metres at `efficiency`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidPanel`] unless area is positive and
    /// efficiency is in `(0, 1]`.
    pub fn new(area_m2: f64, efficiency: f64) -> Result<Self, SimError> {
        if !(area_m2.is_finite() && area_m2 > 0.0) {
            return Err(SimError::InvalidPanel {
                message: format!("area {area_m2} must be positive"),
            });
        }
        if !(efficiency.is_finite() && 0.0 < efficiency && efficiency <= 1.0) {
            return Err(SimError::InvalidPanel {
                message: format!("efficiency {efficiency} must be in (0, 1]"),
            });
        }
        Ok(SolarPanel {
            area_m2,
            efficiency,
        })
    }

    /// Panel area in m².
    pub fn area_m2(&self) -> f64 {
        self.area_m2
    }

    /// Conversion efficiency.
    pub fn efficiency(&self) -> f64 {
        self.efficiency
    }

    /// Electrical power in watts for an irradiance in W/m².
    #[inline]
    pub fn power_w(&self, irradiance_w_m2: f64) -> f64 {
        irradiance_w_m2.max(0.0) * self.area_m2 * self.efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_parameters() {
        assert!(SolarPanel::new(0.0, 0.2).is_err());
        assert!(SolarPanel::new(-1.0, 0.2).is_err());
        assert!(SolarPanel::new(0.01, 0.0).is_err());
        assert!(SolarPanel::new(0.01, 1.5).is_err());
    }

    #[test]
    fn power_is_linear_in_irradiance() {
        let p = SolarPanel::new(0.02, 0.1).unwrap();
        assert_eq!(p.power_w(500.0), 2.0 * p.power_w(250.0));
        assert_eq!(p.power_w(0.0), 0.0);
        assert_eq!(p.power_w(-10.0), 0.0);
    }

    #[test]
    fn accessors() {
        let p = SolarPanel::new(0.02, 0.1).unwrap();
        assert_eq!(p.area_m2(), 0.02);
        assert_eq!(p.efficiency(), 0.1);
    }
}
