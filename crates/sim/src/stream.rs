//! Streaming simulation: the slot-stepped node loop as a push-style
//! state machine, so a slot source of any kind — a materialized
//! `SlotView`, a synthetic generator stream, a network feed — can drive
//! the simulation without a full-horizon trace in memory.
//!
//! [`simulate_node_hooked`](crate::simulate_node_hooked) is a thin
//! wrapper over this core (it feeds a view's slots through the same
//! machine), so the streamed and materialized paths are bit-identical by
//! construction.

use crate::hook::SlotHook;
use crate::manager::{PowerManager, SlotContext};
use crate::node::{NodeConfig, NodeReport};
use solar_predict::Predictor;

/// One slot of input to the simulation: the discretized trace values the
/// loop consumes (mirrors `solar_trace::SlotView` accessors).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SlotInput {
    /// 0-based day.
    pub day: usize,
    /// 0-based slot within the day.
    pub slot: usize,
    /// The measured sample at the slot boundary (predictor observation).
    pub start_sample: f64,
    /// Mean power over the slot (drives the slot's harvest).
    pub mean_power: f64,
}

/// The node simulation as an incremental state machine: feed slots with
/// [`NodeSimulation::on_slot`], collect the report with
/// [`NodeSimulation::finish`].
///
/// Per slot the machine performs exactly the steps of
/// [`crate::simulate_node`] (hook, harvest, load, leakage,
/// observe/predict/plan) — the pull-style entry points are wrappers over
/// this type.
pub struct NodeSimulation<'a> {
    predictor: &'a mut dyn Predictor,
    manager: &'a mut dyn PowerManager,
    hook: &'a mut dyn SlotHook,
    config: NodeConfig,
    storage_initial_j: f64,
    slot_s: f64,
    report: NodeReport,
    duty_sum: f64,
    planned_duty: f64,
}

impl<'a> NodeSimulation<'a> {
    /// Starts a simulation of `config` at slot duration `slot_seconds`.
    ///
    /// # Panics
    ///
    /// Panics if `slot_seconds` is not positive, or if the predictor's
    /// discretization disagrees with it (`slots_per_day × slot_seconds`
    /// must be one day) — the same mismatch guard the view-driven entry
    /// points enforce; running a predictor at the wrong N is always a
    /// bug.
    pub fn new(
        predictor: &'a mut dyn Predictor,
        manager: &'a mut dyn PowerManager,
        config: &NodeConfig,
        hook: &'a mut dyn SlotHook,
        slot_seconds: f64,
    ) -> Self {
        assert!(
            slot_seconds > 0.0,
            "slot duration {slot_seconds} must be positive"
        );
        let day_seconds = predictor.slots_per_day() as f64 * slot_seconds;
        assert!(
            (day_seconds - 86_400.0).abs() < 1e-6,
            "predictor configured for N={} but slots of {slot_seconds} s make a {day_seconds} s day",
            predictor.slots_per_day()
        );
        let config = config.clone();
        let storage_initial_j = config.storage.level_j();
        NodeSimulation {
            predictor,
            manager,
            hook,
            config,
            storage_initial_j,
            slot_s: slot_seconds,
            report: NodeReport::default(),
            duty_sum: 0.0,
            planned_duty: 0.0,
        }
    }

    /// Advances the simulation by one slot.
    pub fn on_slot(&mut self, input: SlotInput) {
        let SlotInput {
            day,
            slot,
            start_sample,
            mean_power,
        } = input;
        // 0. Fault injection: the hook may rewrite what the panel
        //    produced and what the sensor will report.
        let harvest_w = self.config.panel.power_w(mean_power);
        let mut harvest_j = harvest_w * self.slot_s;
        let mut measured = start_sample;
        self.hook.on_slot(day, slot, &mut harvest_j, &mut measured);
        let harvest_j = harvest_j.max(0.0);

        // 1. Harvest the slot's actual energy.
        self.report.harvested_j += harvest_j;
        let charge = self.config.storage.charge(harvest_j);
        self.report.charge_waste_j += charge.wasted_j;

        // 2. Run the load at the planned duty.
        let want_j = self.config.load.energy_j(self.planned_duty, self.slot_s);
        let level_before = self.config.storage.level_j();
        let delivered = self.config.storage.discharge(want_j);
        let withdrawn = level_before - self.config.storage.level_j();
        self.report.consumed_j += delivered;
        self.report.discharge_loss_j += withdrawn - delivered;
        if delivered + 1e-12 < want_j {
            self.report.brownouts += 1;
        }

        // 3. Leakage.
        self.report.leaked_j += self.config.storage.leak(self.slot_s);

        // 4. Observe, predict, plan the next slot.
        let predicted = self.predictor.observe_and_predict(measured);
        let ctx = SlotContext {
            predicted_harvest_w: self.config.panel.power_w(predicted),
            storage_level_j: self.config.storage.level_j(),
            storage_capacity_j: self.config.storage.capacity_j(),
            slot_seconds: self.slot_s,
            load_active_w: self.config.load.active_w(),
            load_sleep_w: self.config.load.sleep_w(),
        };
        self.planned_duty = self.manager.plan_duty(&ctx);
        assert!(
            (0.0..=1.0).contains(&self.planned_duty),
            "manager {} produced duty {}",
            self.manager.name(),
            self.planned_duty
        );
        self.duty_sum += self.planned_duty;
        self.report.slots += 1;
    }

    /// Finalizes the accounting and returns the report.
    pub fn finish(mut self) -> NodeReport {
        self.report.stored_delta_j = self.config.storage.level_j() - self.storage_initial_j;
        self.report.mean_duty = if self.report.slots > 0 {
            self.duty_sum / self.report.slots as f64
        } else {
            0.0
        };
        // Released energy = harvest + net storage drawdown = consumed +
        // every loss term, so the ratio is a true fraction.
        let released = self.report.harvested_j - self.report.stored_delta_j;
        self.report.utilization = if released > 0.0 {
            self.report.consumed_j / released
        } else {
            0.0
        };
        self.report
    }
}

/// Simulates a node over any slot source — the streaming counterpart of
/// [`crate::simulate_node_hooked`], which wraps this function with a
/// view's slots. Slots must arrive in time order; memory use is O(1) in
/// the horizon length.
pub fn simulate_node_streamed(
    slots: impl IntoIterator<Item = SlotInput>,
    slot_seconds: f64,
    predictor: &mut dyn Predictor,
    manager: &mut dyn PowerManager,
    config: &NodeConfig,
    hook: &mut dyn SlotHook,
) -> NodeReport {
    let mut sim = NodeSimulation::new(predictor, manager, config, hook, slot_seconds);
    for slot in slots {
        sim.on_slot(slot);
    }
    sim.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::NoFaults;
    use crate::manager::EnergyNeutralManager;
    use crate::node::simulate_node;
    use crate::panel::SolarPanel;
    use crate::storage::EnergyStorage;
    use crate::Load;
    use solar_predict::{WcmaParams, WcmaPredictor};
    use solar_trace::{PowerTrace, Resolution, SlotView, SlotsPerDay};

    fn config() -> NodeConfig {
        NodeConfig {
            panel: SolarPanel::new(0.01, 0.15).unwrap(),
            storage: EnergyStorage::with_losses(500.0, 250.0, 0.9, 0.9, 0.001).unwrap(),
            load: Load::new(0.05, 0.0001).unwrap(),
        }
    }

    #[test]
    fn streamed_simulation_is_bit_identical_to_view_simulation() {
        let day: Vec<f64> = (0..24)
            .map(|h| {
                if (6..18).contains(&h) {
                    550.0 + h as f64
                } else {
                    0.0
                }
            })
            .collect();
        let samples: Vec<f64> = (0..25).flat_map(|_| day.clone()).collect();
        let trace = PowerTrace::new("s", Resolution::from_minutes(60).unwrap(), samples).unwrap();
        let view = SlotView::new(&trace, SlotsPerDay::new(24).unwrap()).unwrap();

        let mut p1 = WcmaPredictor::new(WcmaParams::new(0.5, 5, 2, 24).unwrap());
        let mut m1 = EnergyNeutralManager::default();
        let via_view = simulate_node(&view, &mut p1, &mut m1, &config());

        let mut p2 = WcmaPredictor::new(WcmaParams::new(0.5, 5, 2, 24).unwrap());
        let mut m2 = EnergyNeutralManager::default();
        let inputs = view.iter().map(|(id, start, mean)| SlotInput {
            day: id.day as usize,
            slot: id.slot as usize,
            start_sample: start,
            mean_power: mean,
        });
        let via_stream = simulate_node_streamed(
            inputs,
            view.slot_seconds(),
            &mut p2,
            &mut m2,
            &config(),
            &mut NoFaults,
        );
        assert_eq!(via_view, via_stream);
    }

    #[test]
    fn empty_stream_yields_empty_report() {
        let mut p = WcmaPredictor::new(WcmaParams::new(0.5, 5, 2, 24).unwrap());
        let mut m = EnergyNeutralManager::default();
        let report = simulate_node_streamed(
            std::iter::empty(),
            3600.0,
            &mut p,
            &mut m,
            &config(),
            &mut NoFaults,
        );
        assert_eq!(report.slots, 0);
        assert_eq!(report.mean_duty, 0.0);
        assert_eq!(report.utilization, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_slot_duration_panics() {
        let mut p = WcmaPredictor::new(WcmaParams::new(0.5, 5, 2, 24).unwrap());
        let mut m = EnergyNeutralManager::default();
        let cfg = config();
        let mut hook = NoFaults;
        let _ = NodeSimulation::new(&mut p, &mut m, &cfg, &mut hook, 0.0);
    }

    #[test]
    #[should_panic(expected = "predictor configured for")]
    fn mismatched_discretization_panics() {
        // A predictor built for N=24 fed 48-slot (1800 s) days is the
        // silent-corruption case the guard exists for.
        let mut p = WcmaPredictor::new(WcmaParams::new(0.5, 5, 2, 24).unwrap());
        let mut m = EnergyNeutralManager::default();
        let cfg = config();
        let mut hook = NoFaults;
        let _ = NodeSimulation::new(&mut p, &mut m, &cfg, &mut hook, 1800.0);
    }
}
