//! Streaming simulation: the slot-stepped node loop as a push-style
//! state machine, so a slot source of any kind — a materialized
//! `SlotView`, a synthetic generator stream, a network feed — can drive
//! the simulation without a full-horizon trace in memory.
//!
//! [`simulate_node_hooked`](crate::simulate_node_hooked) is a thin
//! wrapper over this core (it feeds a view's slots through the same
//! machine), so the streamed and materialized paths are bit-identical by
//! construction.

use crate::hook::SlotHook;
use crate::manager::{PowerManager, SlotContext};
use crate::node::{NodeConfig, NodeReport};
use solar_predict::Predictor;

/// One slot of input to the simulation: the discretized trace values the
/// loop consumes (mirrors `solar_trace::SlotView` accessors).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SlotInput {
    /// 0-based day.
    pub day: usize,
    /// 0-based slot within the day.
    pub slot: usize,
    /// The measured sample at the slot boundary (predictor observation).
    pub start_sample: f64,
    /// Mean power over the slot (drives the slot's harvest).
    pub mean_power: f64,
}

/// The node simulation as an incremental state machine: feed slots with
/// [`NodeSimulation::on_slot`], collect the report with
/// [`NodeSimulation::finish`].
///
/// Per slot the machine performs exactly the steps of
/// [`crate::simulate_node`] (hook, harvest, load, leakage,
/// observe/predict/plan) — the pull-style entry points are wrappers over
/// this type.
pub struct NodeSimulation<'a> {
    /// `None` when predictions are supplied externally (a shared
    /// multi-candidate kernel): see
    /// [`NodeSimulation::with_external_predictions`].
    predictor: Option<&'a mut dyn Predictor>,
    manager: &'a mut dyn PowerManager,
    hook: &'a mut dyn SlotHook,
    config: NodeConfig,
    storage_initial_j: f64,
    slot_s: f64,
    report: NodeReport,
    duty_sum: f64,
    planned_duty: f64,
}

impl<'a> NodeSimulation<'a> {
    /// Starts a simulation of `config` at slot duration `slot_seconds`.
    ///
    /// # Panics
    ///
    /// Panics if `slot_seconds` is not positive, or if the predictor's
    /// discretization disagrees with it (`slots_per_day × slot_seconds`
    /// must be one day) — the same mismatch guard the view-driven entry
    /// points enforce; running a predictor at the wrong N is always a
    /// bug.
    pub fn new(
        predictor: &'a mut dyn Predictor,
        manager: &'a mut dyn PowerManager,
        config: &NodeConfig,
        hook: &'a mut dyn SlotHook,
        slot_seconds: f64,
    ) -> Self {
        Self::check_discretization(predictor.slots_per_day(), slot_seconds);
        Self::assemble(Some(predictor), manager, config, hook, slot_seconds)
    }

    /// A simulation whose predictions are computed *outside* the
    /// machine — by a shared multi-candidate kernel such as
    /// `solar_predict::CandidateBank` — and handed in through
    /// [`NodeSimulation::absorb_slot`] + [`NodeSimulation::plan_with`].
    /// `slots_per_day` takes the place of the absent predictor's
    /// discretization in the day-length guard.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`NodeSimulation::new`].
    pub fn with_external_predictions(
        manager: &'a mut dyn PowerManager,
        config: &NodeConfig,
        hook: &'a mut dyn SlotHook,
        slot_seconds: f64,
        slots_per_day: usize,
    ) -> Self {
        Self::check_discretization(slots_per_day, slot_seconds);
        Self::assemble(None, manager, config, hook, slot_seconds)
    }

    fn check_discretization(slots_per_day: usize, slot_seconds: f64) {
        assert!(
            slot_seconds > 0.0,
            "slot duration {slot_seconds} must be positive"
        );
        let day_seconds = slots_per_day as f64 * slot_seconds;
        assert!(
            (day_seconds - 86_400.0).abs() < 1e-6,
            "predictor configured for N={slots_per_day} but slots of {slot_seconds} s make a {day_seconds} s day",
        );
    }

    fn assemble(
        predictor: Option<&'a mut dyn Predictor>,
        manager: &'a mut dyn PowerManager,
        config: &NodeConfig,
        hook: &'a mut dyn SlotHook,
        slot_seconds: f64,
    ) -> Self {
        let config = config.clone();
        let storage_initial_j = config.storage.level_j();
        NodeSimulation {
            predictor,
            manager,
            hook,
            config,
            storage_initial_j,
            slot_s: slot_seconds,
            report: NodeReport::default(),
            duty_sum: 0.0,
            planned_duty: 0.0,
        }
    }

    /// Advances the simulation by one slot.
    ///
    /// # Panics
    ///
    /// Panics on a machine built with
    /// [`NodeSimulation::with_external_predictions`] — those advance via
    /// [`NodeSimulation::absorb_slot`] + [`NodeSimulation::plan_with`].
    pub fn on_slot(&mut self, input: SlotInput) {
        let measured = self.absorb_slot(input);
        let predicted = self
            .predictor
            .as_deref_mut()
            .expect("on_slot needs an owned predictor; use absorb_slot/plan_with")
            .observe_and_predict(measured);
        self.plan_with(predicted);
    }

    /// The pre-prediction half of a slot (steps 0–3: fault hook,
    /// harvest, load, leakage), returning the fault-hooked measured
    /// sample the predictor would observe. Pair with
    /// [`NodeSimulation::plan_with`] — [`NodeSimulation::on_slot`] is
    /// exactly `plan_with(predictor(absorb_slot(input)))`, so external
    /// and owned prediction paths are bit-identical by construction.
    pub fn absorb_slot(&mut self, input: SlotInput) -> f64 {
        let SlotInput {
            day,
            slot,
            start_sample,
            mean_power,
        } = input;
        // 0. Fault injection: the hook may rewrite what the panel
        //    produced and what the sensor will report.
        let harvest_w = self.config.panel.power_w(mean_power);
        let mut harvest_j = harvest_w * self.slot_s;
        let mut measured = start_sample;
        self.hook.on_slot(day, slot, &mut harvest_j, &mut measured);
        self.absorb_corrupted(harvest_j);
        measured
    }

    /// Steps 1–3 for an already fault-hooked harvest — what a caller
    /// realizing one shared corruption for many identical-fault
    /// machines feeds each of them. `absorb_slot` is exactly this after
    /// its own hook, so the paths are bit-identical.
    #[inline]
    pub fn absorb_corrupted(&mut self, harvest_j: f64) {
        let harvest_j = harvest_j.max(0.0);

        // 1. Harvest the slot's actual energy.
        self.report.harvested_j += harvest_j;
        let charge = self.config.storage.charge(harvest_j);
        self.report.charge_waste_j += charge.wasted_j;

        // 2. Run the load at the planned duty.
        let want_j = self.config.load.energy_j(self.planned_duty, self.slot_s);
        let level_before = self.config.storage.level_j();
        let delivered = self.config.storage.discharge(want_j);
        let withdrawn = level_before - self.config.storage.level_j();
        self.report.consumed_j += delivered;
        self.report.discharge_loss_j += withdrawn - delivered;
        if delivered + 1e-12 < want_j {
            self.report.brownouts += 1;
        }

        // 3. Leakage.
        self.report.leaked_j += self.config.storage.leak(self.slot_s);
    }

    /// The post-prediction half of a slot (step 4): plan the next slot's
    /// duty from `predicted` — however it was computed.
    #[inline]
    pub fn plan_with(&mut self, predicted: f64) {
        let ctx = SlotContext {
            predicted_harvest_w: self.config.panel.power_w(predicted),
            storage_level_j: self.config.storage.level_j(),
            storage_capacity_j: self.config.storage.capacity_j(),
            slot_seconds: self.slot_s,
            load_active_w: self.config.load.active_w(),
            load_sleep_w: self.config.load.sleep_w(),
        };
        self.planned_duty = self.manager.plan_duty(&ctx);
        assert!(
            (0.0..=1.0).contains(&self.planned_duty),
            "manager {} produced duty {}",
            self.manager.name(),
            self.planned_duty
        );
        self.duty_sum += self.planned_duty;
        self.report.slots += 1;
    }

    /// Captures the machine's whole carried state as a
    /// [`SimDayCheckpoint`], leaving the live simulation untouched.
    /// Meaningful at day boundaries, where it pairs with predictor and
    /// trace checkpoints at the same horizon; a simulation restored
    /// from it and fed the remaining slots produces a report
    /// bit-identical to an uninterrupted run (managers are stateless —
    /// they are rebuilt from their spec, not checkpointed).
    pub fn day_checkpoint(&self) -> SimDayCheckpoint {
        SimDayCheckpoint {
            storage: self.config.storage.clone(),
            storage_initial_j: self.storage_initial_j,
            report: self.report.clone(),
            duty_sum: self.duty_sum,
            planned_duty: self.planned_duty,
        }
    }

    /// Restores the carried state captured by
    /// [`NodeSimulation::day_checkpoint`] into a freshly assembled
    /// machine (same config, manager spec, and slot duration as the
    /// checkpointed run — the checkpoint carries the *mutable* state
    /// only, and restoring across different specs is a logic error the
    /// machine cannot detect).
    pub fn restore_day_checkpoint(&mut self, checkpoint: &SimDayCheckpoint) {
        self.config.storage = checkpoint.storage.clone();
        self.storage_initial_j = checkpoint.storage_initial_j;
        self.report = checkpoint.report.clone();
        self.duty_sum = checkpoint.duty_sum;
        self.planned_duty = checkpoint.planned_duty;
    }

    /// Finalizes the accounting and returns the report.
    pub fn finish(mut self) -> NodeReport {
        self.report.stored_delta_j = self.config.storage.level_j() - self.storage_initial_j;
        self.report.mean_duty = if self.report.slots > 0 {
            self.duty_sum / self.report.slots as f64
        } else {
            0.0
        };
        // Released energy = harvest + net storage drawdown = consumed +
        // every loss term, so the ratio is a true fraction.
        let released = self.report.harvested_j - self.report.stored_delta_j;
        self.report.utilization = if released > 0.0 {
            self.report.consumed_j / released
        } else {
            0.0
        };
        self.report
    }
}

/// The mutable half of a [`NodeSimulation`] at a day boundary: storage
/// charge state, the accumulated report, and the duty plan carried into
/// the next slot. Everything else a simulation holds (panel, load,
/// manager, hook) is immutable spec, rebuilt on resume rather than
/// checkpointed. Plain data — serializable under the `serde` feature
/// like the report itself.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimDayCheckpoint {
    /// The storage element, including its current charge level.
    pub storage: crate::storage::EnergyStorage,
    /// The charge level the run started from (feeds `stored_delta_j`).
    pub storage_initial_j: f64,
    /// The report accumulated over the prefix.
    pub report: NodeReport,
    /// Sum of planned duties over the prefix (feeds `mean_duty`).
    pub duty_sum: f64,
    /// The duty planned for the next slot.
    pub planned_duty: f64,
}

/// Simulates a node over any slot source — the streaming counterpart of
/// [`crate::simulate_node_hooked`], which wraps this function with a
/// view's slots. Slots must arrive in time order; memory use is O(1) in
/// the horizon length.
pub fn simulate_node_streamed(
    slots: impl IntoIterator<Item = SlotInput>,
    slot_seconds: f64,
    predictor: &mut dyn Predictor,
    manager: &mut dyn PowerManager,
    config: &NodeConfig,
    hook: &mut dyn SlotHook,
) -> NodeReport {
    let mut sim = NodeSimulation::new(predictor, manager, config, hook, slot_seconds);
    for slot in slots {
        sim.on_slot(slot);
    }
    sim.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::NoFaults;
    use crate::manager::EnergyNeutralManager;
    use crate::node::simulate_node;
    use crate::panel::SolarPanel;
    use crate::storage::EnergyStorage;
    use crate::Load;
    use solar_predict::{WcmaParams, WcmaPredictor};
    use solar_trace::{PowerTrace, Resolution, SlotView, SlotsPerDay};

    fn config() -> NodeConfig {
        NodeConfig {
            panel: SolarPanel::new(0.01, 0.15).unwrap(),
            storage: EnergyStorage::with_losses(500.0, 250.0, 0.9, 0.9, 0.001).unwrap(),
            load: Load::new(0.05, 0.0001).unwrap(),
        }
    }

    #[test]
    fn streamed_simulation_is_bit_identical_to_view_simulation() {
        let day: Vec<f64> = (0..24)
            .map(|h| {
                if (6..18).contains(&h) {
                    550.0 + h as f64
                } else {
                    0.0
                }
            })
            .collect();
        let samples: Vec<f64> = (0..25).flat_map(|_| day.clone()).collect();
        let trace = PowerTrace::new("s", Resolution::from_minutes(60).unwrap(), samples).unwrap();
        let view = SlotView::new(&trace, SlotsPerDay::new(24).unwrap()).unwrap();

        let mut p1 = WcmaPredictor::new(WcmaParams::new(0.5, 5, 2, 24).unwrap());
        let mut m1 = EnergyNeutralManager::default();
        let via_view = simulate_node(&view, &mut p1, &mut m1, &config());

        let mut p2 = WcmaPredictor::new(WcmaParams::new(0.5, 5, 2, 24).unwrap());
        let mut m2 = EnergyNeutralManager::default();
        let inputs = view.iter().map(|(id, start, mean)| SlotInput {
            day: id.day as usize,
            slot: id.slot as usize,
            start_sample: start,
            mean_power: mean,
        });
        let via_stream = simulate_node_streamed(
            inputs,
            view.slot_seconds(),
            &mut p2,
            &mut m2,
            &config(),
            &mut NoFaults,
        );
        assert_eq!(via_view, via_stream);
    }

    #[test]
    fn external_predictions_match_the_owned_predictor_path() {
        // Driving the machine through absorb_slot + plan_with with
        // predictions computed outside must reproduce on_slot exactly —
        // the contract the engine's banked candidates rely on.
        let day: Vec<f64> = (0..24)
            .map(|h| if (7..17).contains(&h) { 480.0 } else { 0.0 })
            .collect();
        let inputs: Vec<SlotInput> = (0..24 * 15)
            .map(|step| SlotInput {
                day: step / 24,
                slot: step % 24,
                start_sample: day[step % 24],
                mean_power: day[step % 24],
            })
            .collect();

        let mut p1 = WcmaPredictor::new(WcmaParams::new(0.5, 5, 2, 24).unwrap());
        let mut m1 = EnergyNeutralManager::default();
        let mut hook1 = NoFaults;
        let mut owned = NodeSimulation::new(&mut p1, &mut m1, &config(), &mut hook1, 3600.0);

        let mut p2 = WcmaPredictor::new(WcmaParams::new(0.5, 5, 2, 24).unwrap());
        let mut m2 = EnergyNeutralManager::default();
        let mut hook2 = NoFaults;
        let mut external =
            NodeSimulation::with_external_predictions(&mut m2, &config(), &mut hook2, 3600.0, 24);

        for &input in &inputs {
            owned.on_slot(input);
            let measured = external.absorb_slot(input);
            let predicted = solar_predict::Predictor::observe_and_predict(&mut p2, measured);
            external.plan_with(predicted);
        }
        assert_eq!(owned.finish(), external.finish());
    }

    #[test]
    fn day_checkpoint_restore_is_bit_identical() {
        let day: Vec<f64> = (0..24)
            .map(|h| {
                if (6..18).contains(&h) {
                    500.0 + h as f64
                } else {
                    0.0
                }
            })
            .collect();
        let inputs: Vec<SlotInput> = (0..24 * 10)
            .map(|step| SlotInput {
                day: step / 24,
                slot: step % 24,
                start_sample: day[step % 24],
                mean_power: day[step % 24],
            })
            .collect();
        let params = WcmaParams::new(0.5, 5, 2, 24).unwrap();

        let mut p1 = WcmaPredictor::new(params);
        let mut m1 = EnergyNeutralManager::default();
        let mut hook1 = NoFaults;
        let mut cold = NodeSimulation::new(&mut p1, &mut m1, &config(), &mut hook1, 3600.0);
        for &input in &inputs {
            cold.on_slot(input);
        }
        let cold_report = cold.finish();

        // Run four days, checkpoint sim + predictor, resume in a fresh
        // machine and feed the remaining days.
        let mut p2 = WcmaPredictor::new(params);
        let mut m2 = EnergyNeutralManager::default();
        let mut hook2 = NoFaults;
        let mut prefix = NodeSimulation::new(&mut p2, &mut m2, &config(), &mut hook2, 3600.0);
        for &input in &inputs[..4 * 24] {
            prefix.on_slot(input);
        }
        let checkpoint = prefix.day_checkpoint();
        let mut snapshot = solar_predict::Predictor::snapshot(&p2).unwrap();
        let mut m3 = EnergyNeutralManager::default();
        let mut hook3 = NoFaults;
        let mut resumed =
            NodeSimulation::new(snapshot.as_mut(), &mut m3, &config(), &mut hook3, 3600.0);
        resumed.restore_day_checkpoint(&checkpoint);
        for &input in &inputs[4 * 24..] {
            resumed.on_slot(input);
        }
        assert_eq!(resumed.finish(), cold_report);
    }

    #[test]
    #[should_panic(expected = "needs an owned predictor")]
    fn on_slot_panics_without_an_owned_predictor() {
        let mut m = EnergyNeutralManager::default();
        let mut hook = NoFaults;
        let cfg = config();
        let mut sim =
            NodeSimulation::with_external_predictions(&mut m, &cfg, &mut hook, 3600.0, 24);
        sim.on_slot(SlotInput {
            day: 0,
            slot: 0,
            start_sample: 0.0,
            mean_power: 0.0,
        });
    }

    #[test]
    fn empty_stream_yields_empty_report() {
        let mut p = WcmaPredictor::new(WcmaParams::new(0.5, 5, 2, 24).unwrap());
        let mut m = EnergyNeutralManager::default();
        let report = simulate_node_streamed(
            std::iter::empty(),
            3600.0,
            &mut p,
            &mut m,
            &config(),
            &mut NoFaults,
        );
        assert_eq!(report.slots, 0);
        assert_eq!(report.mean_duty, 0.0);
        assert_eq!(report.utilization, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_slot_duration_panics() {
        let mut p = WcmaPredictor::new(WcmaParams::new(0.5, 5, 2, 24).unwrap());
        let mut m = EnergyNeutralManager::default();
        let cfg = config();
        let mut hook = NoFaults;
        let _ = NodeSimulation::new(&mut p, &mut m, &cfg, &mut hook, 0.0);
    }

    #[test]
    #[should_panic(expected = "predictor configured for")]
    fn mismatched_discretization_panics() {
        // A predictor built for N=24 fed 48-slot (1800 s) days is the
        // silent-corruption case the guard exists for.
        let mut p = WcmaPredictor::new(WcmaParams::new(0.5, 5, 2, 24).unwrap());
        let mut m = EnergyNeutralManager::default();
        let cfg = config();
        let mut hook = NoFaults;
        let _ = NodeSimulation::new(&mut p, &mut m, &cfg, &mut hook, 1800.0);
    }
}
