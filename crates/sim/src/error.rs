//! Simulator configuration errors.

use std::fmt;

/// Errors from constructing simulator components.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// Storage parameters out of range.
    InvalidStorage {
        /// Description of the violation.
        message: String,
    },
    /// Panel parameters out of range.
    InvalidPanel {
        /// Description of the violation.
        message: String,
    },
    /// Load parameters out of range.
    InvalidLoad {
        /// Description of the violation.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidStorage { message } => write!(f, "invalid storage: {message}"),
            SimError::InvalidPanel { message } => write!(f, "invalid panel: {message}"),
            SimError::InvalidLoad { message } => write!(f, "invalid load: {message}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_component() {
        let e = SimError::InvalidPanel {
            message: "area must be positive".into(),
        };
        assert!(e.to_string().contains("panel"));
    }
}
