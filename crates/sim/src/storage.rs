//! Capacity-limited energy storage with conversion losses and leakage.

use crate::error::SimError;

/// Result of offering energy to the store.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChargeOutcome {
    /// Energy actually added to the store (after efficiency and capacity).
    pub stored_j: f64,
    /// Energy lost to conversion or overflow.
    pub wasted_j: f64,
}

/// A supercapacitor/battery model: finite capacity, charge/discharge
/// efficiencies, constant leakage power.
///
/// Invariants (property-tested): `0 ≤ level ≤ capacity` always.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use harvest_sim::EnergyStorage;
///
/// let mut store = EnergyStorage::new(100.0, 50.0)?;
/// let outcome = store.charge(10.0);
/// assert!(outcome.stored_j > 0.0);
/// let delivered = store.discharge(5.0);
/// assert!((delivered - 5.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyStorage {
    capacity_j: f64,
    level_j: f64,
    charge_efficiency: f64,
    discharge_efficiency: f64,
    leakage_w: f64,
}

impl EnergyStorage {
    /// Creates an ideal store (100% efficiencies, no leakage) with the
    /// given capacity and initial level.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidStorage`] if the capacity is not
    /// positive or the initial level is outside `[0, capacity]`.
    pub fn new(capacity_j: f64, initial_j: f64) -> Result<Self, SimError> {
        Self::with_losses(capacity_j, initial_j, 1.0, 1.0, 0.0)
    }

    /// Creates a store with explicit loss parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidStorage`] if any parameter is out of
    /// range (efficiencies must be in `(0, 1]`, leakage non-negative).
    pub fn with_losses(
        capacity_j: f64,
        initial_j: f64,
        charge_efficiency: f64,
        discharge_efficiency: f64,
        leakage_w: f64,
    ) -> Result<Self, SimError> {
        if !(capacity_j.is_finite() && capacity_j > 0.0) {
            return Err(SimError::InvalidStorage {
                message: format!("capacity {capacity_j} must be positive"),
            });
        }
        if !(initial_j.is_finite() && (0.0..=capacity_j).contains(&initial_j)) {
            return Err(SimError::InvalidStorage {
                message: format!("initial level {initial_j} must be in [0, {capacity_j}]"),
            });
        }
        for (name, eff) in [
            ("charge efficiency", charge_efficiency),
            ("discharge efficiency", discharge_efficiency),
        ] {
            if !(eff.is_finite() && 0.0 < eff && eff <= 1.0) {
                return Err(SimError::InvalidStorage {
                    message: format!("{name} {eff} must be in (0, 1]"),
                });
            }
        }
        if !(leakage_w.is_finite() && leakage_w >= 0.0) {
            return Err(SimError::InvalidStorage {
                message: format!("leakage {leakage_w} must be non-negative"),
            });
        }
        Ok(EnergyStorage {
            capacity_j,
            level_j: initial_j,
            charge_efficiency,
            discharge_efficiency,
            leakage_w,
        })
    }

    /// Current stored energy in joules.
    #[inline]
    pub fn level_j(&self) -> f64 {
        self.level_j
    }

    /// Capacity in joules.
    pub fn capacity_j(&self) -> f64 {
        self.capacity_j
    }

    /// State of charge in `[0, 1]`.
    pub fn soc(&self) -> f64 {
        self.level_j / self.capacity_j
    }

    /// Leakage power in watts.
    pub fn leakage_w(&self) -> f64 {
        self.leakage_w
    }

    /// Offers `energy_j` of harvested energy; returns how much was stored
    /// and how much was lost (conversion loss plus overflow).
    #[inline]
    pub fn charge(&mut self, energy_j: f64) -> ChargeOutcome {
        let energy_j = energy_j.max(0.0);
        let convertible = energy_j * self.charge_efficiency;
        // `room` is clamped at zero: filling to capacity can land one ulp
        // above it, and a negative room must never turn into a negative
        // store.
        let room = (self.capacity_j - self.level_j).max(0.0);
        let stored = convertible.min(room);
        self.level_j = (self.level_j + stored).min(self.capacity_j);
        ChargeOutcome {
            stored_j: stored,
            wasted_j: energy_j - stored,
        }
    }

    /// Requests `energy_j` for the load; returns the energy actually
    /// delivered (≤ requested), draining the store by
    /// `delivered / discharge_efficiency`.
    #[inline]
    pub fn discharge(&mut self, energy_j: f64) -> f64 {
        let energy_j = energy_j.max(0.0);
        let need = energy_j / self.discharge_efficiency;
        if self.level_j >= need {
            self.level_j -= need;
            energy_j
        } else {
            let delivered = self.level_j * self.discharge_efficiency;
            self.level_j = 0.0;
            delivered
        }
    }

    /// Applies leakage over `dt_s` seconds; returns the energy leaked.
    #[inline]
    pub fn leak(&mut self, dt_s: f64) -> f64 {
        let loss = (self.leakage_w * dt_s).min(self.level_j);
        self.level_j -= loss;
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(EnergyStorage::new(0.0, 0.0).is_err());
        assert!(EnergyStorage::new(10.0, 11.0).is_err());
        assert!(EnergyStorage::new(10.0, -1.0).is_err());
        assert!(EnergyStorage::with_losses(10.0, 5.0, 0.0, 1.0, 0.0).is_err());
        assert!(EnergyStorage::with_losses(10.0, 5.0, 1.0, 1.1, 0.0).is_err());
        assert!(EnergyStorage::with_losses(10.0, 5.0, 1.0, 1.0, -0.1).is_err());
    }

    #[test]
    fn charge_respects_capacity() {
        let mut s = EnergyStorage::new(100.0, 95.0).unwrap();
        let out = s.charge(20.0);
        assert_eq!(out.stored_j, 5.0);
        assert_eq!(out.wasted_j, 15.0);
        assert_eq!(s.level_j(), 100.0);
    }

    #[test]
    fn charge_applies_efficiency() {
        let mut s = EnergyStorage::with_losses(100.0, 0.0, 0.8, 1.0, 0.0).unwrap();
        let out = s.charge(10.0);
        assert!((out.stored_j - 8.0).abs() < 1e-12);
        assert!((out.wasted_j - 2.0).abs() < 1e-12);
    }

    #[test]
    fn discharge_partial_when_depleted() {
        let mut s = EnergyStorage::new(100.0, 3.0).unwrap();
        let delivered = s.discharge(10.0);
        assert!((delivered - 3.0).abs() < 1e-12);
        assert_eq!(s.level_j(), 0.0);
    }

    #[test]
    fn discharge_applies_efficiency() {
        let mut s = EnergyStorage::with_losses(100.0, 50.0, 1.0, 0.5, 0.0).unwrap();
        let delivered = s.discharge(10.0);
        assert!((delivered - 10.0).abs() < 1e-12);
        // Store drained by 20 J to deliver 10 J.
        assert!((s.level_j() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn leak_is_bounded_by_level() {
        let mut s = EnergyStorage::with_losses(100.0, 1.0, 1.0, 1.0, 1.0).unwrap();
        let leaked = s.leak(10.0);
        assert!((leaked - 1.0).abs() < 1e-12);
        assert_eq!(s.level_j(), 0.0);
    }

    #[test]
    fn soc_tracks_level() {
        let s = EnergyStorage::new(200.0, 50.0).unwrap();
        assert!((s.soc() - 0.25).abs() < 1e-12);
        assert_eq!(s.capacity_j(), 200.0);
        assert_eq!(s.leakage_w(), 0.0);
    }

    #[test]
    fn negative_requests_are_clamped() {
        let mut s = EnergyStorage::new(100.0, 50.0).unwrap();
        assert_eq!(s.charge(-5.0).stored_j, 0.0);
        assert_eq!(s.discharge(-5.0), 0.0);
        assert_eq!(s.level_j(), 50.0);
    }
}
