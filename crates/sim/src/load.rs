//! The duty-cycled consumer.

use crate::error::SimError;

/// A duty-cycled load (e.g. a sensing + radio task): `active_w` while
/// working, `sleep_w` otherwise.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use harvest_sim::Load;
///
/// let load = Load::new(0.05, 0.001)?;
/// // At 40% duty the average draw blends active and sleep power.
/// let avg = load.power_w(0.4);
/// assert!((avg - (0.4 * 0.05 + 0.6 * 0.001)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Copy, Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Load {
    active_w: f64,
    sleep_w: f64,
}

impl Load {
    /// Creates a load drawing `active_w` at full duty and `sleep_w` when
    /// idle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidLoad`] unless
    /// `0 ≤ sleep_w < active_w` and both are finite.
    pub fn new(active_w: f64, sleep_w: f64) -> Result<Self, SimError> {
        if !(active_w.is_finite() && sleep_w.is_finite() && 0.0 <= sleep_w && sleep_w < active_w) {
            return Err(SimError::InvalidLoad {
                message: format!("need 0 <= sleep ({sleep_w}) < active ({active_w})"),
            });
        }
        Ok(Load { active_w, sleep_w })
    }

    /// Active-mode power in watts.
    pub fn active_w(&self) -> f64 {
        self.active_w
    }

    /// Sleep-mode power in watts.
    pub fn sleep_w(&self) -> f64 {
        self.sleep_w
    }

    /// Average power at a duty cycle in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `[0, 1]`.
    pub fn power_w(&self, duty: f64) -> f64 {
        assert!((0.0..=1.0).contains(&duty), "duty {duty} out of [0, 1]");
        duty * self.active_w + (1.0 - duty) * self.sleep_w
    }

    /// Energy over a slot of `dt_s` seconds at a duty cycle.
    #[inline]
    pub fn energy_j(&self, duty: f64, dt_s: f64) -> f64 {
        self.power_w(duty) * dt_s
    }

    /// The duty cycle whose average power equals `budget_w`, clamped to
    /// `[0, 1]` — the inverse of [`Load::power_w`], used by
    /// energy-neutral managers.
    pub fn duty_for_power(&self, budget_w: f64) -> f64 {
        ((budget_w - self.sleep_w) / (self.active_w - self.sleep_w)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_parameters() {
        assert!(Load::new(0.0, 0.0).is_err());
        assert!(Load::new(0.05, 0.05).is_err());
        assert!(Load::new(0.05, -0.01).is_err());
        assert!(Load::new(f64::NAN, 0.0).is_err());
    }

    #[test]
    fn power_interpolates_between_sleep_and_active() {
        let l = Load::new(0.1, 0.01).unwrap();
        assert_eq!(l.power_w(0.0), 0.01);
        assert_eq!(l.power_w(1.0), 0.1);
        assert!((l.power_w(0.5) - 0.055).abs() < 1e-12);
    }

    #[test]
    fn duty_for_power_inverts_power() {
        let l = Load::new(0.1, 0.01).unwrap();
        for duty in [0.0, 0.25, 0.5, 1.0] {
            let p = l.power_w(duty);
            assert!((l.duty_for_power(p) - duty).abs() < 1e-12);
        }
        // Out-of-range budgets clamp.
        assert_eq!(l.duty_for_power(1.0), 1.0);
        assert_eq!(l.duty_for_power(0.0), 0.0);
    }

    #[test]
    fn energy_scales_with_time() {
        let l = Load::new(0.1, 0.0).unwrap();
        assert!((l.energy_j(0.5, 1800.0) - 0.05 * 1800.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "duty")]
    fn power_rejects_bad_duty() {
        let l = Load::new(0.1, 0.01).unwrap();
        let _ = l.power_w(1.5);
    }
}
