//! Power-management policies: how predictions become duty cycles.

/// Everything a manager sees when planning the next slot.
#[derive(Copy, Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SlotContext {
    /// Predicted harvested power over the next slot, in watts (already
    /// through the panel).
    pub predicted_harvest_w: f64,
    /// Current storage level in joules.
    pub storage_level_j: f64,
    /// Storage capacity in joules.
    pub storage_capacity_j: f64,
    /// Slot length in seconds.
    pub slot_seconds: f64,
    /// Load active power in watts.
    pub load_active_w: f64,
    /// Load sleep power in watts.
    pub load_sleep_w: f64,
}

/// A policy turning a [`SlotContext`] into the next slot's duty cycle in
/// `[0, 1]`.
///
/// Object-safe so heterogeneous policy sets can be compared.
pub trait PowerManager {
    /// Plans the duty cycle for the upcoming slot.
    fn plan_duty(&mut self, ctx: &SlotContext) -> f64;

    /// Short name for reports.
    fn name(&self) -> &str;
}

/// The prediction-driven energy-neutral controller (after Kansal et al.):
/// spend what you expect to harvest, corrected toward a target state of
/// charge.
///
/// The power budget for the next slot is
///
/// ```text
/// budget = predicted_harvest + gain · (soc − target_soc) · capacity / slot
/// ```
///
/// and the duty cycle is whatever makes the load's average power equal
/// the budget (clamped to `[min_duty, max_duty]`). With an accurate
/// predictor this keeps the store hovering at the target while consuming
/// every harvested joule — which is exactly why prediction accuracy
/// matters for management (paper §I).
#[derive(Copy, Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyNeutralManager {
    /// Lower duty bound (application's minimum service level).
    pub min_duty: f64,
    /// Upper duty bound.
    pub max_duty: f64,
    /// Target state of charge in `[0, 1]`.
    pub target_soc: f64,
    /// Proportional correction gain per slot.
    pub gain: f64,
}

impl Default for EnergyNeutralManager {
    fn default() -> Self {
        EnergyNeutralManager {
            min_duty: 0.0,
            max_duty: 1.0,
            target_soc: 0.5,
            gain: 0.25,
        }
    }
}

impl PowerManager for EnergyNeutralManager {
    fn plan_duty(&mut self, ctx: &SlotContext) -> f64 {
        let soc = ctx.storage_level_j / ctx.storage_capacity_j;
        let correction_w =
            self.gain * (soc - self.target_soc) * ctx.storage_capacity_j / ctx.slot_seconds;
        let budget_w = (ctx.predicted_harvest_w + correction_w).max(0.0);
        let duty = (budget_w - ctx.load_sleep_w) / (ctx.load_active_w - ctx.load_sleep_w);
        duty.clamp(self.min_duty, self.max_duty)
    }

    fn name(&self) -> &str {
        "energy-neutral"
    }
}

/// Always runs at the maximum duty — the "no management" baseline that
/// browns out whenever storage runs dry.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct GreedyManager;

impl PowerManager for GreedyManager {
    fn plan_duty(&mut self, _ctx: &SlotContext) -> f64 {
        1.0
    }

    fn name(&self) -> &str {
        "greedy"
    }
}

/// A constant duty cycle — the static-provisioning baseline.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FixedDutyManager {
    duty: f64,
}

impl FixedDutyManager {
    /// Creates a fixed-duty policy.
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `[0, 1]`.
    pub fn new(duty: f64) -> Self {
        assert!((0.0..=1.0).contains(&duty), "duty {duty} out of [0, 1]");
        FixedDutyManager { duty }
    }
}

impl PowerManager for FixedDutyManager {
    fn plan_duty(&mut self, _ctx: &SlotContext) -> f64 {
        self.duty
    }

    fn name(&self) -> &str {
        "fixed-duty"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(predicted_w: f64, level: f64) -> SlotContext {
        SlotContext {
            predicted_harvest_w: predicted_w,
            storage_level_j: level,
            storage_capacity_j: 200.0,
            slot_seconds: 1800.0,
            load_active_w: 0.05,
            load_sleep_w: 0.001,
        }
    }

    #[test]
    fn energy_neutral_spends_prediction() {
        let mut m = EnergyNeutralManager {
            gain: 0.0,
            ..Default::default()
        };
        // Prediction exactly equals active power -> full duty.
        let duty = m.plan_duty(&ctx(0.05, 100.0));
        assert!((duty - 1.0).abs() < 1e-9);
        // No harvest, no correction -> minimum duty.
        let duty = m.plan_duty(&ctx(0.0, 100.0));
        assert_eq!(duty, 0.0);
    }

    #[test]
    fn correction_raises_duty_when_storage_is_high() {
        let mut m = EnergyNeutralManager::default();
        let low = m.plan_duty(&ctx(0.02, 20.0)); // soc 0.1, below target
        let high = m.plan_duty(&ctx(0.02, 180.0)); // soc 0.9, above target
        assert!(high > low, "high-soc duty {high} vs low-soc duty {low}");
    }

    #[test]
    fn duty_respects_bounds() {
        let mut m = EnergyNeutralManager {
            min_duty: 0.1,
            max_duty: 0.8,
            ..Default::default()
        };
        assert!(m.plan_duty(&ctx(0.0, 0.0)) >= 0.1);
        assert!(m.plan_duty(&ctx(10.0, 200.0)) <= 0.8);
    }

    #[test]
    fn baselines_behave() {
        let mut g = GreedyManager;
        assert_eq!(g.plan_duty(&ctx(0.0, 0.0)), 1.0);
        assert_eq!(g.name(), "greedy");
        let mut f = FixedDutyManager::new(0.3);
        assert_eq!(f.plan_duty(&ctx(10.0, 200.0)), 0.3);
        assert_eq!(f.name(), "fixed-duty");
    }

    #[test]
    #[should_panic(expected = "duty")]
    fn fixed_duty_validates() {
        let _ = FixedDutyManager::new(1.5);
    }

    #[test]
    fn managers_are_object_safe() {
        let mut policies: Vec<Box<dyn PowerManager>> = vec![
            Box::new(EnergyNeutralManager::default()),
            Box::new(GreedyManager),
            Box::new(FixedDutyManager::new(0.5)),
        ];
        for p in &mut policies {
            let d = p.plan_duty(&ctx(0.01, 100.0));
            assert!((0.0..=1.0).contains(&d), "{}: {d}", p.name());
        }
    }
}
