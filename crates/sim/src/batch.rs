//! Batched node runs: many (predictor, manager, hardware) combinations
//! over one slotted trace.
//!
//! This is the sequential building block the `scenario-fleet` crate's
//! parallel engine schedules: one *batch* = one trace shared by N jobs.
//! Keeping it here (rather than in the fleet layer) lets unit studies
//! and benchmarks compare policies on a trace without pulling in the
//! scenario machinery.

use crate::hook::{NoFaults, SlotHook};
use crate::manager::PowerManager;
use crate::node::{simulate_node_hooked, NodeConfig, NodeReport};
use solar_predict::Predictor;
use solar_trace::SlotView;

/// One unit of work in a batch.
pub struct BatchJob {
    /// Label carried through to the outcome (e.g. "wcma + neutral").
    pub label: String,
    /// The streaming predictor (consumed: driven over the whole view).
    pub predictor: Box<dyn Predictor>,
    /// The power-management policy.
    pub manager: Box<dyn PowerManager>,
    /// Node hardware.
    pub config: NodeConfig,
    /// Fault hook; use [`NoFaults`] for a clean run.
    pub hook: Box<dyn SlotHook>,
}

impl BatchJob {
    /// A faultless job.
    pub fn new(
        label: impl Into<String>,
        predictor: Box<dyn Predictor>,
        manager: Box<dyn PowerManager>,
        config: NodeConfig,
    ) -> Self {
        BatchJob {
            label: label.into(),
            predictor,
            manager,
            config,
            hook: Box::new(NoFaults),
        }
    }

    /// Replaces the fault hook.
    pub fn with_hook(mut self, hook: Box<dyn SlotHook>) -> Self {
        self.hook = hook;
        self
    }
}

/// Outcome of one batch job.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// The job's label.
    pub label: String,
    /// The simulation report.
    pub report: NodeReport,
}

/// Runs every job over `view`, in order.
///
/// # Panics
///
/// Panics if any job's predictor disagrees with the view's slot count
/// (the same contract as [`simulate_node`](crate::simulate_node)).
pub fn simulate_batch(view: &SlotView<'_>, jobs: Vec<BatchJob>) -> Vec<BatchOutcome> {
    jobs.into_iter()
        .map(|mut job| {
            let report = simulate_node_hooked(
                view,
                job.predictor.as_mut(),
                job.manager.as_mut(),
                &job.config,
                job.hook.as_mut(),
            );
            BatchOutcome {
                label: job.label,
                report,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{EnergyNeutralManager, GreedyManager};
    use crate::panel::SolarPanel;
    use crate::storage::EnergyStorage;
    use crate::Load;
    use solar_predict::PersistencePredictor;
    use solar_trace::{PowerTrace, Resolution, SlotsPerDay};

    fn config() -> NodeConfig {
        NodeConfig {
            panel: SolarPanel::new(0.01, 0.15).unwrap(),
            storage: EnergyStorage::new(300.0, 150.0).unwrap(),
            load: Load::new(0.05, 0.0001).unwrap(),
        }
    }

    #[test]
    fn batch_runs_all_jobs_and_keeps_labels() {
        let day: Vec<f64> = (0..24)
            .map(|h| if (6..18).contains(&h) { 500.0 } else { 0.0 })
            .collect();
        let samples: Vec<f64> = (0..25).flat_map(|_| day.clone()).collect();
        let trace = PowerTrace::new("b", Resolution::from_minutes(60).unwrap(), samples).unwrap();
        let view = SlotView::new(&trace, SlotsPerDay::new(24).unwrap()).unwrap();

        struct KillPanel;
        impl SlotHook for KillPanel {
            fn on_slot(&mut self, _d: usize, _s: usize, h: &mut f64, _m: &mut f64) {
                *h = 0.0;
            }
        }

        let jobs = vec![
            BatchJob::new(
                "neutral",
                Box::new(PersistencePredictor::new(24)),
                Box::new(EnergyNeutralManager::default()),
                config(),
            ),
            BatchJob::new(
                "greedy-dead-panel",
                Box::new(PersistencePredictor::new(24)),
                Box::new(GreedyManager),
                config(),
            )
            .with_hook(Box::new(KillPanel)),
        ];
        let outcomes = simulate_batch(&view, jobs);
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].label, "neutral");
        assert!(outcomes[0].report.harvested_j > 0.0);
        // The dead-panel job harvested nothing but still balances.
        assert_eq!(outcomes[1].report.harvested_j, 0.0);
        assert!(outcomes[1].report.energy_balance_error_j() < 1e-9);
        assert!(outcomes[1].report.brownouts > 0);
    }
}
