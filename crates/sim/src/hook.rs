//! Per-slot intervention points for fault injection.
//!
//! The simulation loop itself stays fault-agnostic: a [`SlotHook`] sees
//! each slot's harvested energy and measured boundary sample *before*
//! they enter accounting and prediction, and may rewrite them. Because
//! the energy ledger records the post-hook harvest, the conservation
//! identity of [`NodeReport`](crate::NodeReport) holds under any hook —
//! a fault can only change *what happened*, never make joules appear.

/// Observer/mutator called once per simulated slot.
pub trait SlotHook {
    /// Called at the top of slot `(day, slot)`.
    ///
    /// * `harvest_j` — the slot's harvested energy (already through the
    ///   panel), which the hook may reduce (dead panel, shading) or zero.
    /// * `measured` — the slot-boundary irradiance sample the predictor
    ///   will observe, which the hook may corrupt (sensor dropout, stuck
    ///   readings) independently of the physical harvest.
    fn on_slot(&mut self, day: usize, slot: usize, harvest_j: &mut f64, measured: &mut f64);
}

/// The do-nothing hook: a faultless run.
#[derive(Copy, Clone, Debug, Default)]
pub struct NoFaults;

impl SlotHook for NoFaults {
    fn on_slot(&mut self, _day: usize, _slot: usize, _harvest_j: &mut f64, _measured: &mut f64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_object_safe() {
        struct Halver;
        impl SlotHook for Halver {
            fn on_slot(&mut self, _d: usize, _s: usize, h: &mut f64, _m: &mut f64) {
                *h *= 0.5;
            }
        }
        let mut hooks: Vec<Box<dyn SlotHook>> = vec![Box::new(NoFaults), Box::new(Halver)];
        let mut h = 10.0;
        let mut m = 500.0;
        for hook in &mut hooks {
            hook.on_slot(0, 0, &mut h, &mut m);
        }
        assert_eq!(h, 5.0);
        assert_eq!(m, 500.0);
    }
}
