//! The slot-stepped node simulation with full energy accounting.

use crate::hook::{NoFaults, SlotHook};
use crate::load::Load;
use crate::manager::PowerManager;
use crate::panel::SolarPanel;
use crate::storage::EnergyStorage;
use solar_predict::Predictor;
use solar_trace::SlotView;

/// The physical configuration of a harvesting node.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeConfig {
    /// The PV panel (irradiance → power).
    pub panel: SolarPanel,
    /// Energy storage (consumed by the simulation as its starting state).
    pub storage: EnergyStorage,
    /// The duty-cycled load.
    pub load: Load,
}

/// Aggregate outcome of one simulation run.
///
/// All energies in joules. The accounting identity
/// `harvested = stored_delta + charge_waste + withdrawn + leaked` (with
/// `withdrawn = consumed + discharge_loss`) holds to floating-point
/// precision; [`NodeReport::energy_balance_error_j`] measures the
/// residual and is property-tested to be ~0.
#[derive(Clone, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeReport {
    /// Slots simulated.
    pub slots: usize,
    /// Total energy produced by the panel.
    pub harvested_j: f64,
    /// Energy delivered to the load.
    pub consumed_j: f64,
    /// Energy lost at the charger (conversion + overflow when full).
    pub charge_waste_j: f64,
    /// Energy lost at the discharger.
    pub discharge_loss_j: f64,
    /// Energy lost to storage leakage.
    pub leaked_j: f64,
    /// Final minus initial storage level.
    pub stored_delta_j: f64,
    /// Slots where the store could not fully power the planned duty.
    pub brownouts: usize,
    /// Mean planned duty cycle.
    pub mean_duty: f64,
    /// Fraction of *released* energy (harvest plus net storage drawdown)
    /// that reached the load; bounded to `[0, 1]` by energy conservation.
    pub utilization: f64,
}

impl NodeReport {
    /// Residual of the energy-conservation identity (should be ~0).
    pub fn energy_balance_error_j(&self) -> f64 {
        (self.harvested_j
            - (self.stored_delta_j
                + self.charge_waste_j
                + self.consumed_j
                + self.discharge_loss_j
                + self.leaked_j))
            .abs()
    }

    /// Fraction of slots that browned out.
    pub fn brownout_rate(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.brownouts as f64 / self.slots as f64
        }
    }
}

impl std::fmt::Display for NodeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} slots: duty {:.2}, brownouts {} ({:.1}%), utilization {:.1}%",
            self.slots,
            self.mean_duty,
            self.brownouts,
            self.brownout_rate() * 100.0,
            self.utilization * 100.0
        )
    }
}

/// Simulates a harvesting node over a slotted irradiance trace.
///
/// Per slot, in order (mirroring the paper's Fig. 1 loop):
///
/// 1. the slot's actual harvest (panel power from the slot's *mean*
///    irradiance × slot length) charges the store;
/// 2. the load runs at the duty planned at the *previous* slot boundary,
///    drawing from the store; shortfall is a brownout (the load degrades
///    to whatever energy was available);
/// 3. leakage is applied;
/// 4. the predictor observes the slot-boundary sample and the manager
///    plans the next slot's duty from the predicted harvest.
///
/// # Panics
///
/// Panics if the predictor's slot count differs from the view's.
pub fn simulate_node(
    view: &SlotView<'_>,
    predictor: &mut dyn Predictor,
    manager: &mut dyn PowerManager,
    config: &NodeConfig,
) -> NodeReport {
    simulate_node_hooked(view, predictor, manager, config, &mut NoFaults)
}

/// [`simulate_node`] with a fault-injection [`SlotHook`].
///
/// The hook runs first in every slot and may rewrite the slot's
/// harvested energy and the predictor's measured sample; everything
/// downstream (accounting, prediction, planning) sees the hooked values,
/// so the energy-balance identity of [`NodeReport`] continues to hold
/// under arbitrary faults (property-tested).
///
/// This is a thin wrapper over the streaming core
/// ([`crate::simulate_node_streamed`]): it feeds the view's slots
/// through the same state machine, so view-driven and stream-driven
/// simulations are bit-identical by construction.
///
/// # Panics
///
/// Panics if the predictor's slot count differs from the view's.
pub fn simulate_node_hooked(
    view: &SlotView<'_>,
    predictor: &mut dyn Predictor,
    manager: &mut dyn PowerManager,
    config: &NodeConfig,
    hook: &mut dyn SlotHook,
) -> NodeReport {
    let n = view.slots_per_day();
    assert_eq!(
        predictor.slots_per_day(),
        n,
        "predictor configured for N={} but view has N={}",
        predictor.slots_per_day(),
        n
    );
    let inputs = view.iter().map(|(id, start, mean)| crate::SlotInput {
        day: id.day as usize,
        slot: id.slot as usize,
        start_sample: start,
        mean_power: mean,
    });
    crate::simulate_node_streamed(
        inputs,
        view.slot_seconds(),
        predictor,
        manager,
        config,
        hook,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{EnergyNeutralManager, FixedDutyManager, GreedyManager};
    use solar_predict::{PersistencePredictor, WcmaParams, WcmaPredictor};
    use solar_trace::{PowerTrace, Resolution, SlotsPerDay};

    fn solar_trace(days: usize) -> PowerTrace {
        let day: Vec<f64> = (0..24)
            .map(|h| if (6..18).contains(&h) { 600.0 } else { 0.0 })
            .collect();
        let samples: Vec<f64> = (0..days).flat_map(|_| day.clone()).collect();
        PowerTrace::new("sim", Resolution::from_minutes(60).unwrap(), samples).unwrap()
    }

    fn config() -> NodeConfig {
        NodeConfig {
            panel: SolarPanel::new(0.01, 0.15).unwrap(),
            storage: EnergyStorage::new(500.0, 250.0).unwrap(),
            load: Load::new(0.05, 0.0001).unwrap(),
        }
    }

    #[test]
    fn energy_is_conserved() {
        let trace = solar_trace(20);
        let view = SlotView::new(&trace, SlotsPerDay::new(24).unwrap()).unwrap();
        let mut predictor = WcmaPredictor::new(WcmaParams::new(0.5, 5, 2, 24).unwrap());
        let mut manager = EnergyNeutralManager::default();
        let report = simulate_node(&view, &mut predictor, &mut manager, &config());
        assert!(report.energy_balance_error_j() < 1e-6, "{report:?}");
        assert_eq!(report.slots, 480);
        assert!(report.harvested_j > 0.0);
    }

    #[test]
    fn greedy_browns_out_overnight() {
        // Greedy runs flat out; a small store cannot carry the night.
        let trace = solar_trace(10);
        let view = SlotView::new(&trace, SlotsPerDay::new(24).unwrap()).unwrap();
        let mut cfg = config();
        cfg.storage = EnergyStorage::new(100.0, 50.0).unwrap();
        let mut predictor = PersistencePredictor::new(24);
        let mut manager = GreedyManager;
        let report = simulate_node(&view, &mut predictor, &mut manager, &cfg);
        assert!(report.brownouts > 0, "{report}");
    }

    #[test]
    fn prediction_driven_manager_beats_greedy_on_brownouts() {
        let trace = solar_trace(20);
        let view = SlotView::new(&trace, SlotsPerDay::new(24).unwrap()).unwrap();
        let cfg = config();

        let mut wcma = WcmaPredictor::new(WcmaParams::new(0.3, 5, 2, 24).unwrap());
        let mut neutral = EnergyNeutralManager::default();
        let managed = simulate_node(&view, &mut wcma, &mut neutral, &cfg);

        let mut pers = PersistencePredictor::new(24);
        let mut greedy = GreedyManager;
        let unmanaged = simulate_node(&view, &mut pers, &mut greedy, &cfg);

        assert!(
            managed.brownout_rate() < unmanaged.brownout_rate(),
            "managed {managed} vs greedy {unmanaged}"
        );
    }

    #[test]
    fn fixed_duty_mean_matches() {
        let trace = solar_trace(5);
        let view = SlotView::new(&trace, SlotsPerDay::new(24).unwrap()).unwrap();
        let mut predictor = PersistencePredictor::new(24);
        let mut manager = FixedDutyManager::new(0.3);
        let report = simulate_node(&view, &mut predictor, &mut manager, &config());
        assert!((report.mean_duty - 0.3).abs() < 1e-12);
    }

    #[test]
    fn report_display_and_rates() {
        let report = NodeReport {
            slots: 10,
            brownouts: 2,
            ..Default::default()
        };
        assert!((report.brownout_rate() - 0.2).abs() < 1e-12);
        assert!(report.to_string().contains("10 slots"));
        assert_eq!(NodeReport::default().brownout_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "predictor configured for")]
    fn mismatched_n_panics() {
        let trace = solar_trace(2);
        let view = SlotView::new(&trace, SlotsPerDay::new(24).unwrap()).unwrap();
        let mut predictor = PersistencePredictor::new(48);
        let mut manager = GreedyManager;
        let _ = simulate_node(&view, &mut predictor, &mut manager, &config());
    }
}
