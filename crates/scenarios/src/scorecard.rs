//! Reduction of job outcomes into a ranked, regression-friendly
//! scorecard — monolithic or sharded.
//!
//! Ranking uses a single *service score* per (predictor, manager) combo
//! (lower is better):
//!
//! ```text
//! score = 2·brownout_rate + (1 − utilization) + 0.5·MAPE
//! ```
//!
//! Brownouts dominate (missed service is the failure mode harvested
//! systems are provisioned against), wasted energy comes second, and raw
//! prediction error acts as a tiebreaker that rewards accuracy even when
//! a policy masks it. Per-scenario tables rank combos within each
//! scenario; the overall table averages the per-scenario metrics
//! (unweighted, so short harsh scenarios count) via
//! [`pred_metrics::SummaryAggregate`] and re-ranks.
//!
//! **Denominator semantics:** brownout/utilization/duty are averaged
//! over *all* of a combo's scenarios, while MAPE averages only the
//! scenarios with protocol-passing predictions (via
//! [`SummaryAggregate`], which skips zero-count runs — a polar-night
//! scenario that the ROI filters empty carries management signal but no
//! accuracy signal). Every entry carries its `predictions` count so a
//! zero-evidence MAPE is distinguishable from a perfect one; renderers
//! show `--` for it.
//!
//! # Shards
//!
//! A matrix too large for one JSON document ships as a
//! [`ShardManifest`] plus one [`ScorecardShard`] per scenario subset.
//! Because the overall table is a pure function of the per-scenario
//! rankings (one shared code path, [`Scorecard::build`] uses it too),
//! [`Scorecard::merge_shards`] reproduces the monolithic scorecard
//! **byte-for-byte** from shards in any order — pinned by tests across
//! thread counts and shard orderings.
//!
//! JSON output is deterministic: entries carry explicit ranks, object
//! keys have fixed order, and floats use shortest-round-trip formatting
//! — byte-identical across runs and thread counts for the same inputs.
//! Cost accounting follows the [`pred_metrics::CostAggregate`] split: per-entry
//! `peak_candidates` is spec-derived and appears in JSON; wall time and
//! peak trace memory are non-deterministic (the latter varies with
//! cache policy) and appear **only** in [`Scorecard::render_text`] (a
//! wall-time field in the JSON would break the byte-identity contract
//! between runs and between full and incremental re-scoring).

use crate::engine::{JobOutcome, ResolvedTraceBudget};
use crate::json::Json;
use crate::matrix::FleetMatrix;
use fleet_obs::Collector;
use pred_metrics::{CostAggregate, ErrorSummary, SummaryAggregate};

const BROWNOUT_WEIGHT: f64 = 2.0;
const WASTE_WEIGHT: f64 = 1.0;
const MAPE_WEIGHT: f64 = 0.5;

/// One ranked row: a (predictor, manager) combo's metrics, either within
/// one scenario or aggregated across all of them.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoreEntry {
    /// Rank within its table (1 = best).
    pub rank: usize,
    /// Predictor label.
    pub predictor: String,
    /// Manager label.
    pub manager: String,
    /// Composite service score (lower is better).
    pub score: f64,
    /// Number of protocol-passing predictions behind `mape` (0 means
    /// the ROI filtered every slot — e.g. polar night — and `mape`
    /// carries no information; renderers show `--`).
    pub predictions: usize,
    /// Largest per-slot candidate count any of the combo's jobs paid
    /// (1 for fixed predictors, `|α| · K_max` for dynamic selectors) —
    /// the deterministic half of the tuning-cost accounting.
    pub peak_candidates: usize,
    /// MAPE (fraction) — per-scenario value or unweighted mean.
    pub mape: f64,
    /// Worst per-scenario MAPE (equals `mape` in per-scenario tables).
    pub worst_mape: f64,
    /// Brownout rate — per-scenario value or unweighted mean.
    pub brownout_rate: f64,
    /// Utilization — per-scenario value or unweighted mean.
    pub utilization: f64,
    /// Mean planned duty.
    pub mean_duty: f64,
}

impl ScoreEntry {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rank", Json::Num(self.rank as f64)),
            ("predictor", Json::Str(self.predictor.clone())),
            ("manager", Json::Str(self.manager.clone())),
            ("score", Json::Num(self.score)),
            ("predictions", Json::Num(self.predictions as f64)),
            ("peak_candidates", Json::Num(self.peak_candidates as f64)),
            ("mape", Json::Num(self.mape)),
            ("worst_mape", Json::Num(self.worst_mape)),
            ("brownout_rate", Json::Num(self.brownout_rate)),
            ("utilization", Json::Num(self.utilization)),
            ("mean_duty", Json::Num(self.mean_duty)),
        ])
    }

    fn from_json(value: &Json) -> Result<ScoreEntry, String> {
        Ok(ScoreEntry {
            rank: value.req_index("rank")? as usize,
            predictor: value.req_str("predictor")?.to_string(),
            manager: value.req_str("manager")?.to_string(),
            score: value.req_num("score")?,
            predictions: value.req_index("predictions")? as usize,
            peak_candidates: value.req_index("peak_candidates")? as usize,
            mape: value.req_num("mape")?,
            worst_mape: value.req_num("worst_mape")?,
            brownout_rate: value.req_num("brownout_rate")?,
            utilization: value.req_num("utilization")?,
            mean_duty: value.req_num("mean_duty")?,
        })
    }
}

/// The ranking of every combo within one scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioRanking {
    /// Scenario name.
    pub scenario: String,
    /// Entries sorted best-first.
    pub entries: Vec<ScoreEntry>,
}

impl ScenarioRanking {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", Json::Str(self.scenario.clone())),
            (
                "entries",
                Json::Arr(self.entries.iter().map(ScoreEntry::to_json).collect()),
            ),
        ])
    }

    fn from_json(value: &Json) -> Result<ScenarioRanking, String> {
        Ok(ScenarioRanking {
            scenario: value.req_str("scenario")?.to_string(),
            entries: value
                .req("entries")?
                .as_arr()
                .ok_or("entries must be an array")?
                .iter()
                .map(ScoreEntry::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

/// The reduced fleet result.
#[derive(Clone, Debug, PartialEq)]
pub struct Scorecard {
    /// The engine's master seed (recorded for reproducibility).
    pub master_seed: u64,
    /// Per-scenario rankings, in matrix scenario order.
    pub per_scenario: Vec<ScenarioRanking>,
    /// Overall ranking across scenarios, best-first.
    pub overall: Vec<ScoreEntry>,
    /// Aggregated cost of evaluating every job in the matrix once.
    /// **Cumulative across cache reuse**: a job served from a warm
    /// [`crate::FleetCache`] contributes the wall time of its original
    /// evaluation, so a mostly-cached run reports what the results
    /// *cost to obtain*, not what this re-run spent (use
    /// [`crate::FleetResult::cached_jobs`] for the split). Wall time and
    /// peak trace memory are non-deterministic and are rendered by
    /// [`Scorecard::render_text`] only — never into the byte-pinned
    /// JSON.
    pub cost: CostAggregate,
    /// The trace budget the producing run enforced, with its source —
    /// the adaptive policy's previously invisible decision. Like
    /// `cost`, it is machine-dependent (detected memory moves between
    /// hosts), so it renders in [`Scorecard::render_text`] only, never
    /// into the byte-pinned JSON. `None` for merged or hand-built
    /// scorecards.
    pub trace_budget: Option<ResolvedTraceBudget>,
}

fn service_score(brownout_rate: f64, utilization: f64, mape: f64) -> f64 {
    BROWNOUT_WEIGHT * brownout_rate + WASTE_WEIGHT * (1.0 - utilization) + MAPE_WEIGHT * mape
}

/// Total-order sort and 1-based rank assignment (ties broken by labels,
/// so output order never depends on input order or float caprice).
fn rank(entries: &mut [ScoreEntry]) {
    entries.sort_by(|a, b| {
        a.score
            .total_cmp(&b.score)
            .then_with(|| a.predictor.cmp(&b.predictor))
            .then_with(|| a.manager.cmp(&b.manager))
    });
    for (index, entry) in entries.iter_mut().enumerate() {
        entry.rank = index + 1;
    }
}

impl Scorecard {
    /// Reduces job outcomes (any order; they are re-sorted by matrix
    /// coordinates internally).
    pub fn build(matrix: &FleetMatrix, outcomes: &[JobOutcome], master_seed: u64) -> Scorecard {
        let per_scenario = Self::per_scenario_rankings(matrix, outcomes);
        let overall = Self::overall_from_per_scenario(&per_scenario);
        Scorecard {
            master_seed,
            per_scenario,
            overall,
            // Sums and maxes of integers: order-insensitive, no sort
            // needed.
            cost: CostAggregate::of(outcomes.iter().map(|o| o.cost)),
            trace_budget: None,
        }
    }

    /// The per-scenario ranking tables of a matrix's outcomes, in matrix
    /// scenario order — the unit a [`ScorecardShard`] carries.
    pub fn per_scenario_rankings(
        matrix: &FleetMatrix,
        outcomes: &[JobOutcome],
    ) -> Vec<ScenarioRanking> {
        let mut sorted: Vec<&JobOutcome> = outcomes.iter().collect();
        sorted.sort_by_key(|o| {
            (
                o.spec.scenario_idx,
                o.spec.predictor_idx,
                o.spec.manager_idx,
            )
        });
        let mut per_scenario = Vec::with_capacity(matrix.scenarios.len());
        for (scenario_idx, scenario) in matrix.scenarios.iter().enumerate() {
            let mut entries = Vec::new();
            for outcome in sorted
                .iter()
                .filter(|o| o.spec.scenario_idx == scenario_idx)
            {
                let brownout = outcome.report.brownout_rate();
                let utilization = outcome.report.utilization;
                let mape = outcome.summary.mape;
                entries.push(ScoreEntry {
                    rank: 0,
                    predictor: outcome.predictor.clone(),
                    manager: outcome.manager.clone(),
                    score: service_score(brownout, utilization, mape),
                    predictions: outcome.summary.count,
                    peak_candidates: outcome.cost.peak_candidates,
                    mape,
                    worst_mape: mape,
                    brownout_rate: brownout,
                    utilization,
                    mean_duty: outcome.report.mean_duty,
                });
            }
            rank(&mut entries);
            per_scenario.push(ScenarioRanking {
                scenario: scenario.name.clone(),
                entries,
            });
        }
        per_scenario
    }

    /// The overall table as a pure function of the per-scenario tables —
    /// the shared reduction behind both [`Scorecard::build`] and
    /// [`Scorecard::merge_shards`], which is what makes merged output
    /// byte-identical to monolithic output.
    ///
    /// An engine-built matrix is a full cross product (every combo in
    /// every scenario table); a hand-assembled partial outcome set is
    /// still handled gracefully — each combo aggregates over the
    /// scenarios it appears in, like the pre-sharding reduction did.
    fn overall_from_per_scenario(per_scenario: &[ScenarioRanking]) -> Vec<ScoreEntry> {
        let mut overall = Vec::new();
        // Union of combos across all scenario tables, first-seen order
        // (for full products this is exactly the first table's set).
        let mut combos: Vec<(&str, &str)> = Vec::new();
        for ranking in per_scenario {
            for entry in &ranking.entries {
                let key = (entry.predictor.as_str(), entry.manager.as_str());
                if !combos.contains(&key) {
                    combos.push(key);
                }
            }
        }
        for (predictor, manager) in combos {
            // Collect the combo's per-scenario entries in scenario order
            // (the same accumulation order the per-outcome reduction
            // used, so float sums are bit-identical).
            let rows: Vec<&ScoreEntry> = per_scenario
                .iter()
                .filter_map(|ranking| {
                    ranking
                        .entries
                        .iter()
                        .find(|e| e.predictor == predictor && e.manager == manager)
                })
                .collect();
            // Per-scenario MAPE entries reduce through the same
            // aggregator as raw summaries (only mape/count feed the
            // overall table's fields).
            let summaries: Vec<ErrorSummary> = rows
                .iter()
                .map(|e| ErrorSummary {
                    mape: e.mape,
                    count: e.predictions,
                    ..Default::default()
                })
                .collect();
            let aggregate = SummaryAggregate::of(&summaries);
            let runs = rows.len() as f64;
            let brownout = rows.iter().map(|e| e.brownout_rate).sum::<f64>() / runs;
            let utilization = rows.iter().map(|e| e.utilization).sum::<f64>() / runs;
            let mean_duty = rows.iter().map(|e| e.mean_duty).sum::<f64>() / runs;
            overall.push(ScoreEntry {
                rank: 0,
                predictor: predictor.to_string(),
                manager: manager.to_string(),
                score: service_score(brownout, utilization, aggregate.mean_mape),
                predictions: aggregate.predictions,
                peak_candidates: rows.iter().map(|e| e.peak_candidates).max().unwrap_or(0),
                mape: aggregate.mean_mape,
                worst_mape: aggregate.worst_mape,
                brownout_rate: brownout,
                utilization,
                mean_duty,
            });
        }
        rank(&mut overall);
        overall
    }

    /// Reassembles the monolithic scorecard from shards (any order).
    ///
    /// The output is byte-identical to what [`Scorecard::build`] over
    /// the full outcome set produces: per-scenario tables are
    /// concatenated in manifest order and the overall table re-derives
    /// through the shared reduction.
    ///
    /// # Errors
    ///
    /// Rejects missing/duplicate/foreign shards, seed mismatches, and
    /// shards whose scenario lists disagree with the manifest.
    pub fn merge_shards(
        manifest: &ShardManifest,
        shards: &[ScorecardShard],
    ) -> Result<Scorecard, String> {
        if shards.len() != manifest.shard_count {
            return Err(format!(
                "manifest expects {} shards, got {}",
                manifest.shard_count,
                shards.len()
            ));
        }
        let mut by_index: Vec<Option<&ScorecardShard>> = vec![None; manifest.shard_count];
        for shard in shards {
            if shard.master_seed != manifest.master_seed {
                return Err(format!(
                    "shard {} carries seed {}, manifest has {}",
                    shard.shard_index, shard.master_seed, manifest.master_seed
                ));
            }
            let slot = by_index
                .get_mut(shard.shard_index)
                .ok_or_else(|| format!("shard index {} out of range", shard.shard_index))?;
            if slot.is_some() {
                return Err(format!("duplicate shard index {}", shard.shard_index));
            }
            *slot = Some(shard);
        }
        // Walk the manifest's global scenario order, consuming each
        // shard's rankings positionally (names double-checked).
        let mut cursors = vec![0usize; manifest.shard_count];
        let mut per_scenario = Vec::with_capacity(manifest.scenarios.len());
        let mut cost = CostAggregate::default();
        for (name, shard_idx) in &manifest.scenarios {
            // The manifest may come from untrusted JSON: its shard
            // indices are not pre-validated.
            let shard = by_index
                .get(*shard_idx)
                .and_then(|slot| *slot)
                .ok_or_else(|| {
                    format!("manifest names shard {shard_idx}, which is out of range")
                })?;
            let ranking = shard
                .per_scenario
                .get(cursors[*shard_idx])
                .ok_or_else(|| format!("shard {shard_idx} is short a scenario"))?;
            cursors[*shard_idx] += 1;
            if &ranking.scenario != name {
                return Err(format!(
                    "shard {shard_idx} has scenario {:?} where manifest expects {name:?}",
                    ranking.scenario
                ));
            }
            per_scenario.push(ranking.clone());
        }
        for (idx, shard) in by_index.iter().enumerate() {
            let shard = shard.expect("all shards present");
            if cursors[idx] != shard.per_scenario.len() {
                return Err(format!("shard {idx} has scenarios the manifest lacks"));
            }
            cost.merge(&shard.cost);
        }
        // Every scenario table must rank the same combo set — shards
        // from runs over different predictor/manager axes (same seed,
        // same scenario names) would otherwise corrupt the overall
        // reduction.
        let combo_set = |ranking: &ScenarioRanking| {
            let mut combos: Vec<(String, String)> = ranking
                .entries
                .iter()
                .map(|e| (e.predictor.clone(), e.manager.clone()))
                .collect();
            combos.sort();
            combos
        };
        if let Some(first) = per_scenario.first() {
            let reference = combo_set(first);
            for ranking in &per_scenario[1..] {
                if combo_set(ranking) != reference {
                    return Err(format!(
                        "scenario {:?} ranks a different combo set than {:?} — \
                         shards come from different matrices",
                        ranking.scenario, first.scenario
                    ));
                }
            }
        }
        let overall = Self::overall_from_per_scenario(&per_scenario);
        Ok(Scorecard {
            master_seed: manifest.master_seed,
            per_scenario,
            overall,
            cost,
            trace_budget: None,
        })
    }

    /// Subtracts a previously merged shard's contribution — the
    /// inverse of the bucket-wise merge law behind
    /// [`Scorecard::merge_shards`]. The returned scorecard is exactly
    /// what merging every *other* shard of `manifest` produces: the
    /// shard's scenario tables are removed at their manifest
    /// positions and the overall table re-derives through the shared
    /// reduction, so a retract-then-reabsorb round-trip is
    /// byte-identical (pinned by a property test).
    ///
    /// Cost accounting follows the [`pred_metrics::CostAggregate`] split:
    /// summed fields (`jobs`, wall total) subtract; `peak_candidates`
    /// is recomputed from the remaining entries; the non-serialized
    /// machine-dependent maxima (peak wall, peak trace memory) are
    /// high-water marks of work already performed and deliberately
    /// keep their values.
    ///
    /// # Errors
    ///
    /// Rejects seed mismatches, out-of-range shard indices, and — the
    /// load-bearing guard — a shard whose scenario tables are not
    /// byte-for-byte the ones this scorecard absorbed at the
    /// manifest's positions (a foreign or already-retracted shard
    /// would otherwise silently corrupt the reduction).
    pub fn retract_shard(
        &self,
        manifest: &ShardManifest,
        shard: &ScorecardShard,
    ) -> Result<Scorecard, String> {
        if shard.master_seed != manifest.master_seed || self.master_seed != manifest.master_seed {
            return Err(format!(
                "seed mismatch: scorecard {}, manifest {}, shard {}",
                self.master_seed, manifest.master_seed, shard.master_seed
            ));
        }
        if shard.shard_index >= manifest.shard_count {
            return Err(format!(
                "shard index {} out of range (manifest has {} shards)",
                shard.shard_index, manifest.shard_count
            ));
        }
        if self.per_scenario.len() != manifest.scenarios.len() {
            return Err(format!(
                "scorecard has {} scenario tables where the manifest names {} — \
                 retraction needs the fully merged scorecard",
                self.per_scenario.len(),
                manifest.scenarios.len()
            ));
        }
        let mut kept = Vec::with_capacity(self.per_scenario.len());
        let mut shard_cursor = 0usize;
        for ((name, shard_idx), ranking) in manifest.scenarios.iter().zip(&self.per_scenario) {
            if &ranking.scenario != name {
                return Err(format!(
                    "scorecard has scenario {:?} where manifest expects {name:?}",
                    ranking.scenario
                ));
            }
            if *shard_idx != shard.shard_index {
                kept.push(ranking.clone());
                continue;
            }
            let absorbed = shard.per_scenario.get(shard_cursor).ok_or_else(|| {
                format!(
                    "shard {} is short a scenario: manifest assigns it {name:?}",
                    shard.shard_index
                )
            })?;
            shard_cursor += 1;
            if absorbed != ranking {
                return Err(format!(
                    "shard {} table for {name:?} is not the one this scorecard \
                     absorbed — refusing to retract a foreign shard",
                    shard.shard_index
                ));
            }
        }
        if shard_cursor != shard.per_scenario.len() {
            return Err(format!(
                "shard {} has scenarios the manifest never assigned to it",
                shard.shard_index
            ));
        }
        let jobs = self.cost.jobs.checked_sub(shard.cost.jobs).ok_or_else(|| {
            format!(
                "shard retracts {} jobs but the scorecard only holds {}",
                shard.cost.jobs, self.cost.jobs
            )
        })?;
        let overall = Self::overall_from_per_scenario(&kept);
        let cost = CostAggregate {
            jobs,
            total_wall_nanos: self
                .cost
                .total_wall_nanos
                .saturating_sub(shard.cost.total_wall_nanos),
            peak_candidates: kept
                .iter()
                .flat_map(|r| r.entries.iter().map(|e| e.peak_candidates))
                .max()
                .unwrap_or(0),
            ..self.cost
        };
        Ok(Scorecard {
            master_seed: self.master_seed,
            per_scenario: kept,
            overall,
            cost,
            trace_budget: None,
        })
    }

    /// Re-inserts one shard into a scorecard that
    /// [`Scorecard::retract_shard`] removed it from — the other
    /// direction of the inverse law. The shard's tables slot back into
    /// their manifest positions and the overall table re-derives, so
    /// the result is byte-identical to merging all shards at once.
    ///
    /// # Errors
    ///
    /// Rejects seed mismatches, out-of-range indices, a scorecard
    /// whose tables do not line up with the manifest minus this shard,
    /// and shards whose combo set disagrees with the retained tables.
    pub fn absorb_shard(
        &self,
        manifest: &ShardManifest,
        shard: &ScorecardShard,
    ) -> Result<Scorecard, String> {
        if shard.master_seed != manifest.master_seed || self.master_seed != manifest.master_seed {
            return Err(format!(
                "seed mismatch: scorecard {}, manifest {}, shard {}",
                self.master_seed, manifest.master_seed, shard.master_seed
            ));
        }
        if shard.shard_index >= manifest.shard_count {
            return Err(format!(
                "shard index {} out of range (manifest has {} shards)",
                shard.shard_index, manifest.shard_count
            ));
        }
        let mut per_scenario = Vec::with_capacity(manifest.scenarios.len());
        let mut kept_cursor = 0usize;
        let mut shard_cursor = 0usize;
        for (name, shard_idx) in &manifest.scenarios {
            let (source, ranking) = if *shard_idx == shard.shard_index {
                let ranking = shard.per_scenario.get(shard_cursor).ok_or_else(|| {
                    format!(
                        "shard {} is short a scenario: manifest assigns it {name:?}",
                        shard.shard_index
                    )
                })?;
                shard_cursor += 1;
                ("shard", ranking)
            } else {
                let ranking = self.per_scenario.get(kept_cursor).ok_or_else(|| {
                    format!("scorecard is short a scenario: manifest expects {name:?}")
                })?;
                kept_cursor += 1;
                ("scorecard", ranking)
            };
            if &ranking.scenario != name {
                return Err(format!(
                    "{source} has scenario {:?} where manifest expects {name:?}",
                    ranking.scenario
                ));
            }
            per_scenario.push(ranking.clone());
        }
        if shard_cursor != shard.per_scenario.len() {
            return Err(format!(
                "shard {} has scenarios the manifest never assigned to it",
                shard.shard_index
            ));
        }
        if kept_cursor != self.per_scenario.len() {
            return Err(
                "scorecard has scenario tables the manifest does not account for".to_string(),
            );
        }
        // The same cross-matrix guard merge_shards applies: every table
        // must rank one combo set.
        if let (Some(reference), Some(incoming)) =
            (self.per_scenario.first(), shard.per_scenario.first())
        {
            let combo_set = |ranking: &ScenarioRanking| {
                let mut combos: Vec<(String, String)> = ranking
                    .entries
                    .iter()
                    .map(|e| (e.predictor.clone(), e.manager.clone()))
                    .collect();
                combos.sort();
                combos
            };
            if combo_set(reference) != combo_set(incoming) {
                return Err(format!(
                    "shard {} ranks a different combo set than the scorecard — \
                     it comes from a different matrix",
                    shard.shard_index
                ));
            }
        }
        let overall = Self::overall_from_per_scenario(&per_scenario);
        let mut cost = self.cost;
        cost.merge(&shard.cost);
        Ok(Scorecard {
            master_seed: self.master_seed,
            per_scenario,
            overall,
            cost,
            trace_budget: None,
        })
    }

    /// [`Scorecard::merge_shards`] with the merge recorded into a run
    /// ledger: counts the scenario tables reassembled
    /// (`merge/scenario_tables`) — deliberately *not* the shard count,
    /// which would differ between shard splits of the same run and
    /// break the ledger's byte-identity across splits.
    pub fn merge_shards_observed(
        manifest: &ShardManifest,
        shards: &[ScorecardShard],
        collector: &Collector,
    ) -> Result<Scorecard, String> {
        let merged = Self::merge_shards(manifest, shards)?;
        if collector.is_enabled() {
            collector.count("merge/scenario_tables", manifest.scenarios.len() as u64);
            for ranking in &merged.per_scenario {
                collector.count_scenario(&ranking.scenario, "merge/merged_tables", 1);
            }
        }
        Ok(merged)
    }

    /// Merges whatever shards survived, reporting the holes.
    ///
    /// This is the graceful-degradation counterpart of
    /// [`Scorecard::merge_shards`]: shards may be missing (a worker
    /// exhausted its retry budget) and present shards may carry empty
    /// ranking tables (a scenario quarantined in-process). The merged
    /// scorecard contains only the covered scenarios' tables, and the
    /// returned [`CoverageManifest`] names every missing scenario with
    /// a reason — an honest partial answer, never a silently wrong
    /// one. With every shard present and no empty tables, the output
    /// scorecard is byte-identical to [`Scorecard::merge_shards`] and
    /// the coverage manifest is complete (a test pins this).
    ///
    /// `shard_reasons` explains absent shard indices;
    /// `scenario_reasons` annotates scenarios whose tables came back
    /// empty (e.g. quarantine errors from the worker artifact).
    ///
    /// # Errors
    ///
    /// Present shards are validated as strictly as the complete merge:
    /// foreign seeds, duplicate or out-of-range indices, scenario-name
    /// mismatches, and combo-set disagreement all fail. A shard both
    /// present and listed in `shard_reasons` is a caller bug and
    /// fails too.
    pub fn merge_shards_partial(
        manifest: &ShardManifest,
        shards: &[ScorecardShard],
        shard_reasons: &std::collections::BTreeMap<usize, String>,
        scenario_reasons: &std::collections::BTreeMap<String, String>,
    ) -> Result<(Scorecard, CoverageManifest), String> {
        let mut by_index: Vec<Option<&ScorecardShard>> = vec![None; manifest.shard_count];
        for shard in shards {
            if shard.master_seed != manifest.master_seed {
                return Err(format!(
                    "shard {} carries seed {}, manifest has {}",
                    shard.shard_index, shard.master_seed, manifest.master_seed
                ));
            }
            let slot = by_index
                .get_mut(shard.shard_index)
                .ok_or_else(|| format!("shard index {} out of range", shard.shard_index))?;
            if slot.is_some() {
                return Err(format!("duplicate shard index {}", shard.shard_index));
            }
            if shard_reasons.contains_key(&shard.shard_index) {
                return Err(format!(
                    "shard {} is both present and declared missing",
                    shard.shard_index
                ));
            }
            *slot = Some(shard);
        }
        let mut cursors = vec![0usize; manifest.shard_count];
        let mut per_scenario = Vec::new();
        let mut coverage = CoverageManifest::default();
        let mut cost = CostAggregate::default();
        for (name, shard_idx) in &manifest.scenarios {
            if *shard_idx >= manifest.shard_count {
                return Err(format!(
                    "manifest names shard {shard_idx}, which is out of range"
                ));
            }
            let Some(shard) = by_index[*shard_idx] else {
                let reason = shard_reasons
                    .get(shard_idx)
                    .cloned()
                    .unwrap_or_else(|| format!("shard {shard_idx} missing"));
                coverage.missing.push(MissingCoverage {
                    scenario: name.clone(),
                    reason,
                });
                continue;
            };
            let ranking = shard
                .per_scenario
                .get(cursors[*shard_idx])
                .ok_or_else(|| format!("shard {shard_idx} is short a scenario"))?;
            cursors[*shard_idx] += 1;
            if &ranking.scenario != name {
                return Err(format!(
                    "shard {shard_idx} has scenario {:?} where manifest expects {name:?}",
                    ranking.scenario
                ));
            }
            if ranking.entries.is_empty() {
                let reason = scenario_reasons
                    .get(name)
                    .cloned()
                    .unwrap_or_else(|| "scenario produced no outcomes".to_string());
                coverage.missing.push(MissingCoverage {
                    scenario: name.clone(),
                    reason,
                });
                continue;
            }
            coverage.covered.push(name.clone());
            per_scenario.push(ranking.clone());
        }
        for (idx, shard) in by_index.iter().enumerate() {
            let Some(shard) = shard else { continue };
            if cursors[idx] != shard.per_scenario.len() {
                return Err(format!("shard {idx} has scenarios the manifest lacks"));
            }
            cost.merge(&shard.cost);
        }
        // The combo-set agreement check from the complete merge, over
        // the covered tables only.
        let combo_set = |ranking: &ScenarioRanking| {
            let mut combos: Vec<(String, String)> = ranking
                .entries
                .iter()
                .map(|e| (e.predictor.clone(), e.manager.clone()))
                .collect();
            combos.sort();
            combos
        };
        if let Some(first) = per_scenario.first() {
            let reference = combo_set(first);
            for ranking in &per_scenario[1..] {
                if combo_set(ranking) != reference {
                    return Err(format!(
                        "scenario {:?} ranks a different combo set than {:?} — \
                         shards come from different matrices",
                        ranking.scenario, first.scenario
                    ));
                }
            }
        }
        let overall = Self::overall_from_per_scenario(&per_scenario);
        Ok((
            Scorecard {
                master_seed: manifest.master_seed,
                per_scenario,
                overall,
                cost,
                trace_budget: None,
            },
            coverage,
        ))
    }

    /// The best overall combo.
    pub fn winner(&self) -> Option<&ScoreEntry> {
        self.overall.first()
    }

    /// JSON form (deterministic; see module docs).
    ///
    /// `master_seed` is carried as a decimal *string*: JSON numbers are
    /// doubles, which would silently corrupt seeds ≥ 2⁵³ — the one
    /// field whose whole purpose is exact replay.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("master_seed", Json::Str(self.master_seed.to_string())),
            (
                "per_scenario",
                Json::Arr(
                    self.per_scenario
                        .iter()
                        .map(ScenarioRanking::to_json)
                        .collect(),
                ),
            ),
            (
                "overall",
                Json::Arr(self.overall.iter().map(ScoreEntry::to_json).collect()),
            ),
        ])
    }

    /// Pretty-printed deterministic JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().render_pretty()
    }

    /// A plain-text ranking table for terminals.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<4}{:<51}{:<22}{:>8}{:>9}{:>11}{:>8}{:>8}{:>7}",
            "#", "predictor", "manager", "score", "MAPE%", "brownout%", "util%", "duty", "cand"
        );
        for entry in &self.overall {
            let mape = if entry.predictions == 0 {
                "--".to_string()
            } else {
                format!("{:.2}", entry.mape * 100.0)
            };
            let _ = writeln!(
                out,
                "{:<4}{:<51}{:<22}{:>8.3}{:>9}{:>11.2}{:>8.1}{:>8.3}{:>7}",
                entry.rank,
                entry.predictor,
                entry.manager,
                entry.score,
                mape,
                entry.brownout_rate * 100.0,
                entry.utilization * 100.0,
                entry.mean_duty,
                entry.peak_candidates,
            );
        }
        let _ = writeln!(out, "evaluation cost (incl. cached work): {}", self.cost);
        if let Some(budget) = &self.trace_budget {
            let _ = writeln!(out, "trace budget: {budget}");
        }
        out
    }
}

/// One shard of a sharded scorecard: the per-scenario ranking tables of
/// a scenario subset. Produced by
/// [`FleetEngine::run_sharded`](crate::FleetEngine::run_sharded);
/// reassembled by [`Scorecard::merge_shards`].
#[derive(Clone, Debug, PartialEq)]
pub struct ScorecardShard {
    /// This shard's index in `0..shard_count`.
    pub shard_index: usize,
    /// The engine's master seed (merge refuses foreign shards).
    pub master_seed: u64,
    /// Rankings of this shard's scenarios, in global matrix order.
    pub per_scenario: Vec<ScenarioRanking>,
    /// Cost of this shard's jobs. Wall time and trace memory never
    /// enter shard JSON (non-deterministic); only the deterministic
    /// `jobs`/`peak_candidates` fields round-trip.
    pub cost: CostAggregate,
}

impl ScorecardShard {
    /// Deterministic JSON form (no wall time, no trace memory).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("shard_index", Json::Num(self.shard_index as f64)),
            ("master_seed", Json::Str(self.master_seed.to_string())),
            (
                "per_scenario",
                Json::Arr(
                    self.per_scenario
                        .iter()
                        .map(ScenarioRanking::to_json)
                        .collect(),
                ),
            ),
            ("jobs", Json::Num(self.cost.jobs as f64)),
            (
                "peak_candidates",
                Json::Num(self.cost.peak_candidates as f64),
            ),
        ])
    }

    /// Parses the JSON form. The non-deterministic cost fields (wall
    /// time, trace memory) are not serialized and parse back as zero.
    pub fn from_json(value: &Json) -> Result<ScorecardShard, String> {
        Ok(ScorecardShard {
            shard_index: value.req_index("shard_index")? as usize,
            master_seed: value
                .req_str("master_seed")?
                .parse()
                .map_err(|e| format!("bad master_seed: {e}"))?,
            per_scenario: value
                .req("per_scenario")?
                .as_arr()
                .ok_or("per_scenario must be an array")?
                .iter()
                .map(ScenarioRanking::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            cost: CostAggregate {
                jobs: value.req_index("jobs")? as usize,
                peak_candidates: value.req_index("peak_candidates")? as usize,
                ..Default::default()
            },
        })
    }

    /// Parses a shard from JSON text.
    pub fn from_json_str(text: &str) -> Result<ScorecardShard, String> {
        Self::from_json(&Json::parse(text)?)
    }
}

/// The index document of a sharded scorecard: which scenario lives in
/// which shard, in global matrix order.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardManifest {
    /// The engine's master seed.
    pub master_seed: u64,
    /// Total shard count.
    pub shard_count: usize,
    /// `(scenario name, shard index)` in matrix scenario order.
    pub scenarios: Vec<(String, usize)>,
}

impl ShardManifest {
    /// Deterministic JSON form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("master_seed", Json::Str(self.master_seed.to_string())),
            ("shard_count", Json::Num(self.shard_count as f64)),
            (
                "scenarios",
                Json::Arr(
                    self.scenarios
                        .iter()
                        .map(|(name, shard)| {
                            Json::obj([
                                ("scenario", Json::Str(name.clone())),
                                ("shard", Json::Num(*shard as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses the JSON form.
    pub fn from_json(value: &Json) -> Result<ShardManifest, String> {
        Ok(ShardManifest {
            master_seed: value
                .req_str("master_seed")?
                .parse()
                .map_err(|e| format!("bad master_seed: {e}"))?,
            shard_count: value.req_index("shard_count")? as usize,
            scenarios: value
                .req("scenarios")?
                .as_arr()
                .ok_or("scenarios must be an array")?
                .iter()
                .map(|entry| {
                    Ok((
                        entry.req_str("scenario")?.to_string(),
                        entry.req_index("shard")? as usize,
                    ))
                })
                .collect::<Result<Vec<_>, String>>()?,
        })
    }

    /// Parses a manifest from JSON text.
    pub fn from_json_str(text: &str) -> Result<ShardManifest, String> {
        Self::from_json(&Json::parse(text)?)
    }
}

/// One scenario a degraded run could not score, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MissingCoverage {
    /// The unscored scenario's name.
    pub scenario: String,
    /// Why it is missing (retry exhaustion, quarantine error, …).
    pub reason: String,
}

/// What a (possibly partial) merged scorecard actually covers.
///
/// Produced by [`Scorecard::merge_shards_partial`]: `covered` lists
/// the scenarios whose ranking tables made it into the scorecard, in
/// manifest (global matrix) order; `missing` names each hole with the
/// reason it exists. A complete run has an empty `missing` list. The
/// harness attaches this to every degraded scorecard so a partial
/// answer is explicit, never mistaken for a full one.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoverageManifest {
    /// Scenarios present in the merged scorecard, manifest order.
    pub covered: Vec<String>,
    /// Scenarios absent from the merged scorecard, manifest order.
    pub missing: Vec<MissingCoverage>,
}

/// Schema tag for [`CoverageManifest`] JSON.
const COVERAGE_SCHEMA: &str = "fleet-coverage/1";

impl CoverageManifest {
    /// Whether every scenario is covered.
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty()
    }

    /// Deterministic JSON form: `{schema, covered, missing}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(COVERAGE_SCHEMA.to_string())),
            (
                "covered",
                Json::Arr(
                    self.covered
                        .iter()
                        .map(|name| Json::Str(name.clone()))
                        .collect(),
                ),
            ),
            (
                "missing",
                Json::Arr(
                    self.missing
                        .iter()
                        .map(|m| {
                            Json::obj([
                                ("scenario", Json::Str(m.scenario.clone())),
                                ("reason", Json::Str(m.reason.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses the JSON form.
    pub fn from_json(value: &Json) -> Result<CoverageManifest, String> {
        let schema = value.req_str("schema")?;
        if schema != COVERAGE_SCHEMA {
            return Err(format!("unsupported coverage schema {schema:?}"));
        }
        Ok(CoverageManifest {
            covered: value
                .req("covered")?
                .as_arr()
                .ok_or("covered must be an array")?
                .iter()
                .map(|item| {
                    item.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "covered entries must be strings".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
            missing: value
                .req("missing")?
                .as_arr()
                .ok_or("missing must be an array")?
                .iter()
                .map(|item| {
                    Ok(MissingCoverage {
                        scenario: item.req_str("scenario")?.to_string(),
                        reason: item.req_str("reason")?.to_string(),
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
        })
    }

    /// Parses a coverage manifest from JSON text.
    pub fn from_json_str(text: &str) -> Result<CoverageManifest, String> {
        Self::from_json(&Json::parse(text)?)
    }

    /// A terminal summary: one line per hole, or a completeness note.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.is_complete() {
            let _ = writeln!(out, "coverage: complete ({} scenarios)", self.covered.len());
            return out;
        }
        let _ = writeln!(
            out,
            "coverage: DEGRADED — {} of {} scenarios missing",
            self.missing.len(),
            self.covered.len() + self.missing.len()
        );
        for m in &self.missing {
            let _ = writeln!(out, "  missing {:<32} {}", m.scenario, m.reason);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::engine::FleetEngine;
    use crate::matrix::{FleetMatrix, ManagerSpec, PredictorSpec};

    fn run() -> (FleetMatrix, Scorecard) {
        let matrix = FleetMatrix::new(
            vec![
                PredictorSpec::Wcma {
                    alpha: 0.7,
                    days: 10,
                    k: 2,
                },
                PredictorSpec::Persistence,
            ],
            vec![
                ManagerSpec::EnergyNeutral {
                    target_soc: 0.5,
                    gain: 0.25,
                },
                ManagerSpec::Greedy,
            ],
            vec![
                Catalog::builtin().get("desert-clear-sky").unwrap().clone(),
                Catalog::builtin().get("marine-fog").unwrap().clone(),
            ],
        )
        .unwrap();
        let scorecard = FleetEngine::new(11).run(&matrix).unwrap().scorecard;
        (matrix, scorecard)
    }

    #[test]
    fn ranks_are_dense_and_sorted() {
        let (_, scorecard) = run();
        assert_eq!(scorecard.overall.len(), 4);
        for (index, entry) in scorecard.overall.iter().enumerate() {
            assert_eq!(entry.rank, index + 1);
            if index > 0 {
                assert!(entry.score >= scorecard.overall[index - 1].score);
            }
        }
        for ranking in &scorecard.per_scenario {
            assert_eq!(ranking.entries.len(), 4);
            assert_eq!(ranking.entries[0].rank, 1);
        }
    }

    #[test]
    fn managed_wcma_beats_greedy_overall() {
        let (_, scorecard) = run();
        let winner = scorecard.winner().unwrap();
        assert!(
            winner.manager.starts_with("neutral"),
            "expected a managed policy to win, got {winner:?}"
        );
    }

    #[test]
    fn json_is_deterministic_and_parseable() {
        let (_, a) = run();
        let (_, b) = run();
        let ja = a.to_json_string();
        let jb = b.to_json_string();
        assert_eq!(ja, jb);
        let parsed = crate::json::Json::parse(&ja).unwrap();
        assert_eq!(parsed.req_str("master_seed").unwrap(), "11");
        assert_eq!(parsed.req("overall").unwrap().as_arr().unwrap().len(), 4);
        assert!(!a.render_text().is_empty());
    }

    #[test]
    fn cost_shows_in_text_but_wall_time_never_reaches_json() {
        let (_, scorecard) = run();
        assert_eq!(scorecard.cost.jobs, scorecard.overall.len() * 2);
        assert!(scorecard.cost.total_wall_nanos > 0);
        assert!(scorecard.cost.peak_trace_bytes > 0);
        assert!(scorecard.render_text().contains("evaluation cost"));
        let json = scorecard.to_json_string();
        assert!(!json.contains("wall"), "wall time is non-deterministic");
        assert!(
            !json.contains("trace_bytes"),
            "trace memory varies with cache policy"
        );
        // Candidate counts are deterministic and do reach JSON.
        assert!(json.contains("\"peak_candidates\""));
    }

    #[test]
    fn huge_seeds_survive_json_exactly() {
        // Above 2^53: a float field would silently round this.
        let seed = u64::MAX - 1;
        let (matrix, _) = run();
        let result = FleetEngine::new(seed).run(&matrix).unwrap();
        let text = result.scorecard.to_json_string();
        let parsed = crate::json::Json::parse(&text).unwrap();
        assert_eq!(
            parsed
                .req_str("master_seed")
                .unwrap()
                .parse::<u64>()
                .unwrap(),
            seed
        );
    }

    #[test]
    fn shard_and_manifest_json_round_trip() {
        let (matrix, _) = run();
        let sharded = FleetEngine::new(11).run_sharded(&matrix, 2).unwrap();
        assert_eq!(sharded.shards.len(), 2);
        for shard in &sharded.shards {
            let text = shard.to_json().render_pretty();
            assert!(!text.contains("wall"), "shard JSON must stay deterministic");
            let back = ScorecardShard::from_json_str(&text).unwrap();
            assert_eq!(back.shard_index, shard.shard_index);
            assert_eq!(back.per_scenario, shard.per_scenario);
            assert_eq!(back.cost.jobs, shard.cost.jobs);
        }
        let manifest_text = sharded.manifest.to_json().render_pretty();
        let manifest_back = ShardManifest::from_json_str(&manifest_text).unwrap();
        assert_eq!(manifest_back, sharded.manifest);
    }

    #[test]
    fn partial_outcome_sets_build_without_panicking() {
        // Scorecard::build is public API: a filtered outcome slice
        // (missing jobs, even a whole scenario) must degrade to
        // aggregating what is present, not panic.
        let (matrix, _) = run();
        let full = FleetEngine::new(11).run(&matrix).unwrap();
        // Drop one job of scenario 0.
        let partial: Vec<_> = full.outcomes.iter().skip(1).cloned().collect();
        let card = Scorecard::build(&matrix, &partial, 11);
        assert_eq!(card.overall.len(), 4, "all combos still appear");
        // Drop ALL of scenario 0's jobs: combos come from scenario 1.
        let tail: Vec<_> = full
            .outcomes
            .iter()
            .filter(|o| o.spec.scenario_idx == 1)
            .cloned()
            .collect();
        let card = Scorecard::build(&matrix, &tail, 11);
        assert!(card.per_scenario[0].entries.is_empty());
        assert_eq!(card.overall.len(), 4);
        assert!(card.overall.iter().all(|e| e.score.is_finite()));
    }

    fn three_scenario_matrix() -> FleetMatrix {
        FleetMatrix::new(
            vec![
                PredictorSpec::Wcma {
                    alpha: 0.7,
                    days: 10,
                    k: 2,
                },
                PredictorSpec::Persistence,
            ],
            vec![ManagerSpec::EnergyNeutral {
                target_soc: 0.5,
                gain: 0.25,
            }],
            vec![
                Catalog::builtin().get("desert-clear-sky").unwrap().clone(),
                Catalog::builtin().get("marine-fog").unwrap().clone(),
                Catalog::builtin()
                    .get("continental-storms")
                    .unwrap()
                    .clone(),
            ],
        )
        .unwrap()
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

        /// Retraction is the exact inverse of the bucket-wise merge:
        /// subtracting any shard and re-absorbing it reproduces the
        /// merged scorecard byte-for-byte, for any split and seed.
        #[test]
        fn retract_then_reabsorb_round_trips(
            shard_count in 1usize..=3,
            retract_raw in 0usize..3,
            seed_sel in 0usize..2,
        ) {
            let seed = [11u64, 2026][seed_sel];
            let retract = retract_raw % shard_count;
            let matrix = three_scenario_matrix();
            let sharded = FleetEngine::new(seed)
                .run_sharded(&matrix, shard_count)
                .unwrap();
            let merged =
                Scorecard::merge_shards(&sharded.manifest, &sharded.shards).unwrap();
            let shard = &sharded.shards[retract];
            let without = merged.retract_shard(&sharded.manifest, shard).unwrap();
            // The retracted scorecard equals merging the other shards'
            // tables: no trace of the shard's scenarios remains.
            for ranking in &without.per_scenario {
                proptest::prop_assert!(shard
                    .per_scenario
                    .iter()
                    .all(|r| r.scenario != ranking.scenario));
            }
            let back = without.absorb_shard(&sharded.manifest, shard).unwrap();
            proptest::prop_assert_eq!(back.to_json_string(), merged.to_json_string());
            proptest::prop_assert_eq!(back.cost.jobs, merged.cost.jobs);
            // Retracting twice must fail: the tables are gone.
            proptest::prop_assert!(without
                .retract_shard(&sharded.manifest, shard)
                .is_err());
        }
    }

    #[test]
    fn retraction_rejects_foreign_and_mismatched_shards() {
        let matrix = three_scenario_matrix();
        let sharded = FleetEngine::new(11).run_sharded(&matrix, 2).unwrap();
        let merged = Scorecard::merge_shards(&sharded.manifest, &sharded.shards).unwrap();
        // Foreign seed.
        let mut foreign = sharded.shards[0].clone();
        foreign.master_seed ^= 1;
        assert!(merged.retract_shard(&sharded.manifest, &foreign).is_err());
        // Out-of-range index.
        let mut out_of_range = sharded.shards[0].clone();
        out_of_range.shard_index = 9;
        assert!(merged
            .retract_shard(&sharded.manifest, &out_of_range)
            .is_err());
        // A shard the scorecard never absorbed: same shape, edited
        // content.
        let mut edited = sharded.shards[0].clone();
        edited.per_scenario[0].entries[0].score += 1.0;
        assert!(merged.retract_shard(&sharded.manifest, &edited).is_err());
        // Absorbing into a scorecard that still holds the shard's
        // scenarios must fail (the manifest walk finds too many
        // tables).
        assert!(merged
            .absorb_shard(&sharded.manifest, &sharded.shards[0])
            .is_err());
    }

    #[test]
    fn merge_rejects_inconsistent_shards() {
        let (matrix, _) = run();
        let sharded = FleetEngine::new(11).run_sharded(&matrix, 2).unwrap();
        // Missing shard.
        assert!(Scorecard::merge_shards(&sharded.manifest, &sharded.shards[..1]).is_err());
        // Duplicate shard.
        let dupes = vec![sharded.shards[0].clone(), sharded.shards[0].clone()];
        assert!(Scorecard::merge_shards(&sharded.manifest, &dupes).is_err());
        // Foreign seed.
        let mut foreign = sharded.shards.clone();
        foreign[0].master_seed ^= 1;
        assert!(Scorecard::merge_shards(&sharded.manifest, &foreign).is_err());
        // Scenario-name mismatch.
        let mut renamed = sharded.shards.clone();
        renamed[0].per_scenario[0].scenario = "not-a-scenario".into();
        assert!(Scorecard::merge_shards(&sharded.manifest, &renamed).is_err());
        // Out-of-range shard index in a (possibly hand-edited) manifest
        // must be an error, not a panic.
        let mut bad_manifest = sharded.manifest.clone();
        bad_manifest.scenarios[0].1 = 9;
        assert!(Scorecard::merge_shards(&bad_manifest, &sharded.shards).is_err());
        // Shards from a different matrix (same seed, same scenario
        // names, different combo set) are rejected.
        let mut foreign_matrix = sharded.shards.clone();
        foreign_matrix[0].per_scenario[0].entries.pop();
        assert!(Scorecard::merge_shards(&sharded.manifest, &foreign_matrix).is_err());
    }

    #[test]
    fn partial_merge_with_everything_present_matches_complete_merge() {
        use std::collections::BTreeMap;
        let matrix = three_scenario_matrix();
        let sharded = FleetEngine::new(11).run_sharded(&matrix, 2).unwrap();
        let complete = Scorecard::merge_shards(&sharded.manifest, &sharded.shards).unwrap();
        let (partial, coverage) = Scorecard::merge_shards_partial(
            &sharded.manifest,
            &sharded.shards,
            &BTreeMap::new(),
            &BTreeMap::new(),
        )
        .unwrap();
        assert_eq!(partial.to_json_string(), complete.to_json_string());
        assert!(coverage.is_complete());
        assert_eq!(coverage.covered.len(), 3);
    }

    #[test]
    fn partial_merge_reports_missing_shards_and_empty_tables() {
        use std::collections::BTreeMap;
        let matrix = three_scenario_matrix();
        let sharded = FleetEngine::new(11).run_sharded(&matrix, 3).unwrap();
        // Drop shard 1 (retry exhaustion) and empty shard 2's table
        // (in-process quarantine).
        let mut shards = vec![sharded.shards[0].clone(), sharded.shards[2].clone()];
        let quarantined_scenario = shards[1].per_scenario[0].scenario.clone();
        shards[1].per_scenario[0].entries.clear();
        let shard_reasons: BTreeMap<usize, String> =
            [(1usize, "retry budget exhausted".to_string())].into();
        let scenario_reasons: BTreeMap<String, String> = [(
            quarantined_scenario.clone(),
            "work unit panicked".to_string(),
        )]
        .into();
        let (partial, coverage) = Scorecard::merge_shards_partial(
            &sharded.manifest,
            &shards,
            &shard_reasons,
            &scenario_reasons,
        )
        .unwrap();
        assert_eq!(coverage.covered.len(), 1);
        assert_eq!(coverage.missing.len(), 2);
        assert_eq!(partial.per_scenario.len(), 1);
        assert!(!partial.overall.is_empty());
        let reasons: Vec<&str> = coverage.missing.iter().map(|m| m.reason.as_str()).collect();
        assert!(reasons.contains(&"retry budget exhausted"), "{reasons:?}");
        assert!(reasons.contains(&"work unit panicked"), "{reasons:?}");
        assert!(coverage
            .missing
            .iter()
            .any(|m| m.scenario == quarantined_scenario));
        // The coverage manifest round-trips through its JSON form.
        let back = CoverageManifest::from_json_str(&coverage.to_json().render_pretty()).unwrap();
        assert_eq!(back, coverage);
        assert!(coverage.render_text().contains("DEGRADED"));

        // Contradiction (shard both present and declared missing) and
        // strict validation of present shards still hold.
        let all_reasons: BTreeMap<usize, String> = [(0usize, "x".to_string())].into();
        assert!(Scorecard::merge_shards_partial(
            &sharded.manifest,
            &shards,
            &all_reasons,
            &BTreeMap::new(),
        )
        .is_err());
        let mut foreign = shards.clone();
        foreign[0].master_seed ^= 1;
        assert!(Scorecard::merge_shards_partial(
            &sharded.manifest,
            &foreign,
            &shard_reasons,
            &BTreeMap::new(),
        )
        .is_err());
    }
}
