//! Reduction of job outcomes into a ranked, regression-friendly
//! scorecard.
//!
//! Ranking uses a single *service score* per (predictor, manager) combo
//! (lower is better):
//!
//! ```text
//! score = 2·brownout_rate + (1 − utilization) + 0.5·MAPE
//! ```
//!
//! Brownouts dominate (missed service is the failure mode harvested
//! systems are provisioned against), wasted energy comes second, and raw
//! prediction error acts as a tiebreaker that rewards accuracy even when
//! a policy masks it. Per-scenario tables rank combos within each
//! scenario; the overall table averages the per-scenario metrics
//! (unweighted, so short harsh scenarios count) via
//! [`pred_metrics::SummaryAggregate`] and re-ranks.
//!
//! **Denominator semantics:** brownout/utilization/duty are averaged
//! over *all* of a combo's scenarios, while MAPE averages only the
//! scenarios with protocol-passing predictions (via
//! [`SummaryAggregate`], which skips zero-count runs — a polar-night
//! scenario that the ROI filters empty carries management signal but no
//! accuracy signal). Every entry carries its `predictions` count so a
//! zero-evidence MAPE is distinguishable from a perfect one; renderers
//! show `--` for it.
//!
//! JSON output is deterministic: entries carry explicit ranks, object
//! keys have fixed order, and floats use shortest-round-trip formatting
//! — byte-identical across runs and thread counts for the same inputs.
//! Cost accounting follows the [`pred_metrics::cost`] split: per-entry
//! `peak_candidates` is spec-derived and appears in JSON; wall time is
//! non-deterministic and appears **only** in [`Scorecard::render_text`]
//! (a wall-time field in the JSON would break the byte-identity
//! contract between runs and between full and incremental re-scoring).

use crate::engine::JobOutcome;
use crate::json::Json;
use crate::matrix::FleetMatrix;
use pred_metrics::{CostAggregate, SummaryAggregate};

const BROWNOUT_WEIGHT: f64 = 2.0;
const WASTE_WEIGHT: f64 = 1.0;
const MAPE_WEIGHT: f64 = 0.5;

/// One ranked row: a (predictor, manager) combo's metrics, either within
/// one scenario or aggregated across all of them.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoreEntry {
    /// Rank within its table (1 = best).
    pub rank: usize,
    /// Predictor label.
    pub predictor: String,
    /// Manager label.
    pub manager: String,
    /// Composite service score (lower is better).
    pub score: f64,
    /// Number of protocol-passing predictions behind `mape` (0 means
    /// the ROI filtered every slot — e.g. polar night — and `mape`
    /// carries no information; renderers show `--`).
    pub predictions: usize,
    /// Largest per-slot candidate count any of the combo's jobs paid
    /// (1 for fixed predictors, `|α| · K_max` for dynamic selectors) —
    /// the deterministic half of the tuning-cost accounting.
    pub peak_candidates: usize,
    /// MAPE (fraction) — per-scenario value or unweighted mean.
    pub mape: f64,
    /// Worst per-scenario MAPE (equals `mape` in per-scenario tables).
    pub worst_mape: f64,
    /// Brownout rate — per-scenario value or unweighted mean.
    pub brownout_rate: f64,
    /// Utilization — per-scenario value or unweighted mean.
    pub utilization: f64,
    /// Mean planned duty.
    pub mean_duty: f64,
}

impl ScoreEntry {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rank", Json::Num(self.rank as f64)),
            ("predictor", Json::Str(self.predictor.clone())),
            ("manager", Json::Str(self.manager.clone())),
            ("score", Json::Num(self.score)),
            ("predictions", Json::Num(self.predictions as f64)),
            ("peak_candidates", Json::Num(self.peak_candidates as f64)),
            ("mape", Json::Num(self.mape)),
            ("worst_mape", Json::Num(self.worst_mape)),
            ("brownout_rate", Json::Num(self.brownout_rate)),
            ("utilization", Json::Num(self.utilization)),
            ("mean_duty", Json::Num(self.mean_duty)),
        ])
    }
}

/// The ranking of every combo within one scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioRanking {
    /// Scenario name.
    pub scenario: String,
    /// Entries sorted best-first.
    pub entries: Vec<ScoreEntry>,
}

/// The reduced fleet result.
#[derive(Clone, Debug, PartialEq)]
pub struct Scorecard {
    /// The engine's master seed (recorded for reproducibility).
    pub master_seed: u64,
    /// Per-scenario rankings, in matrix scenario order.
    pub per_scenario: Vec<ScenarioRanking>,
    /// Overall ranking across scenarios, best-first.
    pub overall: Vec<ScoreEntry>,
    /// Aggregated cost of evaluating every job in the matrix once.
    /// **Cumulative across cache reuse**: a job served from a warm
    /// [`crate::FleetCache`] contributes the wall time of its original
    /// evaluation, so a mostly-cached run reports what the results
    /// *cost to obtain*, not what this re-run spent (use
    /// [`crate::FleetResult::cached_jobs`] for the split). Wall time is
    /// non-deterministic and is rendered by [`Scorecard::render_text`]
    /// only — never into the byte-pinned JSON.
    pub cost: CostAggregate,
}

fn service_score(brownout_rate: f64, utilization: f64, mape: f64) -> f64 {
    BROWNOUT_WEIGHT * brownout_rate + WASTE_WEIGHT * (1.0 - utilization) + MAPE_WEIGHT * mape
}

/// Total-order sort and 1-based rank assignment (ties broken by labels,
/// so output order never depends on input order or float caprice).
fn rank(entries: &mut [ScoreEntry]) {
    entries.sort_by(|a, b| {
        a.score
            .total_cmp(&b.score)
            .then_with(|| a.predictor.cmp(&b.predictor))
            .then_with(|| a.manager.cmp(&b.manager))
    });
    for (index, entry) in entries.iter_mut().enumerate() {
        entry.rank = index + 1;
    }
}

impl Scorecard {
    /// Reduces job outcomes (any order; they are re-sorted by matrix
    /// coordinates internally).
    pub fn build(matrix: &FleetMatrix, outcomes: &[JobOutcome], master_seed: u64) -> Scorecard {
        let mut sorted: Vec<&JobOutcome> = outcomes.iter().collect();
        sorted.sort_by_key(|o| {
            (
                o.spec.scenario_idx,
                o.spec.predictor_idx,
                o.spec.manager_idx,
            )
        });

        // Per-scenario tables.
        let mut per_scenario = Vec::with_capacity(matrix.scenarios.len());
        for (scenario_idx, scenario) in matrix.scenarios.iter().enumerate() {
            let mut entries = Vec::new();
            for outcome in sorted
                .iter()
                .filter(|o| o.spec.scenario_idx == scenario_idx)
            {
                let brownout = outcome.report.brownout_rate();
                let utilization = outcome.report.utilization;
                let mape = outcome.summary.mape;
                entries.push(ScoreEntry {
                    rank: 0,
                    predictor: outcome.predictor.clone(),
                    manager: outcome.manager.clone(),
                    score: service_score(brownout, utilization, mape),
                    predictions: outcome.summary.count,
                    peak_candidates: outcome.cost.peak_candidates,
                    mape,
                    worst_mape: mape,
                    brownout_rate: brownout,
                    utilization,
                    mean_duty: outcome.report.mean_duty,
                });
            }
            rank(&mut entries);
            per_scenario.push(ScenarioRanking {
                scenario: scenario.name.clone(),
                entries,
            });
        }

        // Overall table: aggregate each combo across scenarios.
        let mut overall = Vec::new();
        for (predictor_idx, predictor) in matrix.predictors.iter().enumerate() {
            for (manager_idx, manager) in matrix.managers.iter().enumerate() {
                let combo: Vec<&&JobOutcome> = sorted
                    .iter()
                    .filter(|o| {
                        o.spec.predictor_idx == predictor_idx && o.spec.manager_idx == manager_idx
                    })
                    .collect();
                if combo.is_empty() {
                    continue;
                }
                let aggregate = SummaryAggregate::of(combo.iter().map(|o| &o.summary));
                let runs = combo.len() as f64;
                let brownout = combo.iter().map(|o| o.report.brownout_rate()).sum::<f64>() / runs;
                let utilization = combo.iter().map(|o| o.report.utilization).sum::<f64>() / runs;
                let mean_duty = combo.iter().map(|o| o.report.mean_duty).sum::<f64>() / runs;
                overall.push(ScoreEntry {
                    rank: 0,
                    predictor: predictor.label(),
                    manager: manager.label(),
                    score: service_score(brownout, utilization, aggregate.mean_mape),
                    predictions: aggregate.predictions,
                    peak_candidates: combo
                        .iter()
                        .map(|o| o.cost.peak_candidates)
                        .max()
                        .unwrap_or(0),
                    mape: aggregate.mean_mape,
                    worst_mape: aggregate.worst_mape,
                    brownout_rate: brownout,
                    utilization,
                    mean_duty,
                });
            }
        }
        rank(&mut overall);

        Scorecard {
            master_seed,
            per_scenario,
            overall,
            cost: CostAggregate::of(sorted.iter().map(|o| o.cost)),
        }
    }

    /// The best overall combo.
    pub fn winner(&self) -> Option<&ScoreEntry> {
        self.overall.first()
    }

    /// JSON form (deterministic; see module docs).
    ///
    /// `master_seed` is carried as a decimal *string*: JSON numbers are
    /// doubles, which would silently corrupt seeds ≥ 2⁵³ — the one
    /// field whose whole purpose is exact replay.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("master_seed", Json::Str(self.master_seed.to_string())),
            (
                "per_scenario",
                Json::Arr(
                    self.per_scenario
                        .iter()
                        .map(|ranking| {
                            Json::obj([
                                ("scenario", Json::Str(ranking.scenario.clone())),
                                (
                                    "entries",
                                    Json::Arr(
                                        ranking.entries.iter().map(ScoreEntry::to_json).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "overall",
                Json::Arr(self.overall.iter().map(ScoreEntry::to_json).collect()),
            ),
        ])
    }

    /// Pretty-printed deterministic JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().render_pretty()
    }

    /// A plain-text ranking table for terminals.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<4}{:<51}{:<22}{:>8}{:>9}{:>11}{:>8}{:>8}{:>7}",
            "#", "predictor", "manager", "score", "MAPE%", "brownout%", "util%", "duty", "cand"
        );
        for entry in &self.overall {
            let mape = if entry.predictions == 0 {
                "--".to_string()
            } else {
                format!("{:.2}", entry.mape * 100.0)
            };
            let _ = writeln!(
                out,
                "{:<4}{:<51}{:<22}{:>8.3}{:>9}{:>11.2}{:>8.1}{:>8.3}{:>7}",
                entry.rank,
                entry.predictor,
                entry.manager,
                entry.score,
                mape,
                entry.brownout_rate * 100.0,
                entry.utilization * 100.0,
                entry.mean_duty,
                entry.peak_candidates,
            );
        }
        let _ = writeln!(out, "evaluation cost (incl. cached work): {}", self.cost);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::engine::FleetEngine;
    use crate::matrix::{FleetMatrix, ManagerSpec, PredictorSpec};

    fn run() -> (FleetMatrix, Scorecard) {
        let matrix = FleetMatrix::new(
            vec![
                PredictorSpec::Wcma {
                    alpha: 0.7,
                    days: 10,
                    k: 2,
                },
                PredictorSpec::Persistence,
            ],
            vec![
                ManagerSpec::EnergyNeutral {
                    target_soc: 0.5,
                    gain: 0.25,
                },
                ManagerSpec::Greedy,
            ],
            vec![
                Catalog::builtin().get("desert-clear-sky").unwrap().clone(),
                Catalog::builtin().get("marine-fog").unwrap().clone(),
            ],
        )
        .unwrap();
        let scorecard = FleetEngine::new(11).run(&matrix).unwrap().scorecard;
        (matrix, scorecard)
    }

    #[test]
    fn ranks_are_dense_and_sorted() {
        let (_, scorecard) = run();
        assert_eq!(scorecard.overall.len(), 4);
        for (index, entry) in scorecard.overall.iter().enumerate() {
            assert_eq!(entry.rank, index + 1);
            if index > 0 {
                assert!(entry.score >= scorecard.overall[index - 1].score);
            }
        }
        for ranking in &scorecard.per_scenario {
            assert_eq!(ranking.entries.len(), 4);
            assert_eq!(ranking.entries[0].rank, 1);
        }
    }

    #[test]
    fn managed_wcma_beats_greedy_overall() {
        let (_, scorecard) = run();
        let winner = scorecard.winner().unwrap();
        assert!(
            winner.manager.starts_with("neutral"),
            "expected a managed policy to win, got {winner:?}"
        );
    }

    #[test]
    fn json_is_deterministic_and_parseable() {
        let (_, a) = run();
        let (_, b) = run();
        let ja = a.to_json_string();
        let jb = b.to_json_string();
        assert_eq!(ja, jb);
        let parsed = crate::json::Json::parse(&ja).unwrap();
        assert_eq!(parsed.req_str("master_seed").unwrap(), "11");
        assert_eq!(parsed.req("overall").unwrap().as_arr().unwrap().len(), 4);
        assert!(!a.render_text().is_empty());
    }

    #[test]
    fn cost_shows_in_text_but_wall_time_never_reaches_json() {
        let (_, scorecard) = run();
        assert_eq!(scorecard.cost.jobs, scorecard.overall.len() * 2);
        assert!(scorecard.cost.total_wall_nanos > 0);
        assert!(scorecard.render_text().contains("evaluation cost"));
        let json = scorecard.to_json_string();
        assert!(!json.contains("wall"), "wall time is non-deterministic");
        // Candidate counts are deterministic and do reach JSON.
        assert!(json.contains("\"peak_candidates\""));
    }

    #[test]
    fn huge_seeds_survive_json_exactly() {
        // Above 2^53: a float field would silently round this.
        let seed = u64::MAX - 1;
        let (matrix, _) = run();
        let result = FleetEngine::new(seed).run(&matrix).unwrap();
        let text = result.scorecard.to_json_string();
        let parsed = crate::json::Json::parse(&text).unwrap();
        assert_eq!(
            parsed
                .req_str("master_seed")
                .unwrap()
                .parse::<u64>()
                .unwrap(),
            seed
        );
    }
}
