//! Correlated fleet-wide fault events with spatial falloff.
//!
//! The per-scenario [`FaultSpec`](crate::FaultSpec) machinery draws each
//! scenario's faults from that scenario's own seed, so two scenarios
//! never fail *together* — yet the deployments that motivate fleet
//! evaluation (Basha et al.'s multi-node networks) fail together all the
//! time: one regional storm darkens every node in the region on the same
//! days, one pollen season soils every panel at once.
//!
//! A [`FleetFault`] is an event declared on the **matrix**, realized
//! from **one shared event seed**, and projected into each affected
//! scenario's fault list as plain [`FaultSpec`]s before the engine runs.
//! Correlation therefore costs nothing downstream: caching, streaming,
//! sharding, and byte-determinism all see ordinary scenarios whose JSON
//! (and hence cache identity) already carries the projected faults.
//!
//! # Spatial falloff
//!
//! Every event carries a [`SpatialFalloff`] region: an epicenter
//! latitude, a geodesic radius, and a [`FalloffProfile`] describing how
//! severity decays with distance. Sites in this workspace carry latitude
//! only, so the geodesic distance between a site and the epicenter
//! reduces to the meridian arc `|Δlat| · 111.195 km`. Severity is
//! monotonically non-increasing in distance and exactly zero beyond the
//! radius (pinned by tests); the legacy hard latitude band is the
//! special case [`SpatialFalloff::band`] — a [`FalloffProfile::Flat`]
//! profile whose radius spans half the band — and a flat profile with an
//! effectively infinite radius ([`SpatialFalloff::global`]) reproduces
//! the old fleet-wide projection.

use crate::catalog::Scenario;
use crate::faults::FaultSpec;
use crate::json::Json;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How an event's severity decays with geodesic distance from its
/// epicenter (inside the radius; beyond it severity is exactly zero).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FalloffProfile {
    /// Full severity everywhere inside the radius — the hard-edged
    /// legacy latitude band expressed in the falloff model.
    Flat,
    /// Severity decays linearly from the epicenter to zero at the
    /// radius.
    Linear,
    /// A raised-cosine taper: near-full severity close to the
    /// epicenter, smooth zero at the radius.
    Cosine,
}

impl FalloffProfile {
    /// All profiles.
    pub const ALL: [FalloffProfile; 3] = [
        FalloffProfile::Flat,
        FalloffProfile::Linear,
        FalloffProfile::Cosine,
    ];

    /// Stable identifier used in JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            FalloffProfile::Flat => "flat",
            FalloffProfile::Linear => "linear",
            FalloffProfile::Cosine => "cosine",
        }
    }

    /// Parses the JSON identifier.
    pub fn from_code(s: &str) -> Result<FalloffProfile, String> {
        FalloffProfile::ALL
            .into_iter()
            .find(|p| p.as_str() == s)
            .ok_or_else(|| format!("unknown falloff profile {s:?}"))
    }

    /// Weight at normalized distance `frac = d / radius` in `[0, 1]`.
    fn weight_at(self, frac: f64) -> f64 {
        match self {
            FalloffProfile::Flat => 1.0,
            FalloffProfile::Linear => 1.0 - frac,
            FalloffProfile::Cosine => 0.5 * (1.0 + (std::f64::consts::PI * frac).cos()),
        }
    }
}

/// Where an event sits and how far it reaches: epicenter latitude,
/// geodesic radius, and a severity falloff profile.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SpatialFalloff {
    /// Epicenter latitude in degrees (north positive), within ±90.
    pub epicenter_latitude_deg: f64,
    /// Geodesic reach in kilometres (severity is zero beyond it).
    pub radius_km: f64,
    /// How severity decays between the epicenter and the radius.
    pub profile: FalloffProfile,
}

impl SpatialFalloff {
    /// Mean meridian arc length of one degree of latitude.
    pub const KM_PER_LATITUDE_DEGREE: f64 = 111.195;

    /// A radius covering every latitude pair on the globe (strictly
    /// above the 180° pole-to-pole arc).
    pub const GLOBAL_RADIUS_KM: f64 = 181.0 * Self::KM_PER_LATITUDE_DEGREE;

    /// A region from explicit parts.
    pub fn new(epicenter_latitude_deg: f64, radius_km: f64, profile: FalloffProfile) -> Self {
        SpatialFalloff {
            epicenter_latitude_deg,
            radius_km,
            profile,
        }
    }

    /// The legacy hard latitude band `[min, max]` expressed in the
    /// falloff model: a flat profile centred on the band with a radius
    /// spanning half of it. Projection is identical to the pre-falloff
    /// band (full severity inside, zero outside, edges inclusive).
    ///
    /// The radius derives from the *rounded* epicenter (not
    /// `(max − min) / 2` directly), so a site at exactly `min` or `max`
    /// computes a distance ≤ radius even when the midpoint is not
    /// representable — rounding monotonicity keeps every in-band
    /// latitude inside. A degenerate band (`min == max`) keeps its
    /// legacy meaning of covering exactly that latitude via a minimal
    /// positive radius.
    ///
    /// This constructor is **order-insensitive**: the covered band is
    /// the one between the two edges whichever way they are passed
    /// (the half-span takes the larger edge deviation). The legacy
    /// *JSON* path deliberately stays stricter — inverted
    /// `min`/`max_latitude_deg` documents were a parse error and still
    /// are (see [`FleetFault::from_json`]).
    pub fn band(min_latitude_deg: f64, max_latitude_deg: f64) -> Self {
        let epicenter_latitude_deg = (min_latitude_deg + max_latitude_deg) / 2.0;
        let half_span_deg = (max_latitude_deg - epicenter_latitude_deg)
            .abs()
            .max((min_latitude_deg - epicenter_latitude_deg).abs());
        SpatialFalloff {
            epicenter_latitude_deg,
            radius_km: (half_span_deg * Self::KM_PER_LATITUDE_DEGREE).max(f64::MIN_POSITIVE),
            profile: FalloffProfile::Flat,
        }
    }

    /// Full severity at every latitude — the legacy fleet-wide event.
    pub fn global() -> Self {
        SpatialFalloff::new(0.0, Self::GLOBAL_RADIUS_KM, FalloffProfile::Flat)
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.epicenter_latitude_deg.is_finite() && self.epicenter_latitude_deg.abs() <= 90.0) {
            return Err(format!(
                "epicenter latitude {} must be finite and within ±90°",
                self.epicenter_latitude_deg
            ));
        }
        if !(self.radius_km.is_finite() && self.radius_km > 0.0) {
            return Err(format!(
                "falloff radius {} km must be finite and positive",
                self.radius_km
            ));
        }
        Ok(())
    }

    /// Meridian geodesic distance from the epicenter to a site
    /// latitude.
    pub fn distance_km(&self, latitude_deg: f64) -> f64 {
        (latitude_deg - self.epicenter_latitude_deg).abs() * Self::KM_PER_LATITUDE_DEGREE
    }

    /// Severity weight in `[0, 1]` at a site latitude: the profile's
    /// taper inside the radius, exactly zero beyond it. Monotonically
    /// non-increasing in distance for every profile (pinned by tests).
    pub fn weight(&self, latitude_deg: f64) -> f64 {
        let distance = self.distance_km(latitude_deg);
        if distance > self.radius_km {
            return 0.0;
        }
        self.profile.weight_at(distance / self.radius_km).max(0.0)
    }

    /// JSON form (`{"epicenter_latitude_deg": ..., "radius_km": ...,
    /// "falloff": ...}`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "epicenter_latitude_deg",
                Json::Num(self.epicenter_latitude_deg),
            ),
            ("radius_km", Json::Num(self.radius_km)),
            ("falloff", Json::Str(self.profile.as_str().into())),
        ])
    }

    /// Parses and validates the JSON form.
    pub fn from_json(value: &Json) -> Result<SpatialFalloff, String> {
        let region = SpatialFalloff {
            epicenter_latitude_deg: value.req_num("epicenter_latitude_deg")?,
            radius_km: value.req_num("radius_km")?,
            profile: FalloffProfile::from_code(value.req_str("falloff")?)?,
        };
        region.validate()?;
        Ok(region)
    }
}

/// One correlated fleet-wide event.
#[derive(Clone, Debug, PartialEq)]
pub enum FleetFault {
    /// A synoptic storm system: every scenario inside the storm's
    /// [`SpatialFalloff`] region gets a [`FaultSpec::ClimateDimming`]
    /// span with the *same* onset (drawn once from the shared event
    /// seed) and a depth graded by distance from the epicenter.
    RegionalStorm {
        /// Earliest possible onset day (0-based).
        window_start_day: usize,
        /// Latest possible onset day (exclusive).
        window_end_day: usize,
        /// Storm length in days.
        duration_days: usize,
        /// Fraction of light removed at the epicenter (in `(0, 1)`);
        /// scenarios farther out get `depth · weight`.
        depth: f64,
        /// Where the storm sits and how severity decays with distance.
        region: SpatialFalloff,
    },
    /// A soiling season (dust/pollen): every scenario inside the plume
    /// gets a [`FaultSpec::PanelSoiling`] ramp with the same onset and
    /// a peak loss graded by distance from the source.
    SeasonalSoiling {
        /// Earliest possible onset day (0-based).
        window_start_day: usize,
        /// Latest possible onset day (exclusive).
        window_end_day: usize,
        /// Days over which the loss ramps to its peak.
        duration_days: usize,
        /// Peak harvest fraction lost at the epicenter, in `(0, 1]`;
        /// scenarios farther out get `max_loss · weight`.
        max_loss: f64,
        /// Where the plume sits ([`SpatialFalloff::global`] keeps the
        /// legacy fleet-wide behaviour).
        region: SpatialFalloff,
    },
}

impl FleetFault {
    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            FleetFault::RegionalStorm {
                window_start_day,
                window_end_day,
                duration_days,
                depth,
                ref region,
            } => {
                if window_end_day <= window_start_day {
                    return Err("regional_storm onset window must be non-empty".to_string());
                }
                if duration_days == 0 {
                    return Err("regional_storm duration_days must be at least 1".to_string());
                }
                if !(depth.is_finite() && 0.0 < depth && depth < 1.0) {
                    return Err(format!("regional_storm depth {depth} must be in (0, 1)"));
                }
                region
                    .validate()
                    .map_err(|e| format!("regional_storm: {e}"))?;
            }
            FleetFault::SeasonalSoiling {
                window_start_day,
                window_end_day,
                duration_days,
                max_loss,
                ref region,
            } => {
                if window_end_day <= window_start_day {
                    return Err("seasonal_soiling onset window must be non-empty".to_string());
                }
                if duration_days == 0 {
                    return Err("seasonal_soiling duration_days must be at least 1".to_string());
                }
                if !(max_loss.is_finite() && 0.0 < max_loss && max_loss <= 1.0) {
                    return Err(format!(
                        "seasonal_soiling max_loss {max_loss} must be in (0, 1]"
                    ));
                }
                region
                    .validate()
                    .map_err(|e| format!("seasonal_soiling: {e}"))?;
            }
        }
        Ok(())
    }

    /// The event's spatial region.
    pub fn region(&self) -> &SpatialFalloff {
        match self {
            FleetFault::RegionalStorm { region, .. }
            | FleetFault::SeasonalSoiling { region, .. } => region,
        }
    }

    /// The event's realized onset day for a given shared event seed —
    /// one draw per event, identical for every scenario it touches.
    pub fn onset_day(&self, event_seed: u64) -> usize {
        let (start, end) = match *self {
            FleetFault::RegionalStorm {
                window_start_day,
                window_end_day,
                ..
            }
            | FleetFault::SeasonalSoiling {
                window_start_day,
                window_end_day,
                ..
            } => (window_start_day, window_end_day),
        };
        let mut rng = ChaCha8Rng::seed_from_u64(event_seed);
        start + (rng.gen::<f64>() * (end - start) as f64) as usize
    }

    /// The event's severity at a site latitude: dimming depth for
    /// storms, peak soiling loss for soiling, each scaled by the
    /// region's distance weight — monotonically non-increasing in
    /// distance from the epicenter and zero beyond the radius.
    pub fn severity_at(&self, latitude_deg: f64) -> f64 {
        match *self {
            FleetFault::RegionalStorm {
                depth, ref region, ..
            } => depth * region.weight(latitude_deg),
            FleetFault::SeasonalSoiling {
                max_loss,
                ref region,
                ..
            } => max_loss * region.weight(latitude_deg),
        }
    }

    /// Whether the event touches `scenario` at all (nonzero severity at
    /// the scenario's latitude).
    pub fn affects(&self, scenario: &Scenario) -> Result<bool, String> {
        let latitude = scenario.site_config()?.latitude_deg;
        Ok(self.severity_at(latitude) > 0.0)
    }

    /// Projects the realized event into `scenario`'s fault list: the
    /// [`FaultSpec`]s to append — severity graded by the scenario's
    /// distance from the epicenter — or empty when the scenario sits
    /// beyond the radius or the onset falls past its horizon.
    ///
    /// # Errors
    ///
    /// Propagates site-configuration errors from the latitude lookup.
    pub fn project(&self, event_seed: u64, scenario: &Scenario) -> Result<Vec<FaultSpec>, String> {
        let latitude = scenario.site_config()?.latitude_deg;
        let weight = self.region().weight(latitude);
        if weight <= 0.0 {
            return Ok(Vec::new());
        }
        let onset = self.onset_day(event_seed);
        if onset >= scenario.days {
            return Ok(Vec::new());
        }
        Ok(match *self {
            FleetFault::RegionalStorm {
                duration_days,
                depth,
                ..
            } => vec![FaultSpec::ClimateDimming {
                start_day: onset,
                duration_days,
                factor: 1.0 - depth * weight,
            }],
            FleetFault::SeasonalSoiling {
                duration_days,
                max_loss,
                ..
            } => vec![FaultSpec::PanelSoiling {
                start_day: onset,
                duration_days,
                max_loss: max_loss * weight,
            }],
        })
    }

    /// JSON form (`{"kind": ..., "region": {...}, ...}`).
    pub fn to_json(&self) -> Json {
        match *self {
            FleetFault::RegionalStorm {
                window_start_day,
                window_end_day,
                duration_days,
                depth,
                ref region,
            } => Json::obj([
                ("kind", Json::Str("regional_storm".into())),
                ("window_start_day", Json::Num(window_start_day as f64)),
                ("window_end_day", Json::Num(window_end_day as f64)),
                ("duration_days", Json::Num(duration_days as f64)),
                ("depth", Json::Num(depth)),
                ("region", region.to_json()),
            ]),
            FleetFault::SeasonalSoiling {
                window_start_day,
                window_end_day,
                duration_days,
                max_loss,
                ref region,
            } => Json::obj([
                ("kind", Json::Str("seasonal_soiling".into())),
                ("window_start_day", Json::Num(window_start_day as f64)),
                ("window_end_day", Json::Num(window_end_day as f64)),
                ("duration_days", Json::Num(duration_days as f64)),
                ("max_loss", Json::Num(max_loss)),
                ("region", region.to_json()),
            ]),
        }
    }

    /// Parses and validates the JSON form. Legacy documents are
    /// accepted: a storm carrying `min_latitude_deg`/`max_latitude_deg`
    /// instead of a `region` parses as the equivalent flat band, and a
    /// soiling event with no `region` parses as fleet-wide.
    pub fn from_json(value: &Json) -> Result<FleetFault, String> {
        let region_of = |value: &Json,
                         kind: &str,
                         fleet_wide_default: bool|
         -> Result<SpatialFalloff, String> {
            if let Some(region) = value.get("region") {
                return SpatialFalloff::from_json(region);
            }
            if value.get("min_latitude_deg").is_some() {
                let min = value.req_num("min_latitude_deg")?;
                let max = value.req_num("max_latitude_deg")?;
                // Preserve the legacy band's own validation:
                // inverted bands were rejected, not normalized.
                if !(min.is_finite() && max.is_finite() && min <= max) {
                    return Err(format!("{kind} latitude band is inverted"));
                }
                // Legacy bands had unbounded edges ("everything
                // north of 50°" written as max = 999). Sites live
                // within ±85°, so clamping the edges into ±90
                // keeps membership identical while the converted
                // epicenter stays in validation range.
                return Ok(SpatialFalloff::band(
                    min.clamp(-90.0, 90.0),
                    max.clamp(-90.0, 90.0),
                ));
            }
            if fleet_wide_default {
                Ok(SpatialFalloff::global())
            } else {
                Err(format!("{kind} needs a region (or a legacy latitude band)"))
            }
        };
        let fault = match value.req_str("kind")? {
            "regional_storm" => FleetFault::RegionalStorm {
                window_start_day: value.req_index("window_start_day")? as usize,
                window_end_day: value.req_index("window_end_day")? as usize,
                duration_days: value.req_index("duration_days")? as usize,
                depth: value.req_num("depth")?,
                region: region_of(value, "regional_storm", false)?,
            },
            "seasonal_soiling" => FleetFault::SeasonalSoiling {
                window_start_day: value.req_index("window_start_day")? as usize,
                window_end_day: value.req_index("window_end_day")? as usize,
                duration_days: value.req_index("duration_days")? as usize,
                max_loss: value.req_num("max_loss")?,
                region: region_of(value, "seasonal_soiling", true)?,
            },
            other => return Err(format!("unknown fleet fault kind {other:?}")),
        };
        fault.validate()?;
        Ok(fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    fn storm() -> FleetFault {
        FleetFault::RegionalStorm {
            window_start_day: 22,
            window_end_day: 34,
            duration_days: 4,
            depth: 0.7,
            region: SpatialFalloff::band(30.0, 50.0),
        }
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let mut bad = storm();
        if let FleetFault::RegionalStorm { window_end_day, .. } = &mut bad {
            *window_end_day = 10;
        }
        assert!(bad.validate().is_err());
        let mut bad = storm();
        if let FleetFault::RegionalStorm { region, .. } = &mut bad {
            region.radius_km = 0.0;
        }
        assert!(bad.validate().is_err());
        let mut bad = storm();
        if let FleetFault::RegionalStorm { region, .. } = &mut bad {
            region.epicenter_latitude_deg = 95.0;
        }
        assert!(bad.validate().is_err());
        assert!(FleetFault::SeasonalSoiling {
            window_start_day: 0,
            window_end_day: 10,
            duration_days: 0,
            max_loss: 0.5,
            region: SpatialFalloff::global(),
        }
        .validate()
        .is_err());
        assert!(FleetFault::SeasonalSoiling {
            window_start_day: 0,
            window_end_day: 10,
            duration_days: 5,
            max_loss: 1.5,
            region: SpatialFalloff::global(),
        }
        .validate()
        .is_err());
    }

    #[test]
    fn severity_is_monotone_in_distance_and_zero_beyond_radius() {
        for profile in FalloffProfile::ALL {
            let region = SpatialFalloff::new(40.0, 2000.0, profile);
            region.validate().unwrap();
            // Weight at the epicenter is full for every profile.
            assert!((region.weight(40.0) - 1.0).abs() < 1e-12, "{profile:?}");
            // Monotonically non-increasing while walking away.
            let mut previous = f64::INFINITY;
            for step in 0..200 {
                let latitude = 40.0 + step as f64 * 0.25;
                let weight = region.weight(latitude);
                assert!((0.0..=1.0).contains(&weight));
                assert!(
                    weight <= previous + 1e-12,
                    "{profile:?}: weight rose at {latitude}"
                );
                previous = weight;
            }
            // Exactly zero strictly beyond the radius (2000 km ≈ 18°).
            assert_eq!(region.weight(40.0 + 18.1), 0.0, "{profile:?}");
            assert_eq!(region.weight(40.0 - 18.1), 0.0, "{profile:?}");
            // Symmetric north/south of the epicenter.
            assert_eq!(region.weight(45.0), region.weight(35.0), "{profile:?}");
        }
    }

    #[test]
    fn legacy_band_parsing_keeps_the_old_acceptance_rules() {
        let legacy = |min: f64, max: f64| {
            Json::obj([
                ("kind", Json::Str("regional_storm".into())),
                ("window_start_day", Json::Num(21.0)),
                ("window_end_day", Json::Num(35.0)),
                ("duration_days", Json::Num(6.0)),
                ("depth", Json::Num(0.75)),
                ("min_latitude_deg", Json::Num(min)),
                ("max_latitude_deg", Json::Num(max)),
            ])
        };
        // Inverted bands were a legacy parse error — they still are.
        assert!(FleetFault::from_json(&legacy(52.0, 30.0)).is_err());
        // Unbounded edges were legal ("everything north of 50°"): the
        // conversion clamps them into range, membership unchanged for
        // every real site latitude (±85°).
        let north = FleetFault::from_json(&legacy(50.0, 999.0)).unwrap();
        assert_eq!(north.severity_at(70.0), 0.75);
        assert_eq!(north.severity_at(85.0), 0.75);
        assert_eq!(north.severity_at(49.0), 0.0);
        // A band entirely past the pole matched nothing, and still does.
        let beyond = FleetFault::from_json(&legacy(91.0, 999.0)).unwrap();
        for latitude in [-85.0, 0.0, 49.0, 85.0] {
            assert_eq!(beyond.severity_at(latitude), 0.0);
        }
    }

    #[test]
    fn band_edges_stay_inclusive_despite_midpoint_rounding() {
        // (30.1 + 52.3) / 2 rounds up to 41.200000000000003; a radius
        // computed from (max − min) / 2 instead of the rounded
        // epicenter would exclude a site at exactly 30.1°. The legacy
        // band was edge-inclusive, so the falloff form must be too.
        let region = SpatialFalloff::band(30.1, 52.3);
        region.validate().unwrap();
        assert_eq!(region.weight(30.1), 1.0);
        assert_eq!(region.weight(52.3), 1.0);
        assert_eq!(region.weight(41.2), 1.0);
        assert_eq!(region.weight(29.9), 0.0);
        assert_eq!(region.weight(52.5), 0.0);
    }

    #[test]
    fn degenerate_legacy_band_still_covers_exactly_its_latitude() {
        // The old validation allowed min == max (a single-latitude
        // band); the falloff form keeps that meaning instead of
        // rejecting a zero radius.
        let region = SpatialFalloff::band(40.0, 40.0);
        region.validate().unwrap();
        assert_eq!(region.weight(40.0), 1.0);
        assert_eq!(region.weight(40.1), 0.0);
        assert_eq!(region.weight(39.9), 0.0);
        // And the legacy JSON document round-trips through parsing.
        let legacy = Json::obj([
            ("kind", Json::Str("regional_storm".into())),
            ("window_start_day", Json::Num(21.0)),
            ("window_end_day", Json::Num(35.0)),
            ("duration_days", Json::Num(6.0)),
            ("depth", Json::Num(0.75)),
            ("min_latitude_deg", Json::Num(40.0)),
            ("max_latitude_deg", Json::Num(40.0)),
        ]);
        let parsed = FleetFault::from_json(&legacy).unwrap();
        assert_eq!(parsed.severity_at(40.0), 0.75);
        assert_eq!(parsed.severity_at(40.5), 0.0);
    }

    #[test]
    fn flat_band_reproduces_the_legacy_latitude_band_projection() {
        // Regression pin: the pre-falloff RegionalStorm applied full
        // depth to every scenario whose latitude sat inside
        // [30°, 52°] (edges inclusive) and nothing elsewhere. The
        // flat-profile band must project identically on the builtin
        // catalog.
        let fault = FleetFault::RegionalStorm {
            window_start_day: 21,
            window_end_day: 35,
            duration_days: 6,
            depth: 0.75,
            region: SpatialFalloff::band(30.0, 52.0),
        };
        for scenario in Catalog::builtin().scenarios() {
            let latitude = scenario.site_config().unwrap().latitude_deg;
            let in_band = (30.0..=52.0).contains(&latitude);
            let projected = fault.project(99, scenario).unwrap();
            if !in_band {
                assert!(projected.is_empty(), "{}", scenario.name);
                continue;
            }
            assert_eq!(projected.len(), 1, "{}", scenario.name);
            match projected[0] {
                FaultSpec::ClimateDimming {
                    duration_days,
                    factor,
                    ..
                } => {
                    assert_eq!(duration_days, 6);
                    // Full depth, bit-exactly: 1.0 - 0.75 * 1.0.
                    assert_eq!(factor, 1.0 - 0.75, "{}", scenario.name);
                }
                ref other => panic!("unexpected projection {other:?}"),
            }
        }
        // Radius → ∞ with flat weighting: every scenario is hit at full
        // severity — the legacy whole-globe band.
        let global = FleetFault::RegionalStorm {
            window_start_day: 21,
            window_end_day: 35,
            duration_days: 6,
            depth: 0.75,
            region: SpatialFalloff::global(),
        };
        for scenario in Catalog::builtin().scenarios() {
            let projected = global.project(99, scenario).unwrap();
            assert_eq!(projected.len(), 1, "{}", scenario.name);
        }
    }

    #[test]
    fn graded_profiles_project_distance_weighted_severity() {
        let fault = FleetFault::RegionalStorm {
            window_start_day: 22,
            window_end_day: 30,
            duration_days: 4,
            depth: 0.8,
            region: SpatialFalloff::new(45.0, 2500.0, FalloffProfile::Cosine),
        };
        let catalog = Catalog::builtin();
        let near = catalog.get("four-seasons").unwrap(); // 45°N
        let far = catalog.get("desert-clear-sky").unwrap(); // 33.45°N
        let factor = |scenario| match fault.project(7, scenario).unwrap()[..] {
            [FaultSpec::ClimateDimming { factor, .. }] => factor,
            ref other => panic!("unexpected {other:?}"),
        };
        let near_factor = factor(near);
        let far_factor = factor(far);
        // The epicentral scenario is dimmed at full depth; the distant
        // one is dimmed strictly less (higher remaining-light factor).
        assert!((near_factor - 0.2).abs() < 1e-12, "{near_factor}");
        assert!(
            far_factor > near_factor && far_factor < 1.0,
            "graded: {far_factor} vs {near_factor}"
        );
        // Severity matches the weight math exactly.
        assert!(
            (fault.severity_at(33.45) - (1.0 - far_factor)).abs() < 1e-12,
            "severity_at must agree with the projection"
        );
    }

    #[test]
    fn json_round_trips_both_kinds_and_accepts_legacy_bands() {
        let soiling = FleetFault::SeasonalSoiling {
            window_start_day: 20,
            window_end_day: 30,
            duration_days: 15,
            max_loss: 0.3,
            region: SpatialFalloff::new(28.0, 5500.0, FalloffProfile::Linear),
        };
        for fault in [storm(), soiling] {
            let text = fault.to_json().render_pretty();
            let back = FleetFault::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, fault);
            // Byte-exact round trip of the rendered form.
            assert_eq!(back.to_json().render_pretty(), text);
        }
        assert!(
            FleetFault::from_json(&Json::obj([("kind", Json::Str("locusts".into()))])).is_err()
        );
        // Legacy storm document: a latitude band, no region object.
        let legacy = Json::obj([
            ("kind", Json::Str("regional_storm".into())),
            ("window_start_day", Json::Num(21.0)),
            ("window_end_day", Json::Num(35.0)),
            ("duration_days", Json::Num(6.0)),
            ("depth", Json::Num(0.75)),
            ("min_latitude_deg", Json::Num(30.0)),
            ("max_latitude_deg", Json::Num(52.0)),
        ]);
        let parsed = FleetFault::from_json(&legacy).unwrap();
        assert_eq!(*parsed.region(), SpatialFalloff::band(30.0, 52.0));
        // Legacy soiling document: no region at all ⇒ fleet-wide.
        let legacy_soiling = Json::obj([
            ("kind", Json::Str("seasonal_soiling".into())),
            ("window_start_day", Json::Num(25.0)),
            ("window_end_day", Json::Num(32.0)),
            ("duration_days", Json::Num(10.0)),
            ("max_loss", Json::Num(0.3)),
        ]);
        let parsed = FleetFault::from_json(&legacy_soiling).unwrap();
        assert_eq!(*parsed.region(), SpatialFalloff::global());
        // A storm with neither a region nor a band is rejected.
        let bare = Json::obj([
            ("kind", Json::Str("regional_storm".into())),
            ("window_start_day", Json::Num(21.0)),
            ("window_end_day", Json::Num(35.0)),
            ("duration_days", Json::Num(6.0)),
            ("depth", Json::Num(0.75)),
        ]);
        assert!(FleetFault::from_json(&bare).is_err());
    }

    #[test]
    fn one_event_seed_hits_every_affected_scenario_on_the_same_days() {
        let catalog = Catalog::builtin();
        let fault = storm();
        let desert = catalog.get("desert-clear-sky").unwrap(); // 33.4°N
        let fourseasons = catalog.get("four-seasons").unwrap(); // 45°N
        let a = fault.project(99, desert).unwrap();
        let b = fault.project(99, fourseasons).unwrap();
        assert_eq!(a, b, "correlated flat-band event must project identically");
        assert_eq!(a.len(), 1);
        // A southern-hemisphere site is outside the region.
        let southern = catalog.get("southern-four-seasons").unwrap();
        assert!(fault.project(99, southern).unwrap().is_empty());
        // Different event seeds move the onset.
        let onsets: std::collections::BTreeSet<usize> =
            (0..40).map(|seed| fault.onset_day(seed)).collect();
        assert!(onsets.len() > 1, "onset must depend on the event seed");
    }

    #[test]
    fn onset_past_the_horizon_projects_nothing() {
        let mut catalog_entry = Catalog::builtin().get("desert-clear-sky").unwrap().clone();
        catalog_entry.days = 25;
        let fault = FleetFault::RegionalStorm {
            window_start_day: 30,
            window_end_day: 31,
            duration_days: 2,
            depth: 0.5,
            region: SpatialFalloff::global(),
        };
        assert!(fault.project(1, &catalog_entry).unwrap().is_empty());
    }
}
