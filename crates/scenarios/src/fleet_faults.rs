//! Correlated fleet-wide fault events.
//!
//! The per-scenario [`FaultSpec`](crate::FaultSpec) machinery draws each
//! scenario's faults from that scenario's own seed, so two scenarios
//! never fail *together* — yet the deployments that motivate fleet
//! evaluation (Basha et al.'s multi-node networks) fail together all the
//! time: one regional storm darkens every node in the region on the same
//! days, one pollen season soils every panel at once.
//!
//! A [`FleetFault`] is an event declared on the **matrix**, realized
//! from **one shared event seed**, and projected into each affected
//! scenario's fault list as plain [`FaultSpec`]s before the engine runs.
//! Correlation therefore costs nothing downstream: caching, streaming,
//! sharding, and byte-determinism all see ordinary scenarios whose JSON
//! (and hence cache identity) already carries the projected faults.

use crate::catalog::Scenario;
use crate::faults::FaultSpec;
use crate::json::Json;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One correlated fleet-wide event.
#[derive(Clone, Debug, PartialEq)]
pub enum FleetFault {
    /// A synoptic storm system: every scenario whose site latitude lies
    /// in `[min_latitude_deg, max_latitude_deg]` gets the *same*
    /// [`FaultSpec::ClimateDimming`] span — onset drawn once from the
    /// shared event seed inside the onset window.
    RegionalStorm {
        /// Earliest possible onset day (0-based).
        window_start_day: usize,
        /// Latest possible onset day (exclusive).
        window_end_day: usize,
        /// Storm length in days.
        duration_days: usize,
        /// Fraction of light removed while the storm sits (in `(0, 1)`).
        depth: f64,
        /// Southern edge of the affected band (degrees, north positive).
        min_latitude_deg: f64,
        /// Northern edge of the affected band.
        max_latitude_deg: f64,
    },
    /// A fleet-wide soiling season (dust/pollen): every scenario gets
    /// the same [`FaultSpec::PanelSoiling`] ramp, onset drawn once from
    /// the shared event seed inside the onset window.
    SeasonalSoiling {
        /// Earliest possible onset day (0-based).
        window_start_day: usize,
        /// Latest possible onset day (exclusive).
        window_end_day: usize,
        /// Days over which the loss ramps to `max_loss`.
        duration_days: usize,
        /// Peak harvest fraction lost, in `(0, 1]`.
        max_loss: f64,
    },
}

impl FleetFault {
    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            FleetFault::RegionalStorm {
                window_start_day,
                window_end_day,
                duration_days,
                depth,
                min_latitude_deg,
                max_latitude_deg,
            } => {
                if window_end_day <= window_start_day {
                    return Err("regional_storm onset window must be non-empty".to_string());
                }
                if duration_days == 0 {
                    return Err("regional_storm duration_days must be at least 1".to_string());
                }
                if !(depth.is_finite() && 0.0 < depth && depth < 1.0) {
                    return Err(format!("regional_storm depth {depth} must be in (0, 1)"));
                }
                if !(min_latitude_deg.is_finite()
                    && max_latitude_deg.is_finite()
                    && min_latitude_deg <= max_latitude_deg)
                {
                    return Err("regional_storm latitude band is inverted".to_string());
                }
            }
            FleetFault::SeasonalSoiling {
                window_start_day,
                window_end_day,
                duration_days,
                max_loss,
            } => {
                if window_end_day <= window_start_day {
                    return Err("seasonal_soiling onset window must be non-empty".to_string());
                }
                if duration_days == 0 {
                    return Err("seasonal_soiling duration_days must be at least 1".to_string());
                }
                if !(max_loss.is_finite() && 0.0 < max_loss && max_loss <= 1.0) {
                    return Err(format!(
                        "seasonal_soiling max_loss {max_loss} must be in (0, 1]"
                    ));
                }
            }
        }
        Ok(())
    }

    /// The event's realized onset day for a given shared event seed —
    /// one draw per event, identical for every scenario it touches.
    pub fn onset_day(&self, event_seed: u64) -> usize {
        let (start, end) = match *self {
            FleetFault::RegionalStorm {
                window_start_day,
                window_end_day,
                ..
            }
            | FleetFault::SeasonalSoiling {
                window_start_day,
                window_end_day,
                ..
            } => (window_start_day, window_end_day),
        };
        let mut rng = ChaCha8Rng::seed_from_u64(event_seed);
        start + (rng.gen::<f64>() * (end - start) as f64) as usize
    }

    /// Whether the event touches `scenario` at all (latitude band for
    /// storms; soiling is fleet-wide).
    pub fn affects(&self, scenario: &Scenario) -> Result<bool, String> {
        match *self {
            FleetFault::RegionalStorm {
                min_latitude_deg,
                max_latitude_deg,
                ..
            } => {
                let latitude = scenario.site_config()?.latitude_deg;
                Ok((min_latitude_deg..=max_latitude_deg).contains(&latitude))
            }
            FleetFault::SeasonalSoiling { .. } => Ok(true),
        }
    }

    /// Projects the realized event into `scenario`'s fault list: the
    /// [`FaultSpec`]s to append, or empty when the scenario is outside
    /// the affected region or the onset falls past its horizon.
    ///
    /// # Errors
    ///
    /// Propagates site-configuration errors from the latitude lookup.
    pub fn project(&self, event_seed: u64, scenario: &Scenario) -> Result<Vec<FaultSpec>, String> {
        if !self.affects(scenario)? {
            return Ok(Vec::new());
        }
        let onset = self.onset_day(event_seed);
        if onset >= scenario.days {
            return Ok(Vec::new());
        }
        Ok(match *self {
            FleetFault::RegionalStorm {
                duration_days,
                depth,
                ..
            } => vec![FaultSpec::ClimateDimming {
                start_day: onset,
                duration_days,
                factor: 1.0 - depth,
            }],
            FleetFault::SeasonalSoiling {
                duration_days,
                max_loss,
                ..
            } => vec![FaultSpec::PanelSoiling {
                start_day: onset,
                duration_days,
                max_loss,
            }],
        })
    }

    /// JSON form (`{"kind": ..., ...}`).
    pub fn to_json(&self) -> Json {
        match *self {
            FleetFault::RegionalStorm {
                window_start_day,
                window_end_day,
                duration_days,
                depth,
                min_latitude_deg,
                max_latitude_deg,
            } => Json::obj([
                ("kind", Json::Str("regional_storm".into())),
                ("window_start_day", Json::Num(window_start_day as f64)),
                ("window_end_day", Json::Num(window_end_day as f64)),
                ("duration_days", Json::Num(duration_days as f64)),
                ("depth", Json::Num(depth)),
                ("min_latitude_deg", Json::Num(min_latitude_deg)),
                ("max_latitude_deg", Json::Num(max_latitude_deg)),
            ]),
            FleetFault::SeasonalSoiling {
                window_start_day,
                window_end_day,
                duration_days,
                max_loss,
            } => Json::obj([
                ("kind", Json::Str("seasonal_soiling".into())),
                ("window_start_day", Json::Num(window_start_day as f64)),
                ("window_end_day", Json::Num(window_end_day as f64)),
                ("duration_days", Json::Num(duration_days as f64)),
                ("max_loss", Json::Num(max_loss)),
            ]),
        }
    }

    /// Parses and validates the JSON form.
    pub fn from_json(value: &Json) -> Result<FleetFault, String> {
        let fault = match value.req_str("kind")? {
            "regional_storm" => FleetFault::RegionalStorm {
                window_start_day: value.req_index("window_start_day")? as usize,
                window_end_day: value.req_index("window_end_day")? as usize,
                duration_days: value.req_index("duration_days")? as usize,
                depth: value.req_num("depth")?,
                min_latitude_deg: value.req_num("min_latitude_deg")?,
                max_latitude_deg: value.req_num("max_latitude_deg")?,
            },
            "seasonal_soiling" => FleetFault::SeasonalSoiling {
                window_start_day: value.req_index("window_start_day")? as usize,
                window_end_day: value.req_index("window_end_day")? as usize,
                duration_days: value.req_index("duration_days")? as usize,
                max_loss: value.req_num("max_loss")?,
            },
            other => return Err(format!("unknown fleet fault kind {other:?}")),
        };
        fault.validate()?;
        Ok(fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    fn storm() -> FleetFault {
        FleetFault::RegionalStorm {
            window_start_day: 22,
            window_end_day: 34,
            duration_days: 4,
            depth: 0.7,
            min_latitude_deg: 30.0,
            max_latitude_deg: 50.0,
        }
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let mut bad = storm();
        if let FleetFault::RegionalStorm { window_end_day, .. } = &mut bad {
            *window_end_day = 10;
        }
        assert!(bad.validate().is_err());
        assert!(FleetFault::SeasonalSoiling {
            window_start_day: 0,
            window_end_day: 10,
            duration_days: 0,
            max_loss: 0.5
        }
        .validate()
        .is_err());
        assert!(FleetFault::SeasonalSoiling {
            window_start_day: 0,
            window_end_day: 10,
            duration_days: 5,
            max_loss: 1.5
        }
        .validate()
        .is_err());
    }

    #[test]
    fn json_round_trips_both_kinds() {
        let soiling = FleetFault::SeasonalSoiling {
            window_start_day: 20,
            window_end_day: 30,
            duration_days: 15,
            max_loss: 0.3,
        };
        for fault in [storm(), soiling] {
            let text = fault.to_json().render_pretty();
            let back = FleetFault::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, fault);
        }
        assert!(
            FleetFault::from_json(&Json::obj([("kind", Json::Str("locusts".into()))])).is_err()
        );
    }

    #[test]
    fn one_event_seed_hits_every_affected_scenario_on_the_same_days() {
        let catalog = Catalog::builtin();
        let fault = storm();
        let desert = catalog.get("desert-clear-sky").unwrap(); // 33.4°N
        let fourseasons = catalog.get("four-seasons").unwrap(); // 45°N
        let a = fault.project(99, desert).unwrap();
        let b = fault.project(99, fourseasons).unwrap();
        assert_eq!(a, b, "correlated event must project identically");
        assert_eq!(a.len(), 1);
        // A southern-hemisphere site is outside the band.
        let southern = catalog.get("southern-four-seasons").unwrap();
        assert!(fault.project(99, southern).unwrap().is_empty());
        // Different event seeds move the onset.
        let onsets: std::collections::BTreeSet<usize> =
            (0..40).map(|seed| fault.onset_day(seed)).collect();
        assert!(onsets.len() > 1, "onset must depend on the event seed");
    }

    #[test]
    fn onset_past_the_horizon_projects_nothing() {
        let mut catalog_entry = Catalog::builtin().get("desert-clear-sky").unwrap().clone();
        catalog_entry.days = 25;
        let fault = FleetFault::RegionalStorm {
            window_start_day: 30,
            window_end_day: 31,
            duration_days: 2,
            depth: 0.5,
            min_latitude_deg: -90.0,
            max_latitude_deg: 90.0,
        };
        assert!(fault.project(1, &catalog_entry).unwrap().is_empty());
    }
}
