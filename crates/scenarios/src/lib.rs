//! Scenario catalog and parallel fleet evaluation — the workspace's
//! scale-out layer.
//!
//! The DATE'10 paper evaluates its predictor on six measured traces;
//! related fleet-scale work (Basha et al.'s in-network prediction,
//! Mziou-Sallami et al.'s error-impact study) shows that predictors must
//! be judged **across deployment regimes** and **by downstream
//! management impact**, not a single MAPE figure. This crate provides
//! both:
//!
//! * [`Catalog`] — named, JSON-serialisable [`Scenario`]s composing a
//!   `solar_synth` site/weather regime (paper presets or custom
//!   latitude × climate via [`solar_synth::SiteConfigBuilder`]), a
//!   `harvest_sim` hardware tier ([`NodeProfile`]), and
//!   fault/perturbation injectors ([`FaultSpec`]) — dead panels, storage
//!   fade, sensor dropout, telemetry gaps;
//! * [`CatalogGenerator`] — parameterized catalog generation: climate
//!   [`RegimeTemplate`]s (latitude sweeps, cloudiness/turbidity axes,
//!   hardware tiers, [`FaultMix`] presets) expanded deterministically
//!   into hundreds of stable-id scenarios from one seed, with
//!   correlated fleet events graded by geodesic [`SpatialFalloff`]
//!   instead of a hard latitude band;
//! * [`FleetMatrix`] — a predictor-family × power-manager × scenario
//!   product, with predictor families reusable from
//!   [`param_explore::ParamGrid`]s
//!   ([`PredictorSpec::family_from_grid`]);
//! * [`FleetEngine`] — expands the matrix into jobs, executes them in
//!   parallel with `rayon` under deterministic per-job seeds, and
//!   reduces `NodeReport`s + `pred_metrics` summaries into a ranked
//!   [`Scorecard`] with byte-deterministic JSON output.
//!
//! # Example
//!
//! ```
//! use scenario_fleet::{Catalog, FleetEngine, FleetMatrix, ManagerSpec, PredictorSpec};
//!
//! let scenarios = vec![
//!     Catalog::builtin().get("desert-clear-sky").unwrap().clone(),
//! ];
//! let matrix = FleetMatrix::new(
//!     vec![
//!         PredictorSpec::Wcma { alpha: 0.7, days: 10, k: 2 },
//!         PredictorSpec::Persistence,
//!     ],
//!     vec![ManagerSpec::Greedy],
//!     scenarios,
//! ).unwrap();
//! let result = FleetEngine::new(42).run(&matrix).unwrap();
//! assert_eq!(result.outcomes.len(), 2);
//! let winner = result.scorecard.winner().unwrap();
//! assert_eq!(winner.rank, 1);
//! ```

mod catalog;
mod engine;
mod faults;
mod fleet_faults;
mod generators;
mod matrix;
mod scorecard;

// The JSON layer moved down into `fleet_obs` (the observability crate
// sits below this one in the dependency graph); re-exported here so
// `scenario_fleet::json::Json` paths keep working.
pub use fleet_obs::json;

pub use catalog::{Catalog, Climate, NodeProfile, Scenario, SiteSpec};
// The trace stream version travels with catalogs, templates, and the
// engine's ledger; re-exported so fleet users never import the synth
// crate just to name V1/V2.
pub use engine::{
    FleetCache, FleetDelta, FleetEngine, FleetResult, JobOutcome, PassBreakdown, PruneStats,
    QuarantinedScenario, ResolvedTraceBudget, ShardedFleetResult, TraceBudgetSource,
    TraceCachePolicy, ADAPTIVE_FALLBACK_BUDGET_BYTES,
};
pub use faults::{storage_capacity_factor, FaultInjector, FaultSpec};
pub use fleet_faults::{FalloffProfile, FleetFault, SpatialFalloff};
pub use generators::{CatalogGenerator, FaultMix, RegimeTemplate};
pub use matrix::{FleetMatrix, JobSpec, ManagerSpec, PredictorSpec};
pub use scorecard::{
    CoverageManifest, MissingCoverage, ScenarioRanking, ScoreEntry, Scorecard, ScorecardShard,
    ShardManifest,
};
pub use solar_synth::StreamVersion;

// Observability handles, re-exported so engine users configure
// collection — and consume reports (diff / archive / trace export) —
// without naming `fleet_obs` directly.
pub use fleet_obs::{
    Collector, DiffConfig, Histogram, Ledger, ReportDiff, RunArchive, RunReport, Verdict,
};
