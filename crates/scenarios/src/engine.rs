//! The fleet engine: expand a [`FleetMatrix`] into jobs, run them in
//! parallel, reduce to a [`Scorecard`].
//!
//! # Determinism
//!
//! Every random draw is derived from the engine's master seed by stable
//! hashing — scenario traces from `(master, scenario name)`, fault
//! realizations likewise — and each job re-derives its own state from
//! those seeds. Jobs share nothing mutable, and reduction sorts by job
//! index, so the engine's output (including rendered scorecard JSON) is
//! **byte-identical for a given matrix and seed regardless of thread
//! count**. An integration test pins this property.
//!
//! # Two passes per job
//!
//! Each job runs the predictor twice over the scenario trace:
//!
//! 1. a *metrics pass* ([`run_predictor`]-style) scoring predictions
//!    against the true slot means under the paper's protocol, with
//!    measurement faults corrupting the predictor's inputs — this is
//!    prediction accuracy under adversity;
//! 2. a *simulation pass* ([`simulate_node_hooked`]) closing the
//!    management loop with physical faults applied — this is what the
//!    accuracy buys (brownouts, utilization).
//!
//! Both passes realize the identical fault sequence (same seed).

use crate::catalog::Scenario;
use crate::faults::{storage_capacity_factor, FaultInjector};
use crate::matrix::{FleetMatrix, JobSpec};
use crate::scorecard::Scorecard;
use harvest_sim::{simulate_node_hooked, NodeReport, SlotHook};
use pred_metrics::{ErrorSummary, EvalProtocol};
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use solar_predict::run_predictor_observed;
use solar_synth::TraceGenerator;
use solar_trace::{PowerTrace, SlotView, SlotsPerDay};

/// Outcome of one (scenario, predictor, manager) job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Predictor label.
    pub predictor: String,
    /// Manager label.
    pub manager: String,
    /// Matrix coordinates.
    pub spec: JobSpec,
    /// Prediction accuracy under the paper's protocol (metrics pass).
    pub summary: ErrorSummary,
    /// Management outcome (simulation pass).
    pub report: NodeReport,
}

/// Everything one fleet run produces.
#[derive(Clone, Debug)]
pub struct FleetResult {
    /// Per-job outcomes, in deterministic job order.
    pub outcomes: Vec<JobOutcome>,
    /// The reduced, ranked scorecard.
    pub scorecard: Scorecard,
}

/// The parallel fleet evaluator.
#[derive(Clone, Debug)]
pub struct FleetEngine {
    master_seed: u64,
    threads: Option<usize>,
    protocol: EvalProtocol,
}

impl FleetEngine {
    /// An engine deriving all randomness from `master_seed`, evaluating
    /// under the paper's protocol, using all available cores.
    pub fn new(master_seed: u64) -> Self {
        FleetEngine {
            master_seed,
            threads: None,
            protocol: EvalProtocol::paper(),
        }
    }

    /// Pins the worker-thread count (useful for determinism tests and
    /// benchmarking scaling).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Replaces the evaluation protocol.
    pub fn with_protocol(mut self, protocol: EvalProtocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// The master seed.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Runs the whole matrix.
    ///
    /// # Errors
    ///
    /// Returns the first trace-generation or hardware-construction
    /// error; per-job panics (contract violations) propagate.
    pub fn run(&self, matrix: &FleetMatrix) -> Result<FleetResult, String> {
        let run_all = || -> Result<Vec<JobOutcome>, String> {
            // Phase 1: one trace per scenario, generated in parallel and
            // shared read-only by every job of that scenario.
            let traces: Vec<Result<PowerTrace, String>> = (0..matrix.scenarios.len())
                .into_par_iter()
                .map(|idx| self.generate_trace(&matrix.scenarios[idx]))
                .collect();
            let traces: Vec<PowerTrace> = traces.into_iter().collect::<Result<Vec<_>, String>>()?;

            // Phase 2: the job matrix.
            let jobs = matrix.jobs();
            let outcomes: Vec<Result<JobOutcome, String>> = jobs
                .par_iter()
                .map(|job| self.evaluate(matrix, job, &traces[job.scenario_idx]))
                .collect();
            outcomes.into_iter().collect()
        };
        let outcomes = match self.threads {
            Some(threads) => ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .map_err(|e| e.to_string())?
                .install(run_all),
            None => run_all(),
        }?;
        let scorecard = Scorecard::build(matrix, &outcomes, self.master_seed);
        Ok(FleetResult {
            outcomes,
            scorecard,
        })
    }

    /// The deterministic per-scenario seed: stable across runs, thread
    /// counts, and platforms; distinct per scenario name.
    ///
    /// The hashed string is *salted*: a custom site built from the same
    /// scenario name carries `seed_stream = fnv1a(name)`, and the trace
    /// generator XORs `seed ^ seed_stream` — hashing the bare name here
    /// would cancel it out and hand every custom-site scenario the same
    /// RNG stream (a regression test pins this).
    fn scenario_seed(&self, scenario: &Scenario) -> u64 {
        let salted = format!("fleet-scenario/{}", scenario.name);
        solar_trace::hash::fnv1a(&salted) ^ self.master_seed.rotate_left(17)
    }

    fn generate_trace(&self, scenario: &Scenario) -> Result<PowerTrace, String> {
        let config = scenario.site_config()?;
        TraceGenerator::new(config, self.scenario_seed(scenario))
            .generate_days(scenario.days)
            .map_err(|e| e.to_string())
    }

    fn evaluate(
        &self,
        matrix: &FleetMatrix,
        job: &JobSpec,
        trace: &PowerTrace,
    ) -> Result<JobOutcome, String> {
        let scenario = &matrix.scenarios[job.scenario_idx];
        let predictor_spec = &matrix.predictors[job.predictor_idx];
        let manager_spec = &matrix.managers[job.manager_idx];
        let n = scenario.slots_per_day;
        let view = SlotView::new(trace, SlotsPerDay::new(n).map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        let fault_seed = self.scenario_seed(scenario) ^ 0xFA01;

        // Metrics pass: the predictor sees fault-corrupted samples
        // while the log keeps ground-truth references.
        let mut predictor = predictor_spec.build(n as usize)?;
        let mut injector =
            FaultInjector::new(&scenario.faults, fault_seed, scenario.days, n as usize);
        let log = run_predictor_observed(&view, predictor.as_mut(), |day, slot, sample| {
            let mut harvest_ignored = 0.0;
            let mut measured = sample;
            injector.on_slot(day, slot, &mut harvest_ignored, &mut measured);
            measured
        });
        let summary = self.protocol.evaluate(&log);

        // Simulation pass: fresh predictor, identical fault realization.
        let mut predictor = predictor_spec.build(n as usize)?;
        let mut manager = manager_spec.build();
        let mut injector =
            FaultInjector::new(&scenario.faults, fault_seed, scenario.days, n as usize);
        let config = scenario
            .node
            .node_config(storage_capacity_factor(&scenario.faults))?;
        let report = simulate_node_hooked(
            &view,
            predictor.as_mut(),
            manager.as_mut(),
            &config,
            &mut injector,
        );

        Ok(JobOutcome {
            scenario: scenario.name.clone(),
            predictor: predictor_spec.label(),
            manager: manager_spec.label(),
            spec: *job,
            summary,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::matrix::{ManagerSpec, PredictorSpec};

    fn small_matrix() -> FleetMatrix {
        let scenarios = vec![
            Catalog::builtin().get("desert-clear-sky").unwrap().clone(),
            Catalog::builtin().get("aging-node").unwrap().clone(),
        ];
        FleetMatrix::new(
            vec![
                PredictorSpec::Wcma {
                    alpha: 0.7,
                    days: 10,
                    k: 2,
                },
                PredictorSpec::Persistence,
            ],
            vec![
                ManagerSpec::EnergyNeutral {
                    target_soc: 0.5,
                    gain: 0.25,
                },
                ManagerSpec::Greedy,
            ],
            scenarios,
        )
        .unwrap()
    }

    #[test]
    fn engine_runs_the_full_matrix() {
        let result = FleetEngine::new(42).run(&small_matrix()).unwrap();
        assert_eq!(result.outcomes.len(), 2 * 2 * 2);
        for outcome in &result.outcomes {
            assert!(outcome.summary.count > 0, "{}", outcome.scenario);
            assert!(outcome.summary.mape.is_finite());
            assert!(
                outcome.report.energy_balance_error_j()
                    < 1e-6 * outcome.report.harvested_j.max(1.0),
                "{}: {}",
                outcome.scenario,
                outcome.report.energy_balance_error_j()
            );
        }
    }

    #[test]
    fn outcomes_are_in_job_order_regardless_of_threads() {
        let matrix = small_matrix();
        let a = FleetEngine::new(7).with_threads(1).run(&matrix).unwrap();
        let b = FleetEngine::new(7).with_threads(4).run(&matrix).unwrap();
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.summary, y.summary);
            assert_eq!(x.report, y.report);
        }
    }

    #[test]
    fn equally_configured_custom_sites_with_different_names_get_different_traces() {
        // Regression: the scenario-seed hash must not cancel against the
        // custom site's name-derived seed_stream (engine XORs the
        // scenario hash in, TraceGenerator XORs seed_stream back out).
        let base = Catalog::builtin().get("four-seasons").unwrap().clone();
        let mut twin = base.clone();
        twin.name = "four-seasons-twin".into();
        twin.days = base.days;
        let engine = FleetEngine::new(3);
        let a = engine.generate_trace(&base).unwrap();
        let b = engine.generate_trace(&twin).unwrap();
        assert_ne!(a.samples(), b.samples());
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let matrix = small_matrix();
        let a = FleetEngine::new(1).run(&matrix).unwrap();
        let b = FleetEngine::new(2).run(&matrix).unwrap();
        assert_ne!(a.outcomes[0].summary, b.outcomes[0].summary);
    }

    #[test]
    fn faults_hurt_the_faulted_scenario() {
        // The aging-node scenario halves storage and drops samples; the
        // same predictor+manager must brown out at least as often there
        // as on the clean desert scenario is not guaranteed (different
        // sites), but the faulted run must still balance energy and
        // produce strictly positive harvest.
        let result = FleetEngine::new(3).run(&small_matrix()).unwrap();
        let faulted: Vec<_> = result
            .outcomes
            .iter()
            .filter(|o| o.scenario == "aging-node")
            .collect();
        assert!(!faulted.is_empty());
        for outcome in faulted {
            assert!(outcome.report.harvested_j > 0.0);
            assert!(outcome.report.energy_balance_error_j() < 1e-6);
        }
    }
}
