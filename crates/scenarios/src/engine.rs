//! The fleet engine: expand a [`FleetMatrix`] into work units, run them
//! in parallel — materialized or streamed — and reduce to a
//! [`Scorecard`], monolithic or sharded.
//!
//! # Determinism
//!
//! Every random draw is derived from the engine's master seed by stable
//! hashing — scenario traces from `(master, scenario name)`, fault
//! realizations likewise, fleet-wide events from `(master, event
//! index)` — and each job re-derives its own state from those seeds.
//! Jobs share nothing mutable, and reduction sorts by job index, so the
//! engine's output (including rendered scorecard JSON) is
//! **byte-identical for a given matrix and seed regardless of thread
//! count, trace-cache policy, shard count, or cache warmth**.
//! Integration tests pin all four properties.
//!
//! # The single-pass invariant
//!
//! **One slot pass per scenario per run.** Every fresh job of a
//! scenario — the whole predictor × manager block — is fed from a
//! single walk over the scenario's slot sequence, and synthesis runs at
//! most once per scenario per run (once into the trace cache when the
//! scenario is admitted, once as a [`solar_synth::SlotStream`]
//! otherwise; multi-year scenarios above the metrics-log cap add one
//! ROI pre-pass). Growing the candidate axis therefore adds per-slot
//! arithmetic, never whole passes — [`FleetResult::synthesis_passes`]
//! exposes the count, and the `fleet_hotpath`/`tuner_bank` benches pin
//! the resulting throughput trajectory (`BENCH_PR5.json`).
//!
//! The work-unit granularity is the scenario, so parallelism is across
//! scenarios: at fleet scale (hundreds of regimes) that saturates any
//! core count, while a few-scenario × many-predictor matrix trades
//! per-job parallelism for the shared-kernel savings below — the right
//! trade everywhere the workspace runs today, revisit if wide matrices
//! on many-core boxes become a primary shape.
//!
//! Within a pass, each slot is evaluated in two conceptual halves that
//! share one fault realization (injectors are pure functions of the
//! shared seed and slot sequence, and measurement corruption never
//! depends on the harvest argument — pinned by a faults test):
//!
//! 1. a *metrics half* scoring predictions against the true slot means
//!    under the paper's protocol, with measurement faults corrupting
//!    the predictors' inputs — prediction accuracy under adversity;
//! 2. a *simulation half* closing the management loop with physical
//!    faults applied — what the accuracy buys (brownouts, utilization).
//!
//! Because both halves observe the identical corrupted stream, each
//! *distinct predictor* computes its prediction once per slot: float
//! WCMA candidates fold into a shared
//! [`solar_predict::CandidateBank`] (one `E_{D×N}` history, one μ/η
//! column walk per distinct D, one Φ per distinct (D, K)), other
//! predictors run one owned instance — and every manager pairing reuses
//! that prediction stream and its metrics summary. Per-candidate
//! arithmetic is unchanged throughout, so every outcome is
//! bit-identical to a per-job solo run (property-tested in core, pinned
//! end to end by the engine equality tests and the golden 200-regime
//! digest).
//!
//! # Materialize or stream
//!
//! The [`TraceCachePolicy`] decides, per scenario, whether its trace is
//! generated once into the shared cache (the pass then walks the cached
//! `SlotView` — and later runs reuse the trace for free) or
//! **streamed**: the slot sequence is generated on the fly, holding one
//! day of samples instead of the full horizon. Both sources produce
//! identical slot values into the same machines, so outcomes are
//! bit-identical by construction — multi-year scenarios can run under a
//! bounded memory budget without perturbing a single byte of output.
//! The default [`TraceCachePolicy::Adaptive`] sizes the budget from the
//! machine's available memory (fixed 4 MiB fallback), closing the
//! roadmap's adaptive-policy item.
//!
//! # Incremental re-scoring
//!
//! A tuning loop re-runs near-identical matrices dozens of times,
//! changing only the predictor axis between rounds. [`FleetCache`]
//! makes that cheap: it memoizes generated traces per scenario and
//! finished [`JobOutcome`]s per (scenario, predictor, manager) triple,
//! so [`FleetEngine::run_cached`] evaluates **only the jobs whose axis
//! value changed**. Because every job is a pure function of its triple
//! and the master seed, a cached outcome is bit-identical to a fresh
//! one — the resulting scorecard JSON is byte-identical to a full
//! re-run (pinned by test).
//!
//! # Observability
//!
//! The engine reports on itself through an optional
//! [`fleet_obs::Collector`] ([`FleetEngine::with_collector`]): phase
//! spans (`fleet/project` → `admission` → `synthesis` → `simulate` →
//! `score`/`merge`) on the timing plane, and deterministic ledger
//! counters — admission decisions with the resolved budget, synthesis
//! passes, cache hits, slot counts, bank sizes, fault specs — recorded
//! at **work-unit granularity** (one batch of counter updates per
//! scenario unit, computed arithmetically), never inside the per-slot
//! loop. The default collector is a no-op whose calls cost one branch,
//! so un-instrumented runs are unchanged (pinned by the
//! `fleet_hotpath` bench); with collection on, outputs stay
//! byte-identical and the ledger itself is byte-identical across
//! thread counts and shard splits.

use crate::catalog::Scenario;
use crate::faults::{storage_capacity_factor, FaultInjector, FaultSpec};
use crate::matrix::{FleetMatrix, JobSpec};
use crate::scorecard::{Scorecard, ScorecardShard, ShardManifest};
use fleet_obs::Collector;
use harvest_sim::SlotHook;
use harvest_sim::{NodeReport, NodeSimulation, SimDayCheckpoint};
use pred_metrics::{ErrorSummary, EvalProtocol, RecordSink, RunCost, StreamingEval};
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use solar_predict::Predictor;
use solar_synth::{SynthCheckpoint, SynthCounters, TraceGenerator};
use solar_trace::{PowerTrace, SlotView, SlotsPerDay};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// Outcome of one (scenario, predictor, manager) job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Predictor label.
    pub predictor: String,
    /// Manager label.
    pub manager: String,
    /// Matrix coordinates.
    pub spec: JobSpec,
    /// Prediction accuracy under the paper's protocol (metrics pass).
    pub summary: ErrorSummary,
    /// Management outcome (simulation pass).
    pub report: NodeReport,
    /// What the job cost: wall time (both passes; non-deterministic),
    /// the predictor's peak candidate count (deterministic), and the
    /// peak trace bytes held (full trace when materialized, one day's
    /// buffer when streamed).
    pub cost: RunCost,
}

/// How a run spent its synthesis passes, by kind. The single-pass
/// invariant bounds the total by one per fresh scenario plus
/// pre-passes — never by the job count. Recorded in the run ledger as
/// the `synth/*` counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PassBreakdown {
    /// Traces generated into the cache from day zero (one per fresh
    /// admitted scenario without a resumable generator tail).
    pub trace_generations: usize,
    /// Cached traces *extended* in place from their stored generator
    /// tail — a day-append pays only for the appended days.
    pub trace_extensions: usize,
    /// Streamed slot passes (one per fresh non-admitted scenario).
    pub streamed_passes: usize,
    /// ROI pre-passes spent by streamed units above the metrics-log
    /// cap (the paper's filter needs the reference peak up front).
    pub roi_prepasses: usize,
}

impl PassBreakdown {
    /// Total synthesis passes of any kind.
    pub fn total(&self) -> usize {
        self.trace_generations + self.trace_extensions + self.streamed_passes + self.roi_prepasses
    }

    fn add(&mut self, other: PassBreakdown) {
        self.trace_generations += other.trace_generations;
        self.trace_extensions += other.trace_extensions;
        self.streamed_passes += other.streamed_passes;
        self.roi_prepasses += other.roi_prepasses;
    }
}

/// A scenario whose work unit failed (panicked or errored) under
/// [`FleetEngine::with_quarantine`]: its jobs are absent from the
/// outcomes and its ranking table is empty, and the failure is
/// surfaced here instead of aborting the run. The harness folds these
/// into its `CoverageManifest` so a degraded run states exactly what
/// is missing and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantinedScenario {
    /// The scenario whose unit failed.
    pub scenario: String,
    /// The unit's error, or the panic message for caught panics.
    pub error: String,
}

/// Everything one fleet run produces.
#[derive(Clone, Debug)]
pub struct FleetResult {
    /// Per-job outcomes, in deterministic job order.
    pub outcomes: Vec<JobOutcome>,
    /// The reduced, ranked scorecard.
    pub scorecard: Scorecard,
    /// Jobs answered from the cache (0 for a fresh run).
    pub cached_jobs: usize,
    /// Jobs evaluated through the streamed path (no full-horizon trace
    /// allocation) this run.
    pub streamed_jobs: usize,
    /// Synthesis passes this run spent, broken down by kind.
    pub passes: PassBreakdown,
    /// Scenarios quarantined under [`FleetEngine::with_quarantine`]
    /// (always empty otherwise — failures abort the run instead).
    pub quarantined: Vec<QuarantinedScenario>,
}

impl FleetResult {
    /// Synthesis passes this run spent (all kinds).
    pub fn synthesis_passes(&self) -> usize {
        self.passes.total()
    }
}

/// A sharded fleet run: the manifest plus one scorecard shard per
/// scenario subset — the format for matrices whose monolithic scorecard
/// no longer fits one JSON document. [`Scorecard::merge_shards`]
/// reassembles the monolithic scorecard byte-for-byte.
#[derive(Clone, Debug)]
pub struct ShardedFleetResult {
    /// Which scenario lives in which shard, in matrix order.
    pub manifest: ShardManifest,
    /// The shards, indexed `0..manifest.shard_count`.
    pub shards: Vec<ScorecardShard>,
    /// Per-job outcomes, in deterministic job order.
    pub outcomes: Vec<JobOutcome>,
    /// Jobs answered from the cache.
    pub cached_jobs: usize,
    /// Jobs evaluated through the streamed path.
    pub streamed_jobs: usize,
    /// Synthesis passes this run spent, broken down by kind.
    pub passes: PassBreakdown,
    /// Scenarios quarantined under [`FleetEngine::with_quarantine`]
    /// (always empty otherwise — failures abort the run instead).
    pub quarantined: Vec<QuarantinedScenario>,
}

impl ShardedFleetResult {
    /// Synthesis passes this run spent (all kinds).
    pub fn synthesis_passes(&self) -> usize {
        self.passes.total()
    }
}

/// How much memory the engine may spend on materialized traces.
///
/// Scenarios are admitted greedily in matrix order — a deterministic
/// admission order depending only on the matrix and the resolved
/// budget; a scenario whose trace would push the running total past the
/// budget runs **streamed** instead
/// ([`SlotStream`](solar_synth::SlotStream)-driven, one day buffered).
/// Outputs stay byte-identical across policies, thread counts and cache
/// warmth, because both sources drive the same per-slot machines.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceCachePolicy {
    /// Materialize every trace (the classic engine behaviour).
    Unbounded,
    /// Materialize traces until this many bytes of trace data are held;
    /// stream the rest.
    Bounded(u64),
    /// Size the trace budget from a memory ceiling: `1/8` of the
    /// configured ceiling when given, else `1/8` of the machine's
    /// available memory detected at run start, else the fixed
    /// [`ADAPTIVE_FALLBACK_BUDGET_BYTES`] (4 MiB) default. The engine
    /// default: small fleets materialize, fleets that would not fit
    /// stream — with byte-identical output either way (only the
    /// materialize/stream split moves with the machine).
    Adaptive {
        /// Optional configured memory ceiling in bytes; `None` detects
        /// available memory at run start.
        ceiling_bytes: Option<u64>,
    },
}

/// The adaptive policy's trace budget when no ceiling is configured and
/// the machine's available memory cannot be detected.
pub const ADAPTIVE_FALLBACK_BUDGET_BYTES: u64 = 4 << 20;

/// Where a run's trace budget came from — the previously invisible
/// half of the adaptive policy's decision, now recorded in the run
/// ledger (`admission/trace_budget_source`) and printed in scorecard
/// text output.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TraceBudgetSource {
    /// [`TraceCachePolicy::Unbounded`]: no budget at all.
    Unbounded,
    /// [`TraceCachePolicy::Bounded`]: the configured byte count.
    Configured,
    /// Adaptive with an explicit ceiling: `ceiling / 8`.
    AdaptiveCeiling,
    /// Adaptive from `/proc/meminfo` `MemAvailable`: `available / 8`.
    AdaptiveDetectedMemory,
    /// Adaptive with nothing to consult: the fixed 4 MiB fallback.
    AdaptiveFallback,
}

impl std::fmt::Display for TraceBudgetSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TraceBudgetSource::Unbounded => "unbounded",
            TraceBudgetSource::Configured => "configured",
            TraceBudgetSource::AdaptiveCeiling => "adaptive-ceiling",
            TraceBudgetSource::AdaptiveDetectedMemory => "adaptive-detected-memory",
            TraceBudgetSource::AdaptiveFallback => "adaptive-fallback",
        })
    }
}

/// A trace budget as one run enforces it: the byte count (`None` =
/// unbounded) plus where it came from. Resolved **once** per run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ResolvedTraceBudget {
    /// Enforced budget in bytes; `None` means unbounded.
    pub bytes: Option<u64>,
    /// How the bytes were chosen.
    pub source: TraceBudgetSource,
}

impl std::fmt::Display for ResolvedTraceBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.bytes {
            None => write!(f, "unbounded ({})", self.source),
            Some(bytes) => write!(f, "{bytes} bytes ({})", self.source),
        }
    }
}

/// Fraction of the memory ceiling the adaptive policy spends on
/// materialized traces (the denominator: budget = ceiling / 8).
const ADAPTIVE_CEILING_DIVISOR: u64 = 8;

impl TraceCachePolicy {
    /// Materialize every trace.
    pub fn unbounded() -> Self {
        TraceCachePolicy::Unbounded
    }

    /// Materialize traces until `bytes` of trace data are held; stream
    /// the rest.
    pub fn bounded(bytes: u64) -> Self {
        TraceCachePolicy::Bounded(bytes)
    }

    /// Stream every scenario (a zero-byte budget).
    pub fn streaming_only() -> Self {
        Self::bounded(0)
    }

    /// Size the budget from the machine's available memory (default).
    pub fn adaptive() -> Self {
        TraceCachePolicy::Adaptive {
            ceiling_bytes: None,
        }
    }

    /// Size the budget from an explicit memory ceiling — deterministic
    /// across machines, unlike detection.
    pub fn adaptive_with_ceiling(ceiling_bytes: u64) -> Self {
        TraceCachePolicy::Adaptive {
            ceiling_bytes: Some(ceiling_bytes),
        }
    }

    /// The budget a run under this policy enforces, with its source.
    /// For [`TraceCachePolicy::Adaptive`] without a configured ceiling
    /// this consults the machine's available memory, so it may differ
    /// between calls; the engine resolves it **once** per run, keeping
    /// the admission split fixed within a run.
    pub fn resolve(&self) -> ResolvedTraceBudget {
        match *self {
            TraceCachePolicy::Unbounded => ResolvedTraceBudget {
                bytes: None,
                source: TraceBudgetSource::Unbounded,
            },
            TraceCachePolicy::Bounded(bytes) => ResolvedTraceBudget {
                bytes: Some(bytes),
                source: TraceBudgetSource::Configured,
            },
            TraceCachePolicy::Adaptive { ceiling_bytes } => {
                let (ceiling, source) = match ceiling_bytes {
                    Some(ceiling) => (Some(ceiling), TraceBudgetSource::AdaptiveCeiling),
                    None => match detected_available_memory_bytes() {
                        Some(available) => {
                            (Some(available), TraceBudgetSource::AdaptiveDetectedMemory)
                        }
                        None => (None, TraceBudgetSource::AdaptiveFallback),
                    },
                };
                ResolvedTraceBudget {
                    bytes: Some(
                        ceiling
                            .map(|c| c / ADAPTIVE_CEILING_DIVISOR)
                            .unwrap_or(ADAPTIVE_FALLBACK_BUDGET_BYTES),
                    ),
                    source,
                }
            }
        }
    }

    /// The resolved budget's byte count alone (see
    /// [`TraceCachePolicy::resolve`]).
    pub fn budget_bytes(&self) -> Option<u64> {
        self.resolve().bytes
    }

    fn admits(resolved_budget: Option<u64>, running_total: u64, trace_bytes: u64) -> bool {
        match resolved_budget {
            None => true,
            Some(budget) => running_total.saturating_add(trace_bytes) <= budget,
        }
    }
}

impl Default for TraceCachePolicy {
    fn default() -> Self {
        Self::adaptive()
    }
}

/// `MemAvailable` from `/proc/meminfo`, in bytes (`None` off Linux or
/// when unreadable).
fn detected_available_memory_bytes() -> Option<u64> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    let meminfo = std::fs::read_to_string("/proc/meminfo").ok()?;
    let line = meminfo
        .lines()
        .find(|line| line.starts_with("MemAvailable:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// One materialized trace's memory footprint: the struct itself, its
/// label bytes, and its samples. **Both** the cache's accounting
/// ([`FleetCache::trace_bytes`]) and the admission estimate
/// ([`FleetEngine`]'s per-scenario projection) go through this helper,
/// so the bytes an adaptive [`TraceCachePolicy`] budgets against are
/// the bytes the cache will actually report once the trace exists.
fn trace_footprint_bytes(label_len: usize, sample_count: usize) -> usize {
    std::mem::size_of::<PowerTrace>() + label_len + sample_count * std::mem::size_of::<f64>()
}

/// The generator state at the end of a materialized trace, stored per
/// scenario *name*: a day-append re-keys the trace under the grown
/// scenario's JSON by generating only the appended days from here.
#[derive(Clone, Debug)]
struct TraceTail {
    /// The scenario's full JSON form at the stored horizon (also the
    /// key its trace sits under in [`FleetCache::traces`]).
    scenario_json: String,
    /// The stored horizon in days.
    days: usize,
    /// Generator state positioned at `days`.
    tail: SynthCheckpoint,
}

/// End-of-horizon machine state of one scenario's full job cross — the
/// O(appended days) resume point for a day-append delta. Captured by
/// the engine at the end of an eligible work-unit pass (full predictor
/// × manager cross, no trace-gap fault, every solo predictor
/// snapshot-able) and stored in the [`FleetCache`] keyed by scenario
/// name.
struct UnitCheckpoint {
    /// The scenario's full JSON form at capture time; resume requires
    /// the appended scenario to render identically once its `days` is
    /// rewound to [`UnitCheckpoint::days`].
    scenario_json: String,
    /// The captured horizon in days.
    days: usize,
    /// Predictor axis labels at capture (matrix order) — the machine
    /// set below is only meaningful against an identical axis.
    predictor_labels: Vec<String>,
    /// Manager axis labels at capture (matrix order).
    manager_labels: Vec<String>,
    /// Whether the stored sinks are streaming accumulators (`true`) or
    /// materialized prediction logs (`false`). A resumed pass streams
    /// either way: logs re-fold against the extended peak at restore
    /// (bit-identical by the sink contract), so only accumulator
    /// checkpoints are invalidated when appended days raise the peak.
    streaming_eval: bool,
    /// The ROI reference peak the record filter judged against — the
    /// prepass peak for streaming passes, the log's own for log passes.
    roi_peak: f64,
    /// The final slot's dimmed reference mean, not yet folded into the
    /// peak (mirrors `PredictionLog::peak_actual_mean` excluding the
    /// final slot).
    roi_pending_mean: Option<f64>,
    /// Whether the final captured slot opened a prediction record.
    prior_included: bool,
    /// The fault injector after the captured pass — its sequential
    /// dropout RNG continues exactly where a cold run over the longer
    /// horizon would be at this day boundary.
    injector: FaultInjector,
    /// Generator state for streamed units (`None` when materialized —
    /// the trace itself extends through [`TraceTail`]).
    synth: Option<SynthCheckpoint>,
    /// The shared float-WCMA candidate bank, if the axis has any.
    bank: Option<solar_predict::CandidateBank>,
    /// Solo predictor snapshots, in kernel order.
    solo: Vec<Box<dyn Predictor + Send + Sync>>,
    /// Per-kernel record sinks, in kernel order.
    feeds: Vec<FeedCheckpoint>,
    /// Per-job simulation state, in unit job order.
    sims: Vec<SimDayCheckpoint>,
}

/// One feed's captured state inside a [`UnitCheckpoint`].
struct FeedCheckpoint {
    /// The record sink as the captured pass fed it.
    sink: MetricsSink,
    /// For log sinks: the log already folded through the protocol at
    /// [`UnitCheckpoint::roi_peak`] — the capture computes this fold
    /// for the summary anyway, and storing it lets a resume whose
    /// extended peak matches skip re-walking the prefix records
    /// entirely (the common case; peaks are set by the climatology).
    folded: Option<StreamingEval>,
    /// The feed's still-open record straddling the day boundary.
    pending: Option<(u32, u32, f64, f64)>,
}

impl std::fmt::Debug for UnitCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnitCheckpoint")
            .field("days", &self.days)
            .field("predictors", &self.predictor_labels.len())
            .field("managers", &self.manager_labels.len())
            .field("streaming_eval", &self.streaming_eval)
            .finish_non_exhaustive()
    }
}

/// What [`FleetCache::prune_to`] evicted, so an incremental loop can
/// fold the dropped jobs' cost into its own running aggregate before
/// the entries disappear from [`FleetCache::cost`].
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct PruneStats {
    /// Job outcomes evicted.
    pub evicted_outcomes: usize,
    /// Materialized traces evicted.
    pub evicted_traces: usize,
    /// Bytes of trace footprint released.
    pub evicted_trace_bytes: usize,
    /// Aggregate cost of the evicted job outcomes.
    pub evicted_cost: pred_metrics::CostAggregate,
}

/// Memo of traces, job outcomes, and day-boundary resume state across
/// runs of one engine — the incremental re-scoring state. Create with
/// [`FleetEngine::new_cache`]; feed to [`FleetEngine::run_cached`]. The
/// cache is bound to the engine's master seed and protocol and refuses
/// to serve any other. It never evicts on its own — call
/// [`FleetCache::prune_to`] from loops that retire scenarios.
#[derive(Clone, Debug, Default)]
pub struct FleetCache {
    master_seed: u64,
    protocol: Option<EvalProtocol>,
    /// Traces keyed by the scenario's full JSON form (not just its
    /// name, so a mutated same-name scenario can never alias).
    traces: HashMap<String, PowerTrace>,
    /// Outcomes keyed by (scenario JSON, predictor label, manager
    /// label); labels are injective over specs by contract.
    outcomes: HashMap<(String, String, String), JobOutcome>,
    /// Generator tails per scenario name: day-appends extend the
    /// materialized trace in O(appended days).
    trace_tails: HashMap<String, TraceTail>,
    /// Work-unit resume state per scenario name: day-appends continue
    /// every machine from the stored day boundary.
    checkpoints: HashMap<String, Arc<UnitCheckpoint>>,
}

impl FleetCache {
    /// Number of memoized job outcomes.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the cache holds no outcomes.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Number of memoized scenario traces.
    pub fn trace_count(&self) -> usize {
        self.traces.len()
    }

    /// Bytes the cached traces occupy, per the same footprint
    /// accounting the admission policy budgets with (struct, label,
    /// and sample storage — not samples alone).
    pub fn trace_bytes(&self) -> usize {
        self.traces
            .values()
            .map(|t| trace_footprint_bytes(t.label().len(), t.samples().len()))
            .sum()
    }

    /// Aggregate cost of every distinct job outcome the cache
    /// **currently holds** — one entry per (scenario, predictor,
    /// manager) triple, order-independent despite the map. Entries
    /// evicted by [`FleetCache::prune_to`] leave this aggregate; the
    /// eviction returns their cost in [`PruneStats::evicted_cost`] so
    /// a loop tracking lifetime totals can accumulate it separately.
    pub fn cost(&self) -> pred_metrics::CostAggregate {
        pred_metrics::CostAggregate::of(self.outcomes.values().map(|o| o.cost))
    }

    /// Evicts every trace, outcome, generator tail, and resume
    /// checkpoint belonging to scenarios **not** in `matrix` (after
    /// fleet-fault projection under the cache's bound seed, so the
    /// keys compared are the ones runs actually store). Call this from
    /// loops whose scenario set shrinks or rolls forward — the cache
    /// never evicts on its own, so a tuner sweeping hundreds of
    /// regimes would otherwise hold every retired trace to the end.
    ///
    /// Returns what was dropped; fold [`PruneStats::evicted_cost`]
    /// into your own aggregate if you report lifetime totals.
    ///
    /// # Errors
    ///
    /// Returns an error if a fleet fault fails to project or a
    /// scenario's site config is invalid.
    pub fn prune_to(&mut self, matrix: &FleetMatrix) -> Result<PruneStats, String> {
        let effective = project_fleet_faults_seeded(matrix, self.master_seed)?;
        let keep_jsons: HashSet<String> = effective
            .scenarios
            .iter()
            .map(|s| s.to_json().render())
            .collect();
        let keep_names: HashSet<&str> = effective
            .scenarios
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        let evicted_cost = pred_metrics::CostAggregate::of(
            self.outcomes
                .iter()
                .filter(|((scenario_json, _, _), _)| !keep_jsons.contains(scenario_json))
                .map(|(_, o)| o.cost),
        );
        let before_outcomes = self.outcomes.len();
        let before_traces = self.traces.len();
        let before_bytes = self.trace_bytes();
        self.outcomes
            .retain(|(scenario_json, _, _), _| keep_jsons.contains(scenario_json));
        self.traces.retain(|key, _| keep_jsons.contains(key));
        self.trace_tails
            .retain(|name, _| keep_names.contains(name.as_str()));
        self.checkpoints
            .retain(|name, _| keep_names.contains(name.as_str()));
        Ok(PruneStats {
            evicted_outcomes: before_outcomes - self.outcomes.len(),
            evicted_traces: before_traces - self.traces.len(),
            evicted_trace_bytes: before_bytes - self.trace_bytes(),
            evicted_cost,
        })
    }
}

/// Per-job metrics-log cap on the streamed path: scenarios whose
/// prediction log would exceed this fold records into O(1) streaming
/// accumulators (at the cost of one ROI pre-pass per scenario) instead
/// of materializing the log. 1 MiB keeps every sub-year scenario on the
/// cheap single-pass path while multi-year horizons stay bounded.
const STREAMED_LOG_CAP_BYTES: usize = 1 << 20;

/// The streamed metrics pass's record sink: a materialized log under
/// [`STREAMED_LOG_CAP_BYTES`], streaming protocol accumulators above
/// it. Both evaluate through the same accumulator code, so the variants
/// are bit-identical in output. Cloneable so a day-boundary
/// checkpoint can carry the sink's accumulated state.
#[derive(Clone)]
enum MetricsSink {
    Log(pred_metrics::PredictionLog),
    Streaming(StreamingEval),
}

impl RecordSink for MetricsSink {
    fn push_record(&mut self, record: pred_metrics::PredictionRecord) {
        match self {
            MetricsSink::Log(log) => log.push(record),
            MetricsSink::Streaming(eval) => eval.push_record(record),
        }
    }
}

/// One schedulable unit of a fleet run: **all** of one scenario's fresh
/// jobs, evaluated over a single slot pass — from the cached trace when
/// the scenario is admitted, from a generator stream otherwise.
struct WorkUnit {
    scenario_idx: usize,
    /// Fresh job indices, in matrix job order.
    job_indices: Vec<usize>,
    /// A validated day-append resume point: the pass walks only the
    /// appended days, continuing every machine from this state.
    resume: Option<Arc<UnitCheckpoint>>,
    /// Generator state standing in for [`UnitCheckpoint::synth`] when
    /// the checkpointed pass was materialized (no stream of its own)
    /// but the admission policy now streams the scenario — the stored
    /// [`TraceTail`] is the same day boundary, so the appended slots
    /// still have a source.
    resume_synth: Option<SynthCheckpoint>,
}

/// What evaluating one work unit yields: `(job index, outcome)` pairs,
/// the synthesis passes the unit spent (units only ever spend streamed
/// passes and ROI pre-passes; trace generations happen in phase 1),
/// and — when the pass was checkpoint-eligible — the end-of-horizon
/// machine state for the next day-append.
type UnitOutcomes = (
    Vec<(usize, JobOutcome)>,
    PassBreakdown,
    Option<UnitCheckpoint>,
);

/// The parallel fleet evaluator.
#[derive(Clone, Debug)]
pub struct FleetEngine {
    master_seed: u64,
    threads: Option<usize>,
    protocol: EvalProtocol,
    cache_policy: TraceCachePolicy,
    shards: Option<usize>,
    collector: Collector,
    quarantine: bool,
    chaos_unit_panic: Option<String>,
}

impl FleetEngine {
    /// An engine deriving all randomness from `master_seed`, evaluating
    /// under the paper's protocol, using all available cores and the
    /// adaptive trace-cache policy (small fleets materialize, fleets
    /// that would not fit in memory stream — byte-identical either
    /// way).
    pub fn new(master_seed: u64) -> Self {
        FleetEngine {
            master_seed,
            threads: None,
            protocol: EvalProtocol::paper(),
            cache_policy: TraceCachePolicy::default(),
            shards: None,
            collector: Collector::noop(),
            quarantine: false,
            chaos_unit_panic: None,
        }
    }

    /// Quarantines failing work units instead of aborting the run: a
    /// scenario whose unit errors or panics is excluded from the
    /// outcomes (its ranking table comes out empty), counted under
    /// `fleet/quarantined_units`, and reported in
    /// [`FleetResult::quarantined`] so callers can fold it into an
    /// explicit coverage manifest. Off by default — the classic
    /// behaviour propagates the first failure.
    pub fn with_quarantine(mut self, enabled: bool) -> Self {
        self.quarantine = enabled;
        self
    }

    /// Deterministic chaos injection for the quarantine path: the work
    /// unit for the named scenario panics at dispatch. Exists so the
    /// harness (and its tests) can drive a *real* in-process panic
    /// through `catch_unwind` end-to-end; useless — and off — in
    /// production runs.
    pub fn with_chaos_unit_panic(mut self, scenario: &str) -> Self {
        self.chaos_unit_panic = Some(scenario.to_string());
        self
    }

    /// Pins the worker-thread count (useful for determinism tests and
    /// benchmarking scaling).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Replaces the evaluation protocol.
    pub fn with_protocol(mut self, protocol: EvalProtocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Replaces the trace-cache policy (bounded budgets stream the
    /// overflow; outputs stay byte-identical either way).
    pub fn with_trace_cache(mut self, policy: TraceCachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// Routes [`FleetEngine::run`]/[`FleetEngine::run_cached`] through
    /// the sharded reduction with `shards` shards merged back into the
    /// returned scorecard — byte-identical to the monolithic reduction,
    /// so callers (e.g. the tuner) consume sharded results unchanged.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Attaches an observability collector: runs record ledger
    /// counters and phase spans into it. The default is the no-op
    /// collector, whose calls cost one branch — outputs are
    /// byte-identical either way.
    pub fn with_collector(mut self, collector: Collector) -> Self {
        self.collector = collector;
        self
    }

    /// The attached collector (no-op unless one was attached).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// The master seed.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The trace-cache policy.
    pub fn trace_cache_policy(&self) -> TraceCachePolicy {
        self.cache_policy
    }

    /// An empty cache bound to this engine's seed and protocol.
    pub fn new_cache(&self) -> FleetCache {
        FleetCache {
            master_seed: self.master_seed,
            protocol: Some(self.protocol),
            traces: HashMap::new(),
            outcomes: HashMap::new(),
            trace_tails: HashMap::new(),
            checkpoints: HashMap::new(),
        }
    }

    /// Runs the whole matrix from scratch.
    ///
    /// # Errors
    ///
    /// Returns the first trace-generation or hardware-construction
    /// error; a per-job panic (a contract violation) is caught at the
    /// work-unit boundary and returned as an error naming its
    /// scenario — or, under [`FleetEngine::with_quarantine`], excluded
    /// from the outcomes and reported in [`FleetResult::quarantined`].
    pub fn run(&self, matrix: &FleetMatrix) -> Result<FleetResult, String> {
        let mut cache = self.new_cache();
        self.run_cached(matrix, &mut cache)
    }

    /// Runs the matrix, reusing every trace and job outcome already in
    /// `cache` and evaluating only what changed since the cache was
    /// filled. New traces and outcomes are added to the cache.
    ///
    /// The scorecard is **byte-identical** to what [`FleetEngine::run`]
    /// would produce for the same matrix: jobs are pure functions of
    /// (scenario, predictor, manager, master seed), so a memoized
    /// outcome equals a recomputed one. Only the non-deterministic
    /// wall-time/trace-memory accounting (never rendered into JSON) can
    /// differ.
    ///
    /// # Errors
    ///
    /// Returns an error if the cache is bound to a different seed or
    /// protocol, or on the first trace-generation/hardware error.
    pub fn run_cached(
        &self,
        matrix: &FleetMatrix,
        cache: &mut FleetCache,
    ) -> Result<FleetResult, String> {
        self.check_cache(cache)?;
        self.install(|| {
            let _run_span = self.collector.span("fleet");
            let evaluated = self.evaluate_matrix(matrix, cache)?;
            let mut scorecard = match self.shards {
                None => {
                    let _span = self.collector.span("fleet/score");
                    Scorecard::build(&evaluated.effective, &evaluated.outcomes, self.master_seed)
                }
                Some(count) => {
                    let count = self.clamp_shard_count(count, evaluated.effective.scenarios.len());
                    let _span = self.collector.span("fleet/score");
                    let (manifest, shards) = Self::shard_outcomes(
                        &evaluated.effective,
                        &evaluated.outcomes,
                        self.master_seed,
                        count,
                    )?;
                    drop(_span);
                    let _span = self.collector.span("fleet/merge");
                    Scorecard::merge_shards_observed(&manifest, &shards, &self.collector)?
                }
            };
            self.collector.count(
                "score/scenarios_ranked",
                evaluated.effective.scenarios.len() as u64,
            );
            scorecard.trace_budget = Some(evaluated.resolved_budget);
            Ok(FleetResult {
                outcomes: evaluated.outcomes,
                scorecard,
                cached_jobs: evaluated.cached_jobs,
                streamed_jobs: evaluated.streamed_jobs,
                passes: evaluated.passes,
                quarantined: evaluated.quarantined,
            })
        })
    }

    /// Runs the matrix and reduces into `shard_count` scorecard shards
    /// plus the manifest — the artifact set for matrices whose
    /// monolithic scorecard is too large for one document. Scenarios
    /// are assigned round-robin (`scenario_idx % shard_count`), so
    /// multi-year entries spread across shards.
    ///
    /// A shard count outside `1..=scenario_count` is **clamped** into
    /// range — the same graceful degradation the routed
    /// [`FleetEngine::with_shards`] path has always had, so the two
    /// entry points can no longer diverge. A clamp is recorded in the
    /// run ledger under the `shards/clamped` label.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn run_sharded(
        &self,
        matrix: &FleetMatrix,
        shard_count: usize,
    ) -> Result<ShardedFleetResult, String> {
        let mut cache = self.new_cache();
        self.run_sharded_cached(matrix, shard_count, &mut cache)
    }

    /// [`FleetEngine::run_sharded`] through a warm cache.
    ///
    /// # Errors
    ///
    /// As [`FleetEngine::run_sharded`], plus cache-binding mismatches.
    pub fn run_sharded_cached(
        &self,
        matrix: &FleetMatrix,
        shard_count: usize,
        cache: &mut FleetCache,
    ) -> Result<ShardedFleetResult, String> {
        self.check_cache(cache)?;
        self.install(|| {
            let _run_span = self.collector.span("fleet");
            let evaluated = self.evaluate_matrix(matrix, cache)?;
            let shard_count =
                self.clamp_shard_count(shard_count, evaluated.effective.scenarios.len());
            let _span = self.collector.span("fleet/score");
            let (manifest, shards) = Self::shard_outcomes(
                &evaluated.effective,
                &evaluated.outcomes,
                self.master_seed,
                shard_count,
            )?;
            self.collector.count(
                "score/scenarios_ranked",
                evaluated.effective.scenarios.len() as u64,
            );
            Ok(ShardedFleetResult {
                manifest,
                shards,
                outcomes: evaluated.outcomes,
                cached_jobs: evaluated.cached_jobs,
                streamed_jobs: evaluated.streamed_jobs,
                passes: evaluated.passes,
                quarantined: evaluated.quarantined,
            })
        })
    }

    /// Re-scores an evolved matrix through the cheap path its
    /// [`FleetDelta`] classification routes to, against the warm cache
    /// of the previous run.
    ///
    /// The delta is advisory routing metadata — correctness never
    /// depends on it. Every path funnels into [`FleetEngine::run_cached`],
    /// whose per-scenario resume/reuse machinery independently verifies
    /// (by rendered scenario JSON) that each cached artifact still
    /// matches the incoming matrix, so a stale or wrong classification
    /// degrades to colder work, never to a wrong scorecard:
    ///
    /// * [`FleetDelta::DayAppend`] — appended days resume from the unit
    ///   checkpoints and extended traces (O(delta) work),
    /// * [`FleetDelta::ScenarioEdit`] — only the touched scenarios
    ///   re-evaluate; everything else replays from the outcome cache,
    /// * [`FleetDelta::PredictorRetire`] — no simulation at all: the
    ///   surviving outcomes re-rank from cache,
    /// * [`FleetDelta::Unchanged`] — a pure cache replay.
    ///
    /// Per-unit `delta/*` ledger counters record the classification
    /// (`delta/day_appends`, `delta/scenario_edits`,
    /// `delta/predictor_retirements`), one increment per delta unit.
    ///
    /// # Errors
    ///
    /// As [`FleetEngine::run_cached`].
    pub fn run_delta(
        &self,
        matrix: &FleetMatrix,
        cache: &mut FleetCache,
        delta: &FleetDelta,
    ) -> Result<FleetResult, String> {
        if self.collector.is_enabled() {
            match delta {
                FleetDelta::DayAppend { scenarios } => {
                    for name in scenarios {
                        self.collector.count_scenario(name, "delta/day_appends", 1);
                    }
                }
                FleetDelta::ScenarioEdit { scenarios } => {
                    for name in scenarios {
                        self.collector
                            .count_scenario(name, "delta/scenario_edits", 1);
                    }
                }
                FleetDelta::PredictorRetire { predictors } => {
                    self.collector
                        .count("delta/predictor_retirements", predictors.len() as u64);
                }
                FleetDelta::Unchanged => {}
            }
        }
        self.run_cached(matrix, cache)
    }

    /// Clamps a requested shard count into `1..=scenario_count` — the
    /// documented degradation shared by **every** sharded entry point
    /// (routed [`FleetEngine::with_shards`] and the explicit
    /// [`FleetEngine::run_sharded`] family), recording a
    /// `shards/clamped` ledger label when it bites.
    fn clamp_shard_count(&self, requested: usize, scenario_count: usize) -> usize {
        let clamped = requested.clamp(1, scenario_count.max(1));
        if clamped != requested && self.collector.is_enabled() {
            self.collector
                .label("shards/clamped", &format!("{requested}->{clamped}"));
        }
        clamped
    }

    fn check_cache(&self, cache: &mut FleetCache) -> Result<(), String> {
        let unbound = cache.protocol.is_none()
            && cache.outcomes.is_empty()
            && cache.traces.is_empty()
            && cache.trace_tails.is_empty()
            && cache.checkpoints.is_empty();
        if !unbound
            && (cache.master_seed != self.master_seed || cache.protocol != Some(self.protocol))
        {
            return Err("fleet cache is bound to a different master seed or protocol".to_string());
        }
        cache.master_seed = self.master_seed;
        cache.protocol = Some(self.protocol);
        Ok(())
    }

    fn install<T>(&self, f: impl FnOnce() -> Result<T, String>) -> Result<T, String> {
        match self.threads {
            Some(threads) => ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .map_err(|e| e.to_string())?
                .install(f),
            None => f(),
        }
    }

    /// Projects the matrix's correlated fleet-wide events into each
    /// affected scenario's fault list. Every event realizes from one
    /// shared seed, so it hits all its scenarios on the same days; the
    /// projected faults live in the scenario (and hence its JSON/cache
    /// key), so caching and determinism need no special cases.
    fn project_fleet_faults(&self, matrix: &FleetMatrix) -> Result<FleetMatrix, String> {
        project_fleet_faults_seeded(matrix, self.master_seed)
    }

    /// The full evaluation pass: fleet-fault projection, cache-policy
    /// admission, parallel materialized/streamed work units, cache
    /// fill, and assembly in job order.
    fn evaluate_matrix(
        &self,
        matrix: &FleetMatrix,
        cache: &mut FleetCache,
    ) -> Result<EvaluatedMatrix, String> {
        let effective = {
            let _span = self.collector.span("fleet/project");
            self.collector
                .count("faults/fleet_events", matrix.fleet_faults.len() as u64);
            if matrix.fleet_faults.is_empty() {
                matrix.clone()
            } else {
                self.project_fleet_faults(matrix)?
            }
        };
        let matrix = &effective;
        self.collector.count(
            "faults/fault_specs",
            matrix.scenarios.iter().map(|s| s.faults.len() as u64).sum(),
        );

        // Stable per-scenario cache keys: the full JSON form.
        let scenario_keys: Vec<String> = matrix
            .scenarios
            .iter()
            .map(|s| s.to_json().render())
            .collect();
        let predictor_labels: Vec<String> = matrix.predictors.iter().map(|p| p.label()).collect();
        let manager_labels: Vec<String> = matrix.managers.iter().map(|m| m.label()).collect();

        // Day-append resume candidates: a scenario may continue from
        // its stored checkpoint iff it is byte-identical to the
        // checkpointed scenario except for a strictly larger `days`,
        // the predictor/manager axes match, and no trace-gap fault
        // would re-realize its placement under the longer horizon.
        let resume_candidates: Vec<Option<Arc<UnitCheckpoint>>> = matrix
            .scenarios
            .iter()
            .map(|scenario| {
                let ck = cache.checkpoints.get(&scenario.name)?;
                if scenario.days <= ck.days
                    || scenario
                        .faults
                        .iter()
                        .any(|f| matches!(f, FaultSpec::TraceGap { .. }))
                    || ck.predictor_labels != predictor_labels
                    || ck.manager_labels != manager_labels
                {
                    return None;
                }
                let mut at_checkpoint = scenario.clone();
                at_checkpoint.days = ck.days;
                (at_checkpoint.to_json().render() == ck.scenario_json).then(|| Arc::clone(ck))
            })
            .collect();

        // Cache-policy admission, greedily in scenario order — a pure
        // function of the matrix and the budget resolved once here, so
        // the materialize/stream split never depends on thread timing
        // (an adaptive policy consults memory exactly once per run).
        // Warm traces stay admitted (they are already paid for) and
        // count toward the budget.
        let admission_span = self.collector.span("fleet/admission");
        let resolved = self.cache_policy.resolve();
        let resolved_budget = resolved.bytes;
        let mut admitted = vec![false; matrix.scenarios.len()];
        let mut warm_traces = 0u64;
        let mut running_total = 0u64;
        for (idx, scenario) in matrix.scenarios.iter().enumerate() {
            let bytes = Self::trace_bytes(scenario)?;
            let warm = cache.traces.contains_key(&scenario_keys[idx]);
            warm_traces += warm as u64;
            if warm || TraceCachePolicy::admits(resolved_budget, running_total, bytes) {
                admitted[idx] = true;
                running_total = running_total.saturating_add(bytes);
            }
        }
        if self.collector.is_enabled() {
            self.collector.label(
                "admission/trace_budget_source",
                &resolved.source.to_string(),
            );
            if let Some(bytes) = resolved.bytes {
                self.collector.gauge("admission/trace_budget_bytes", bytes);
            }
            let materialized = admitted.iter().filter(|&&a| a).count() as u64;
            self.collector
                .count("admission/materialized_scenarios", materialized);
            self.collector.count(
                "admission/streamed_scenarios",
                matrix.scenarios.len() as u64 - materialized,
            );
            self.collector
                .count("admission/admitted_trace_bytes", running_total);
            self.collector.count("cache/trace_hits", warm_traces);
        }
        drop(admission_span);

        // Phase 1: traces for admitted scenarios the cache has not
        // seen. A missing trace whose scenario only grew in days is
        // *extended* from its stored generator tail — O(appended
        // days), bit-identical to a cold generation by the synth
        // crate's resume contract — and re-keyed under the grown
        // scenario's JSON; everything else generates cold from day
        // zero, in parallel, shared read-only by every job of that
        // scenario.
        let synthesis_span = self.collector.span("fleet/synthesis");
        let missing: Vec<usize> = (0..matrix.scenarios.len())
            .filter(|&idx| admitted[idx] && !cache.traces.contains_key(&scenario_keys[idx]))
            .collect();
        let mut cold: Vec<usize> = Vec::new();
        let mut extensions: Vec<(usize, TraceTail)> = Vec::new();
        let mut synthesis_cost = SynthCounters::default();
        for &idx in &missing {
            let scenario = &matrix.scenarios[idx];
            let extendable = cache.trace_tails.get(&scenario.name).and_then(|tail| {
                if scenario.days <= tail.days || !cache.traces.contains_key(&tail.scenario_json) {
                    return None;
                }
                let mut at_tail = scenario.clone();
                at_tail.days = tail.days;
                (at_tail.to_json().render() == tail.scenario_json).then(|| tail.clone())
            });
            match extendable {
                Some(old) => extensions.push((idx, old)),
                None => cold.push(idx),
            }
        }
        // Tail synthesis is independent per scenario — run it with the
        // same parallelism as cold generation; only the cache updates
        // stay sequential.
        type AppendedTail = (Vec<f64>, SynthCounters, SynthCheckpoint);
        let appended_tails: Vec<Result<AppendedTail, String>> = extensions
            .par_iter()
            .map(|(idx, old)| {
                let scenario = &matrix.scenarios[*idx];
                TraceGenerator::new(scenario.site_config()?, self.scenario_seed(scenario))
                    .resume_days_counted(old.tail.clone(), scenario.days)
                    .map_err(|e| e.to_string())
            })
            .collect();
        let extended = extensions.len();
        for ((idx, old), appended) in extensions.into_iter().zip(appended_tails) {
            let (appended, counters, new_tail) = appended?;
            synthesis_cost.add(counters);
            let scenario = &matrix.scenarios[idx];
            // The prefix trace is being re-keyed under the grown
            // scenario anyway — take it out of the map and extend its
            // sample storage in place rather than copying O(horizon)
            // samples per appended day.
            let prefix = cache
                .traces
                .remove(&old.scenario_json)
                .expect("extendability checked the prefix is cached");
            let label = prefix.label().to_string();
            let resolution = prefix.resolution();
            let mut samples = prefix.into_samples();
            samples.extend_from_slice(&appended);
            let trace = PowerTrace::new(label, resolution, samples).map_err(|e| e.to_string())?;
            cache.traces.insert(scenario_keys[idx].clone(), trace);
            cache.trace_tails.insert(
                scenario.name.clone(),
                TraceTail {
                    scenario_json: scenario_keys[idx].clone(),
                    days: scenario.days,
                    tail: new_tail,
                },
            );
        }
        let generated: Vec<Result<(PowerTrace, SynthCounters, SynthCheckpoint), String>> = cold
            .par_iter()
            .map(|&idx| {
                let scenario = &matrix.scenarios[idx];
                TraceGenerator::new(scenario.site_config()?, self.scenario_seed(scenario))
                    .generate_days_checkpointed(scenario.days)
                    .map_err(|e| e.to_string())
            })
            .collect();
        for (&idx, generated) in cold.iter().zip(generated) {
            let (trace, counters, tail) = generated?;
            synthesis_cost.add(counters);
            cache.traces.insert(scenario_keys[idx].clone(), trace);
            cache.trace_tails.insert(
                matrix.scenarios[idx].name.clone(),
                TraceTail {
                    scenario_json: scenario_keys[idx].clone(),
                    days: matrix.scenarios[idx].days,
                    tail,
                },
            );
        }
        if self.collector.is_enabled() {
            self.collector
                .count("synth/trace_generations", cold.len() as u64);
            if extended > 0 {
                self.collector
                    .count("delta/trace_extensions", extended as u64);
            }
            // Keystream/draw totals for the whole materialization
            // phase: one ledger update, never per slot or per trace.
            self.collector
                .count("synth/keystream_blocks", synthesis_cost.keystream_blocks);
            self.collector
                .count("synth/normal_draws", synthesis_cost.normal_draws);
        }
        drop(synthesis_span);

        // Phase 2: only the jobs the cache cannot answer, grouped into
        // **one work unit per scenario** — the unit's single slot pass
        // (over the cached trace or a generator stream) feeds every
        // fresh job's machines, so adding candidates to the matrix adds
        // per-slot arithmetic, never whole passes.
        let jobs = matrix.jobs();
        let job_keys: Vec<(String, String, String)> = jobs
            .iter()
            .map(|job| {
                (
                    scenario_keys[job.scenario_idx].clone(),
                    predictor_labels[job.predictor_idx].clone(),
                    manager_labels[job.manager_idx].clone(),
                )
            })
            .collect();
        let fresh: Vec<usize> = (0..jobs.len())
            .filter(|&idx| !cache.outcomes.contains_key(&job_keys[idx]))
            .collect();
        let cached_jobs = jobs.len() - fresh.len();
        if self.collector.is_enabled() {
            self.collector.count("jobs/evaluated", jobs.len() as u64);
            self.collector.count("cache/job_hits", cached_jobs as u64);
            self.collector.count("cache/job_misses", fresh.len() as u64);
        }

        let mut jobs_by_scenario: HashMap<usize, Vec<usize>> = HashMap::new();
        for &idx in &fresh {
            jobs_by_scenario
                .entry(jobs[idx].scenario_idx)
                .or_default()
                .push(idx);
        }
        let mut streamed_jobs = 0;
        let mut units: Vec<WorkUnit> = Vec::new();
        for (scenario_idx, &scenario_admitted) in admitted.iter().enumerate() {
            if let Some(job_indices) = jobs_by_scenario.remove(&scenario_idx) {
                if !scenario_admitted {
                    streamed_jobs += job_indices.len();
                }
                // Attach the resume point only when the unit can
                // actually honour it: the checkpointed machines cover
                // the full job cross and the appended slots have a
                // source — the extended trace when materialized, a
                // generator state when streamed (the checkpoint's own,
                // or the stored trace tail when the admission policy
                // flipped the scenario from materialized to streamed
                // between runs). The resumed pass keeps the
                // checkpoint's record sink regardless of what a cold
                // pass at the new horizon would pick — the two sinks
                // are bit-identical by contract, so an admission or
                // log-cap flip never forces a cold pass by itself.
                // Anything else falls back to a cold pass.
                let scenario = &matrix.scenarios[scenario_idx];
                let resume = resume_candidates[scenario_idx].as_ref().and_then(|ck| {
                    let full_cross =
                        job_indices.len() == matrix.predictors.len() * matrix.managers.len();
                    let synth_override = (!scenario_admitted && ck.synth.is_none())
                        .then(|| {
                            cache.trace_tails.get(&scenario.name).and_then(|tail| {
                                (tail.days == ck.days && tail.scenario_json == ck.scenario_json)
                                    .then(|| tail.tail.clone())
                            })
                        })
                        .flatten();
                    let source_ok = if scenario_admitted {
                        cache.traces.contains_key(&scenario_keys[scenario_idx])
                    } else {
                        ck.synth.is_some() || synth_override.is_some()
                    };
                    let ok = full_cross && source_ok;
                    if !ok && self.collector.is_enabled() {
                        self.collector
                            .count_scenario(&scenario.name, "delta/cold_fallbacks", 1);
                    }
                    ok.then(|| (Arc::clone(ck), synth_override))
                });
                let (resume, resume_synth) = match resume {
                    Some((ck, synth_override)) => (Some(ck), synth_override),
                    None => (None, None),
                };
                units.push(WorkUnit {
                    scenario_idx,
                    job_indices,
                    resume,
                    resume_synth,
                });
            }
        }

        // Each unit runs under `catch_unwind`: a panicking unit (a
        // contract violation in predictor/manager code, or injected
        // chaos) surfaces as `Err` naming its scenario instead of
        // unwinding through rayon and aborting the whole process.
        let evaluated: Vec<Result<UnitOutcomes, String>> = units
            .par_iter()
            .map(|unit| {
                let scenario_name = &matrix.scenarios[unit.scenario_idx].name;
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if self.chaos_unit_panic.as_deref() == Some(scenario_name.as_str()) {
                        panic!("chaos: injected work-unit panic");
                    }
                    let trace = admitted[unit.scenario_idx]
                        .then(|| &cache.traces[&scenario_keys[unit.scenario_idx]]);
                    self.evaluate_scenario_unit(
                        matrix,
                        unit.scenario_idx,
                        &unit.job_indices,
                        &jobs,
                        trace,
                        unit.resume.as_deref(),
                        unit.resume_synth.as_ref(),
                        None,
                    )
                }))
                .unwrap_or_else(|payload| {
                    Err(format!(
                        "scenario {scenario_name:?}: work unit panicked: {}",
                        panic_message(&payload)
                    ))
                })
            })
            .collect();
        let mut passes = PassBreakdown {
            trace_generations: cold.len(),
            trace_extensions: extended,
            ..PassBreakdown::default()
        };
        let mut quarantined: Vec<QuarantinedScenario> = Vec::new();
        for (unit, unit_outcomes) in units.iter().zip(evaluated) {
            let (unit_outcomes, unit_passes, checkpoint) = match unit_outcomes {
                Ok(result) => result,
                Err(error) if self.quarantine => {
                    let name = matrix.scenarios[unit.scenario_idx].name.clone();
                    if self.collector.is_enabled() {
                        self.collector
                            .count_scenario(&name, "fleet/quarantined_units", 1);
                    }
                    quarantined.push(QuarantinedScenario {
                        scenario: name,
                        error,
                    });
                    continue;
                }
                Err(error) => return Err(error),
            };
            passes.add(unit_passes);
            if let Some(checkpoint) = checkpoint {
                cache.checkpoints.insert(
                    matrix.scenarios[unit.scenario_idx].name.clone(),
                    Arc::new(checkpoint),
                );
            }
            for (idx, outcome) in unit_outcomes {
                cache.outcomes.insert(job_keys[idx].clone(), outcome);
            }
        }

        // Phase 3: assemble in job order (cached outcomes carry stale
        // matrix coordinates from the run that produced them — rewrite).
        // Quarantined scenarios' jobs have no outcome and are skipped;
        // without quarantine every key is present (a missing one would
        // have errored above).
        let outcomes: Vec<JobOutcome> = jobs
            .iter()
            .zip(&job_keys)
            .filter_map(|(job, key)| {
                cache.outcomes.get(key).map(|cached| {
                    let mut outcome = cached.clone();
                    outcome.spec = *job;
                    outcome
                })
            })
            .collect();
        Ok(EvaluatedMatrix {
            effective,
            outcomes,
            cached_jobs,
            streamed_jobs,
            passes,
            resolved_budget: resolved,
            quarantined,
        })
    }

    /// Splits outcomes into per-shard scorecards plus the manifest.
    fn shard_outcomes(
        matrix: &FleetMatrix,
        outcomes: &[JobOutcome],
        master_seed: u64,
        shard_count: usize,
    ) -> Result<(ShardManifest, Vec<ScorecardShard>), String> {
        if shard_count == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if shard_count > matrix.scenarios.len() {
            return Err(format!(
                "shard count {shard_count} exceeds the {} scenarios",
                matrix.scenarios.len()
            ));
        }
        let rankings = Scorecard::per_scenario_rankings(matrix, outcomes);
        let manifest = ShardManifest {
            master_seed,
            shard_count,
            scenarios: matrix
                .scenarios
                .iter()
                .enumerate()
                .map(|(idx, s)| (s.name.clone(), idx % shard_count))
                .collect(),
        };
        let shards = (0..shard_count)
            .map(|shard_index| {
                let per_scenario: Vec<_> = rankings
                    .iter()
                    .enumerate()
                    .filter(|(idx, _)| idx % shard_count == shard_index)
                    .map(|(_, ranking)| ranking.clone())
                    .collect();
                let cost = pred_metrics::CostAggregate::of(
                    outcomes
                        .iter()
                        .filter(|o| o.spec.scenario_idx % shard_count == shard_index)
                        .map(|o| o.cost),
                );
                ScorecardShard {
                    shard_index,
                    master_seed,
                    per_scenario,
                    cost,
                }
            })
            .collect();
        Ok((manifest, shards))
    }

    /// The deterministic per-scenario seed: stable across runs, thread
    /// counts, and platforms; distinct per scenario name.
    ///
    /// The hashed string is *salted*: a custom site built from the same
    /// scenario name carries `seed_stream = fnv1a(name)`, and the trace
    /// generator XORs `seed ^ seed_stream` — hashing the bare name here
    /// would cancel it out and hand every custom-site scenario the same
    /// RNG stream (a regression test pins this).
    fn scenario_seed(&self, scenario: &Scenario) -> u64 {
        let salted = format!("fleet-scenario/{}", scenario.name);
        solar_trace::hash::fnv1a(&salted) ^ self.master_seed.rotate_left(17)
    }

    /// Bytes a scenario's materialized trace would occupy — the same
    /// footprint [`FleetCache::trace_bytes`] reports once the trace
    /// exists (the generated trace is labelled with the site config's
    /// name, known before generation).
    fn trace_bytes(scenario: &Scenario) -> Result<u64, String> {
        let config = scenario.site_config()?;
        Ok(trace_footprint_bytes(
            config.name.len(),
            scenario.days * config.resolution.samples_per_day(),
        ) as u64)
    }

    /// Generates a scenario's trace along with its synthesis-cost
    /// counters (keystream blocks, normal draws). The engine proper now
    /// synthesizes through the checkpointing path in `evaluate_matrix`;
    /// this one-shot variant remains as the test oracle for it.
    #[cfg(test)]
    fn generate_trace(&self, scenario: &Scenario) -> Result<(PowerTrace, SynthCounters), String> {
        let config = scenario.site_config()?;
        TraceGenerator::new(config, self.scenario_seed(scenario))
            .generate_days_counted(scenario.days)
            .map_err(|e| e.to_string())
    }

    /// The universal fast path: **one slot pass per scenario** drives
    /// every fresh job's state machines simultaneously. The slots come
    /// from the cached trace when the scenario is admitted
    /// (materialized), else from a [`solar_synth::SlotStream`] holding
    /// one day of samples; both sources produce the identical slot
    /// values, so the choice never shows in the output.
    ///
    /// Jobs whose predictor is float WCMA are additionally folded into
    /// a shared [`CandidateBank`] per pass half (metrics, simulation):
    /// every such job of a scenario sees the identical observation
    /// stream (its fault injector realizes from the same seed), so the
    /// bank computes each candidate's predictions once per slot with
    /// the per-candidate arithmetic unchanged — bit-identical to a solo
    /// run, pinned by core property tests and the engine equality tests
    /// here.
    ///
    /// The metrics pass picks its record sink by horizon: short
    /// scenarios collect a `PredictionLog`; past
    /// [`STREAMED_LOG_CAP_BYTES`] per job the records fold into O(1)
    /// protocol accumulators ([`pred_metrics::StreamingEval`]) instead,
    /// with an ROI pre-pass supplying the peak the paper's filter needs
    /// up front — a view walk when materialized, one extra generator
    /// pass when streamed. The two sinks are bit-identical, so the
    /// choice is invisible in the output.
    ///
    /// Returns the job outcomes, how many synthesis passes the unit
    /// spent (0 for materialized units, 1 per generator pass else), and
    /// — when the unit covers the full job cross and nothing blocks
    /// checkpointing — a [`UnitCheckpoint`] of every state machine at
    /// the final day boundary, ready for an O(delta) continuation.
    ///
    /// With `resume`, every machine is restored from the checkpoint and
    /// only the appended days `checkpoint.days..scenario.days` are
    /// walked; the output is bit-identical to a cold full-horizon pass
    /// (pinned by engine tests). A resumed pass keeps the checkpoint's
    /// record sink even when the new horizon would pick the other one —
    /// the sinks are bit-identical, so admission flips stay resumable.
    /// `resume_synth` supplies the generator state when the checkpoint
    /// itself has none (a materialized pass whose scenario now
    /// streams). If the extended ROI peak disagrees with the
    /// checkpointed one, the unit transparently falls back to a cold
    /// pass (`delta/peak_fallbacks`), reusing the already-extended peak
    /// via `known_roi` so the fallback never re-synthesizes a prepass.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_scenario_unit(
        &self,
        matrix: &FleetMatrix,
        scenario_idx: usize,
        job_indices: &[usize],
        jobs: &[JobSpec],
        trace: Option<&PowerTrace>,
        resume: Option<&UnitCheckpoint>,
        resume_synth: Option<&SynthCheckpoint>,
        known_roi: Option<(f64, Option<f64>)>,
    ) -> Result<UnitOutcomes, String> {
        let started = Instant::now();
        let scenario = &matrix.scenarios[scenario_idx];
        let _unit_span = self
            .collector
            .span_scenario("fleet/simulate", &scenario.name);
        let n = scenario.slots_per_day as usize;
        let slots = SlotsPerDay::new(scenario.slots_per_day).map_err(|e| e.to_string())?;
        let slot_seconds = slots.slot_seconds_f64();
        let fault_seed = self.scenario_seed(scenario) ^ 0xFA01;
        let node_config = scenario
            .node
            .node_config(storage_capacity_factor(&scenario.faults))?;
        let mut passes = PassBreakdown::default();
        // Keystream/normal-draw totals across this unit's generator
        // streams (ROI prepass + evaluation pass); merged into the
        // ledger once at the end of the unit, never per slot.
        let mut synth_cost = SynthCounters::default();
        // First day this pass actually walks: 0 cold, the checkpointed
        // horizon when resuming.
        let start_day = resume.map_or(0, |r| r.days);

        let view = match trace {
            Some(trace) => Some(SlotView::new(trace, slots).map_err(|e| e.to_string())?),
            None => None,
        };
        let generator = match view {
            Some(_) => None,
            None => Some(TraceGenerator::new(
                scenario.site_config()?,
                self.scenario_seed(scenario),
            )),
        };

        // Sink selection (see the method docs): materialized units
        // always fold records straight into O(1) streaming accumulators
        // (their ROI pre-pass is a cheap view walk, and skipping the
        // log halves record handling); streamed units only pay the
        // extra generator pre-pass once the log would exceed the cap.
        // A resumed pass always feeds streaming accumulators: a
        // checkpointed log is re-folded into one at restore (see the
        // feed restore below), and the sinks are bit-identical, so the
        // choice a cold pass at the new horizon would make is moot.
        let log_bytes = scenario.days * n * std::mem::size_of::<pred_metrics::PredictionRecord>();
        let streaming_eval =
            resume.is_some() || view.is_some() || log_bytes > STREAMED_LOG_CAP_BYTES;

        // ROI pre-pass (streaming sinks only): the peak of the (dimmed)
        // reference means over every slot that becomes a record — all
        // but the final one, mirroring `PredictionLog::peak_actual_mean`
        // exactly. The probe injector is only consulted for its
        // deterministic sky factor (no per-slot RNG draws happen here).
        // A resumed pass restores the checkpointed running peak and the
        // pending (not-yet-absorbed) final mean and walks only the
        // appended days — sequential-max makes that equal to the cold
        // full walk.
        let mut roi_peak = 0.0_f64;
        let mut roi_pending_mean: Option<f64> = None;
        if let Some(r) = resume {
            roi_peak = r.roi_peak;
            roi_pending_mean = r.roi_pending_mean;
        }
        if let (true, Some((peak, pending))) = (streaming_eval, known_roi) {
            // A peak fallback already walked the full horizon and knows
            // the extended peak (bit-equal to what this prepass would
            // compute); reuse it rather than synthesizing a second
            // prepass just to rediscover it.
            roi_peak = peak;
            roi_pending_mean = pending;
        } else if streaming_eval {
            let sky_probe = FaultInjector::new(&scenario.faults, fault_seed, scenario.days, n);
            let mut absorb = |day: usize, mean_power: f64| {
                if let Some(mean) = roi_pending_mean.take() {
                    roi_peak = roi_peak.max(mean);
                }
                roi_pending_mean = Some(mean_power * sky_probe.sky_factor(day));
            };
            match (&view, &generator) {
                (Some(view), _) => {
                    for day in start_day..view.days() {
                        for slot in 0..n {
                            absorb(day, view.mean_power(day, slot));
                        }
                    }
                }
                (None, Some(generator)) => {
                    passes.roi_prepasses += 1;
                    let mut stream = match resume {
                        None => generator
                            .slot_stream(scenario.days, slots)
                            .map_err(|e| e.to_string())?,
                        Some(r) => generator
                            .slot_stream_from(
                                r.synth
                                    .clone()
                                    .or_else(|| resume_synth.cloned())
                                    .expect("streamed resume carries a synth source"),
                                scenario.days,
                                slots,
                            )
                            .map_err(|e| e.to_string())?,
                    };
                    for slot in stream.by_ref() {
                        absorb(slot.day, slot.mean_power);
                    }
                    synth_cost.add(stream.counters());
                }
                (None, None) => unreachable!("unit has a view or a generator"),
            }
        }

        // The streaming protocol's inclusion filter consulted `roi_peak`
        // for every prefix slot. If the appended days raised the peak,
        // checkpointed streaming *accumulators* were filtered against a
        // different peak than a cold run would use — the continuation
        // would not be byte-identical, so fall back to a cold pass
        // (rare: peaks are typically set by the climatology, not the
        // tail). A checkpointed *log* is immune: its records re-fold
        // against the extended peak at restore, whatever it is.
        if let Some(r) = resume {
            if r.streaming_eval && roi_peak.to_bits() != r.roi_peak.to_bits() {
                if self.collector.is_enabled() {
                    self.collector
                        .count_scenario(&scenario.name, "delta/peak_fallbacks", 1);
                }
                return self.evaluate_scenario_unit(
                    matrix,
                    scenario_idx,
                    job_indices,
                    jobs,
                    trace,
                    None,
                    None,
                    Some((roi_peak, roi_pending_mean)),
                );
            }
        }

        // Distinct predictors among the fresh jobs: the metrics pass
        // and the simulation pass's *predictions* are pure functions of
        // (scenario, predictor) — managers only steer duty — so all
        // per-slot kernel work and record assembly happens once per
        // distinct predictor, and every job reuses its predictor's
        // summary and prediction stream.
        let mut distinct_predictors: Vec<usize> = Vec::new();
        let job_kernel: Vec<usize> = job_indices
            .iter()
            .map(|&job_idx| {
                let predictor_idx = jobs[job_idx].predictor_idx;
                match distinct_predictors.iter().position(|&p| p == predictor_idx) {
                    Some(slot) => slot,
                    None => {
                        distinct_predictors.push(predictor_idx);
                        distinct_predictors.len() - 1
                    }
                }
            })
            .collect();

        // Kernel per distinct predictor: float WCMA folds into one
        // shared bank; everything else gets one owned instance. One
        // kernel serves *both* pass halves, because what the metrics
        // predictor observes is bit-identical to what the simulation
        // predictor observes: measurement corruption never depends on
        // the harvest argument (pinned by a faults.rs test), so the
        // historically separate per-pass predictor instances always
        // evolved in lockstep — one instance now produces that shared
        // prediction stream once.
        enum Kernel {
            Banked(usize),
            Solo(usize),
        }
        let mut kernels: Vec<Kernel> = Vec::with_capacity(distinct_predictors.len());
        let mut bank_params: Vec<solar_predict::WcmaParams> = Vec::new();
        let mut solo: Vec<Box<dyn Predictor>> = Vec::new();
        for &predictor_idx in &distinct_predictors {
            let spec = &matrix.predictors[predictor_idx];
            match *spec {
                crate::PredictorSpec::Wcma { alpha, days, k } => {
                    bank_params.push(
                        solar_predict::WcmaParams::new(alpha, days, k, n)
                            .map_err(|e| e.to_string())?,
                    );
                    kernels.push(Kernel::Banked(bank_params.len() - 1));
                }
                _ => {
                    solo.push(spec.build(n)?);
                    kernels.push(Kernel::Solo(solo.len() - 1));
                }
            }
        }
        let mut bank = if bank_params.is_empty() {
            None
        } else {
            Some(solar_predict::CandidateBank::new(bank_params).map_err(|e| e.to_string())?)
        };
        if let Some(r) = resume {
            // Restore every predictor machine from its day-boundary
            // snapshot — the fresh instances above only fixed the
            // kernel layout (resume eligibility guarantees the axes
            // match, so the layout is identical to the checkpointed
            // run's).
            bank = r.bank.clone();
            solo = r
                .solo
                .iter()
                .map(|p| -> Box<dyn Predictor> {
                    p.snapshot().expect("checkpointed predictors snapshot")
                })
                .collect();
        }

        let new_sink = |streaming_eval: bool| {
            if streaming_eval {
                MetricsSink::Streaming(StreamingEval::new(self.protocol, roi_peak))
            } else {
                MetricsSink::Log(pred_metrics::PredictionLog::with_capacity(
                    n,
                    scenario.days * n,
                ))
            }
        };

        // Every job of a scenario realizes the *identical* fault
        // corruption (injectors are pure functions of the shared seed
        // and the slot sequence), so the unit realizes it exactly once
        // per slot — one injector shared by all jobs and both pass
        // halves — instead of two injector instances per job.
        let mut injector = match resume {
            // The injector's dropout RNG draws exactly once per slot, so
            // the checkpointed clone continues the cold keystream
            // verbatim (resume eligibility excluded trace-gap faults,
            // the one spec whose realization depends on the total
            // horizon at construction).
            Some(r) => r.injector.clone(),
            None => FaultInjector::new(&scenario.faults, fault_seed, scenario.days, n),
        };

        // One record feed per distinct predictor, and one prediction
        // scratch slot the simulation machines read from.
        let mut feeds: Vec<solar_predict::PredictionFeed<MetricsSink>> = match resume {
            Some(r) => r
                .feeds
                .iter()
                .map(|fc| {
                    let sink = match (&fc.sink, &fc.folded) {
                        (MetricsSink::Streaming(eval), _) => MetricsSink::Streaming(eval.clone()),
                        // Peak unchanged: the capture-time fold of the
                        // prefix log is exactly the accumulator state a
                        // cold pass would reach at the boundary — reuse
                        // it and the resume never touches the prefix.
                        (MetricsSink::Log(_), Some(folded))
                            if roi_peak.to_bits() == r.roi_peak.to_bits() =>
                        {
                            MetricsSink::Streaming(folded.clone())
                        }
                        // Peak raised by the appended days: re-fold the
                        // checkpointed prefix log against the extended
                        // peak — the same fold a cold pass pays at
                        // evaluate time, so the prefix re-filters
                        // instead of forcing a cold pass.
                        (MetricsSink::Log(log), _) => {
                            let mut eval = StreamingEval::new(self.protocol, roi_peak);
                            for record in log {
                                eval.push_record(*record);
                            }
                            MetricsSink::Streaming(eval)
                        }
                    };
                    solar_predict::PredictionFeed::resume(sink, fc.pending)
                })
                .collect(),
            None => kernels
                .iter()
                .map(|_| solar_predict::PredictionFeed::new(new_sink(streaming_eval)))
                .collect(),
        };
        let mut predictions = vec![0.0_f64; kernels.len()];

        // One simulation machine per job — storage and duty state is
        // where the manager axis matters.
        struct JobState {
            manager: Box<dyn harvest_sim::PowerManager>,
            hook: harvest_sim::NoFaults,
        }
        let mut job_states: Vec<JobState> = job_indices
            .iter()
            .map(|&job_idx| JobState {
                manager: matrix.managers[jobs[job_idx].manager_idx].build(),
                hook: harvest_sim::NoFaults,
            })
            .collect();
        let mut sims: Vec<NodeSimulation<'_>> = job_states
            .iter_mut()
            .map(|state| {
                NodeSimulation::with_external_predictions(
                    state.manager.as_mut(),
                    &node_config,
                    &mut state.hook,
                    slot_seconds,
                    n,
                )
            })
            .collect();
        if let Some(r) = resume {
            // Managers are stateless (duty planning reads only the slot
            // context), so rebuilding them above and restoring the
            // storage/accounting state puts every simulation machine
            // exactly where the checkpointed pass left it.
            for (sim, saved) in sims.iter_mut().zip(&r.sims) {
                sim.restore_day_checkpoint(saved);
            }
        }

        // The single slot pass. The corruption realization happens once
        // and serves both halves: the metrics half records predictions
        // against ground-truth references scaled by the day's
        // climate-dimming factor — dimming is physical sky state, so
        // accuracy is judged against the sky that actually existed (a
        // predictor perfectly tracking a la-niña year must not register
        // phantom MAPE against the counterfactual clean year); sensor
        // faults and panel soiling leave the references untouched. The
        // simulation half absorbs the corrupted physical harvest and
        // plans each job's duty from its predictor's shared prediction.
        // With streaming sinks the protocol's record filter is
        // decidable per slot *before* any per-predictor work — it
        // depends only on (day, reference mean, peak), all shared —
        // so discarded slots skip record assembly for every
        // predictor at once. A record opened at slot t completes at
        // slot t+1, hence the carried `prior_included` (restored on
        // resume so the record straddling the checkpoint boundary
        // closes exactly as it would have cold).
        let mut prior_included = resume.is_some_and(|r| r.prior_included);
        // The evaluation stream's day-boundary generator state, captured
        // after the pass for the next checkpoint (streamed units only).
        let mut eval_synth: Option<SynthCheckpoint> = None;
        {
            let mut feed_slot = |day: usize, slot: usize, start_sample: f64, mean_power: f64| {
                let mut harvest_j = node_config.panel.power_w(mean_power) * slot_seconds;
                let mut observed = start_sample;
                injector.on_slot(day, slot, &mut harvest_j, &mut observed);
                let sky = injector.sky_factor(day);
                let ref_start = start_sample * sky;
                let ref_mean = mean_power * sky;
                let included =
                    !streaming_eval || self.protocol.includes(day as u32, ref_mean, roi_peak);
                let bank_predictions = bank.as_mut().map(|bank| bank.observe_and_predict(observed));
                for ((kernel, feed), prediction) in
                    kernels.iter().zip(&mut feeds).zip(&mut predictions)
                {
                    let predicted = match *kernel {
                        Kernel::Banked(candidate) => {
                            bank_predictions.as_ref().expect("bank built")[candidate]
                        }
                        Kernel::Solo(idx) => solo[idx].observe_and_predict(observed),
                    };
                    if prior_included {
                        feed.flush_pending(ref_start);
                    }
                    if included {
                        feed.open_pending(day, slot, predicted, ref_mean);
                    }
                    *prediction = predicted;
                }
                prior_included = included;
                for (sim, &kernel_slot) in sims.iter_mut().zip(&job_kernel) {
                    sim.absorb_corrupted(harvest_j);
                    sim.plan_with(predictions[kernel_slot]);
                }
            };
            match (&view, &generator) {
                (Some(view), _) => {
                    for day in start_day..view.days() {
                        for slot in 0..n {
                            feed_slot(
                                day,
                                slot,
                                view.start_sample(day, slot),
                                view.mean_power(day, slot),
                            );
                        }
                    }
                }
                (None, Some(generator)) => {
                    passes.streamed_passes += 1;
                    let mut stream = match resume {
                        None => generator
                            .slot_stream(scenario.days, slots)
                            .map_err(|e| e.to_string())?,
                        Some(r) => generator
                            .slot_stream_from(
                                r.synth
                                    .clone()
                                    .or_else(|| resume_synth.cloned())
                                    .expect("streamed resume carries a synth source"),
                                scenario.days,
                                slots,
                            )
                            .map_err(|e| e.to_string())?,
                    };
                    for slot in stream.by_ref() {
                        feed_slot(slot.day, slot.slot, slot.start_sample, slot.mean_power);
                    }
                    synth_cost.add(stream.counters());
                    eval_synth = stream.checkpoint();
                }
                (None, None) => unreachable!("unit has a view or a generator"),
            }
        }

        // Peak trace bytes per job: the shared materialized trace, or
        // the one-day stream buffer plus the metrics log when the
        // horizon fit under the cap.
        let peak_trace_bytes = match trace {
            Some(trace) => std::mem::size_of_val(trace.samples()),
            None => {
                let buffer_bytes = scenario.site_config()?.resolution.samples_per_day()
                    * std::mem::size_of::<f64>();
                buffer_bytes + if streaming_eval { 0 } else { log_bytes }
            }
        };

        // Capture next run's resume point while the machines are still
        // alive. Checkpointing requires: the unit covers the matrix's
        // full job cross in canonical order (a partial unit's machines
        // would desync from the cross a future run resumes), no
        // trace-gap fault (its realization depends on the total horizon
        // at construction), and — for streamed units — a generator
        // state to continue from.
        let full_cross = job_indices.len() == matrix.predictors.len() * matrix.managers.len()
            && job_indices.iter().enumerate().all(|(k, &job_idx)| {
                jobs[job_idx].predictor_idx == k / matrix.managers.len()
                    && jobs[job_idx].manager_idx == k % matrix.managers.len()
            });
        let has_gap_fault = scenario
            .faults
            .iter()
            .any(|f| matches!(f, FaultSpec::TraceGap { .. }));
        let eligible = full_cross && !has_gap_fault && (view.is_some() || eval_synth.is_some());
        let solo_snapshots: Option<Vec<_>> = if eligible {
            solo.iter().map(|p| p.snapshot()).collect()
        } else {
            None
        };
        let sim_saves: Vec<SimDayCheckpoint> = if eligible && solo_snapshots.is_some() {
            sims.iter().map(|s| s.day_checkpoint()).collect()
        } else {
            Vec::new()
        };

        // One summary per distinct predictor; every job of a manager
        // pairing reuses its predictor's summary verbatim (the metrics
        // pass never depended on the manager — this just stops
        // recomputing the identical value). The sinks are evaluated by
        // reference so the checkpoint below can take them whole — a
        // materialized prediction log is O(horizon) and cloning one per
        // unit per run would dominate the delta path's wall time.
        let pendings: Vec<Option<(u32, u32, f64, f64)>> =
            feeds.iter().map(|f| f.pending()).collect();
        let sinks: Vec<MetricsSink> = feeds.into_iter().map(|f| f.finish()).collect();
        let mut folds: Vec<Option<StreamingEval>> = Vec::with_capacity(sinks.len());
        let summaries: Vec<ErrorSummary> = sinks
            .iter()
            .map(|sink| match sink {
                // The fold [`EvalProtocol::evaluate`] performs anyway,
                // done by hand so its intermediate accumulator state
                // can ride into the checkpoint for peak-stable resumes.
                MetricsSink::Log(log) => {
                    let mut eval = StreamingEval::new(self.protocol, log.peak_actual_mean());
                    for record in log {
                        eval.push_record(*record);
                    }
                    folds.push(Some(eval.clone()));
                    eval.finish()
                }
                MetricsSink::Streaming(eval) => {
                    folds.push(None);
                    eval.clone().finish()
                }
            })
            .collect();
        // The ROI state the checkpoint advertises. A log pass never ran
        // the prepass: its peak is the log's own and the pending
        // (never-folded) final mean is the feed's still-open record —
        // exactly what `peak_actual_mean` excludes — so a future resume
        // can extend the peak in O(appended days).
        let (ck_roi_peak, ck_roi_pending) = if streaming_eval {
            (roi_peak, roi_pending_mean)
        } else {
            let peak = sinks
                .iter()
                .find_map(|sink| match sink {
                    MetricsSink::Log(log) => Some(log.peak_actual_mean()),
                    MetricsSink::Streaming(_) => None,
                })
                .unwrap_or(0.0);
            (
                peak,
                pendings
                    .first()
                    .and_then(|p| p.map(|(_, _, _, ref_mean)| ref_mean)),
            )
        };

        let checkpoint = solo_snapshots.map(|solo_snapshots| UnitCheckpoint {
            scenario_json: scenario.to_json().render(),
            days: scenario.days,
            predictor_labels: matrix.predictors.iter().map(|p| p.label()).collect(),
            manager_labels: matrix.managers.iter().map(|m| m.label()).collect(),
            streaming_eval,
            roi_peak: ck_roi_peak,
            roi_pending_mean: ck_roi_pending,
            prior_included,
            injector,
            synth: eval_synth,
            bank,
            solo: solo_snapshots,
            feeds: sinks
                .into_iter()
                .zip(folds)
                .zip(pendings)
                .map(|((sink, folded), pending)| FeedCheckpoint {
                    sink,
                    folded,
                    pending,
                })
                .collect(),
            sims: sim_saves,
        });
        let reports: Vec<NodeReport> = sims.into_iter().map(NodeSimulation::finish).collect();
        let mut results = Vec::with_capacity(job_indices.len());
        for ((&job_idx, &kernel_slot), report) in job_indices.iter().zip(&job_kernel).zip(reports) {
            let job = &jobs[job_idx];
            let predictor_spec = &matrix.predictors[job.predictor_idx];
            results.push((
                job_idx,
                JobOutcome {
                    scenario: scenario.name.clone(),
                    predictor: predictor_spec.label(),
                    manager: matrix.managers[job.manager_idx].label(),
                    spec: *job,
                    summary: summaries[kernel_slot],
                    report,
                    cost: RunCost {
                        wall_nanos: 0, // filled below (shared pass)
                        peak_candidates: predictor_spec.candidate_count(),
                        peak_trace_bytes,
                    },
                },
            ));
        }
        // The slot pass is shared: split its wall time evenly.
        let wall_each =
            (started.elapsed().as_nanos() as u64 / job_indices.len().max(1) as u64).max(1);
        for (_, outcome) in &mut results {
            outcome.cost.wall_nanos = wall_each;
        }
        // Ledger entries for the whole unit, computed arithmetically —
        // one batch of counter updates per scenario, nothing per slot.
        if self.collector.is_enabled() {
            let name = &scenario.name;
            // Slot counters reflect work actually done this pass: a
            // resumed unit only walked the appended days.
            let processed_days = scenario.days - start_day;
            self.collector
                .count_scenario(name, "slots/processed", (processed_days * n) as u64);
            self.collector
                .count_scenario(name, "jobs/fresh", job_indices.len() as u64);
            if resume.is_some() {
                self.collector
                    .count_scenario(name, "delta/resumed_units", 1);
                self.collector
                    .count_scenario(name, "delta/appended_days", processed_days as u64);
            }
            // Distribution plane, still at unit granularity: the unit's
            // slot volume and one MAPE sample per distinct predictor —
            // deterministic inputs, so the histograms stay byte-pinned.
            self.collector
                .observe("fleet/unit_slots", (processed_days * n) as f64);
            for summary in &summaries {
                self.collector.observe("score/mape", summary.mape);
            }
            let banked = kernels
                .iter()
                .filter(|k| matches!(k, Kernel::Banked(_)))
                .count();
            self.collector
                .count_scenario(name, "bank/banked_candidates", banked as u64);
            self.collector
                .count_scenario(name, "bank/solo_predictors", solo.len() as u64);
            self.collector.count_scenario(
                name,
                "faults/injected_specs",
                scenario.faults.len() as u64,
            );
            if passes.streamed_passes > 0 {
                self.collector.count_scenario(
                    name,
                    "synth/streamed_passes",
                    passes.streamed_passes as u64,
                );
            }
            if passes.roi_prepasses > 0 {
                self.collector.count_scenario(
                    name,
                    "synth/roi_prepasses",
                    passes.roi_prepasses as u64,
                );
            }
            if synth_cost != SynthCounters::default() {
                self.collector.count_scenario(
                    name,
                    "synth/keystream_blocks",
                    synth_cost.keystream_blocks,
                );
                self.collector
                    .count_scenario(name, "synth/normal_draws", synth_cost.normal_draws);
            }
        }
        Ok((results, passes, checkpoint))
    }
}

/// The classified difference between two fleet matrices — what changed
/// between the run whose warm [`FleetCache`] you hold and the matrix
/// you want scored now. Feed it to [`FleetEngine::run_delta`] to route
/// the re-score down the matching O(delta) path.
///
/// Build one with [`FleetDelta::classify`]; the variants carry the
/// affected axis labels purely for reporting/ledger purposes.
#[derive(Clone, Debug, PartialEq)]
pub enum FleetDelta {
    /// One or more scenarios grew by whole appended days; everything
    /// else (axes, faults, the scenarios' prefixes) is unchanged.
    DayAppend {
        /// Names of the scenarios whose horizon grew.
        scenarios: Vec<String>,
    },
    /// Scenarios were added, removed, or edited in place (anything that
    /// is not a pure day-append).
    ScenarioEdit {
        /// Names of the scenarios that differ between the matrices.
        scenarios: Vec<String>,
    },
    /// The predictor axis shrank (order-preserving subset); scenarios
    /// and managers are identical.
    PredictorRetire {
        /// Labels of the retired predictors.
        predictors: Vec<String>,
    },
    /// The matrices are identical — the run is a pure cache replay.
    Unchanged,
}

impl FleetDelta {
    /// Classifies the change from `before` to `after`.
    ///
    /// The classification is deliberately conservative: only changes
    /// with a dedicated cheap path classify. Manager-axis changes,
    /// fleet-fault changes, predictor *growth* or reordering, and mixed
    /// day-append + scenario-edit batches are errors — run those
    /// through [`FleetEngine::run_cached`] directly (still warm for
    /// every untouched scenario), or split them into single-kind
    /// deltas.
    ///
    /// # Errors
    ///
    /// Returns an error describing the unsupported change.
    pub fn classify(before: &FleetMatrix, after: &FleetMatrix) -> Result<FleetDelta, String> {
        let labels = |m: &FleetMatrix| -> (Vec<String>, Vec<String>) {
            (
                m.predictors.iter().map(|p| p.label()).collect(),
                m.managers.iter().map(|m| m.label()).collect(),
            )
        };
        let (before_predictors, before_managers) = labels(before);
        let (after_predictors, after_managers) = labels(after);
        if before_managers != after_managers {
            return Err(
                "manager axis changed: no delta path exists, run the matrix with run_cached"
                    .to_string(),
            );
        }
        if before.fleet_faults != after.fleet_faults {
            return Err(
                "fleet faults changed: they project into every scenario, run with run_cached"
                    .to_string(),
            );
        }
        let render = |s: &crate::Scenario| s.to_json().render();
        let scenarios_equal = before.scenarios.len() == after.scenarios.len()
            && before
                .scenarios
                .iter()
                .zip(&after.scenarios)
                .all(|(b, a)| render(b) == render(a));
        if before_predictors != after_predictors {
            let retired: Vec<String> = before_predictors
                .iter()
                .filter(|label| !after_predictors.contains(label))
                .cloned()
                .collect();
            let mut survivors = before_predictors.clone();
            survivors.retain(|label| after_predictors.contains(label));
            let is_retirement = !retired.is_empty() && survivors == after_predictors;
            if !is_retirement {
                return Err(
                    "predictor axis grew or reordered: only order-preserving retirement has a \
                     delta path, run the matrix with run_cached"
                        .to_string(),
                );
            }
            if !scenarios_equal {
                return Err(
                    "predictor retirement combined with scenario changes: split into two deltas"
                        .to_string(),
                );
            }
            return Ok(FleetDelta::PredictorRetire {
                predictors: retired,
            });
        }
        if scenarios_equal {
            return Ok(FleetDelta::Unchanged);
        }
        if before.scenarios.len() != after.scenarios.len() {
            let before_names: HashSet<&str> =
                before.scenarios.iter().map(|s| s.name.as_str()).collect();
            let after_names: HashSet<&str> =
                after.scenarios.iter().map(|s| s.name.as_str()).collect();
            let mut touched: Vec<String> = before_names
                .symmetric_difference(&after_names)
                .map(|name| (*name).to_string())
                .collect();
            touched.sort_unstable();
            return Ok(FleetDelta::ScenarioEdit { scenarios: touched });
        }
        let mut appends = Vec::new();
        let mut edits = Vec::new();
        for (b, a) in before.scenarios.iter().zip(&after.scenarios) {
            if render(b) == render(a) {
                continue;
            }
            let pure_append = b.name == a.name && a.days > b.days && {
                let mut at_before_days = a.clone();
                at_before_days.days = b.days;
                render(&at_before_days) == render(b)
            };
            if pure_append {
                appends.push(a.name.clone());
            } else {
                edits.push(a.name.clone());
            }
        }
        match (appends.is_empty(), edits.is_empty()) {
            (false, true) => Ok(FleetDelta::DayAppend { scenarios: appends }),
            (true, false) => Ok(FleetDelta::ScenarioEdit { scenarios: edits }),
            (false, false) => Err(
                "mixed day-append and scenario-edit batch: split into two delta runs".to_string(),
            ),
            (true, true) => unreachable!("scenarios_equal was false"),
        }
    }
}

/// The seed-parameterized fleet-fault projection —
/// [`FleetEngine::project_fleet_faults`] for the engine, and
/// [`FleetCache::prune_to`] for a cache that must compare incoming
/// matrices against the projected keys its runs actually stored.
fn project_fleet_faults_seeded(
    matrix: &FleetMatrix,
    master_seed: u64,
) -> Result<FleetMatrix, String> {
    let mut effective = matrix.clone();
    for (index, fault) in matrix.fleet_faults.iter().enumerate() {
        let salted = format!("fleet-fault/{index}");
        let event_seed = solar_trace::hash::fnv1a(&salted) ^ master_seed.rotate_left(23);
        for scenario in &mut effective.scenarios {
            scenario.faults.extend(fault.project(event_seed, scenario)?);
        }
    }
    effective.fleet_faults.clear();
    Ok(effective)
}

/// Internal result of one full evaluation pass.
struct EvaluatedMatrix {
    /// The matrix actually evaluated (fleet faults projected in).
    effective: FleetMatrix,
    outcomes: Vec<JobOutcome>,
    cached_jobs: usize,
    streamed_jobs: usize,
    passes: PassBreakdown,
    resolved_budget: ResolvedTraceBudget,
    quarantined: Vec<QuarantinedScenario>,
}

/// Best-effort text of a caught panic payload (`panic!` carries `&str`
/// or `String`; anything else renders opaquely).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::fleet_faults::FleetFault;
    use crate::matrix::{ManagerSpec, PredictorSpec};

    fn small_matrix() -> FleetMatrix {
        let scenarios = vec![
            Catalog::builtin().get("desert-clear-sky").unwrap().clone(),
            Catalog::builtin().get("aging-node").unwrap().clone(),
        ];
        FleetMatrix::new(
            vec![
                PredictorSpec::Wcma {
                    alpha: 0.7,
                    days: 10,
                    k: 2,
                },
                PredictorSpec::Persistence,
            ],
            vec![
                ManagerSpec::EnergyNeutral {
                    target_soc: 0.5,
                    gain: 0.25,
                },
                ManagerSpec::Greedy,
            ],
            scenarios,
        )
        .unwrap()
    }

    #[test]
    fn engine_runs_the_full_matrix() {
        let result = FleetEngine::new(42).run(&small_matrix()).unwrap();
        assert_eq!(result.outcomes.len(), 2 * 2 * 2);
        assert_eq!(result.cached_jobs, 0);
        // The default adaptive budget (≥ the 4 MiB fallback) comfortably
        // admits this matrix's ~0.9 MiB of traces.
        assert_eq!(result.streamed_jobs, 0, "small fleets must not stream");
        for outcome in &result.outcomes {
            assert!(outcome.summary.count > 0, "{}", outcome.scenario);
            assert!(outcome.summary.mape.is_finite());
            assert!(outcome.cost.wall_nanos > 0);
            assert_eq!(outcome.cost.peak_candidates, 1);
            assert!(outcome.cost.peak_trace_bytes > 0);
            assert!(
                outcome.report.energy_balance_error_j()
                    < 1e-6 * outcome.report.harvested_j.max(1.0),
                "{}: {}",
                outcome.scenario,
                outcome.report.energy_balance_error_j()
            );
        }
    }

    #[test]
    fn work_unit_panic_is_an_error_not_an_abort() {
        let err = FleetEngine::new(42)
            .with_chaos_unit_panic("desert-clear-sky")
            .run(&small_matrix())
            .unwrap_err();
        assert!(err.contains("desert-clear-sky"), "{err}");
        assert!(err.contains("panicked"), "{err}");
    }

    #[test]
    fn quarantine_excludes_the_failed_scenario_and_keeps_the_rest() {
        let matrix = small_matrix();
        let clean = FleetEngine::new(42).run(&matrix).unwrap();
        assert!(clean.quarantined.is_empty());
        let result = FleetEngine::new(42)
            .with_quarantine(true)
            .with_chaos_unit_panic("desert-clear-sky")
            .run(&matrix)
            .unwrap();
        assert_eq!(result.quarantined.len(), 1);
        assert_eq!(result.quarantined[0].scenario, "desert-clear-sky");
        assert!(result.quarantined[0].error.contains("panicked"));
        // Only the healthy scenario's jobs survive, and its rankings
        // are byte-identical to the clean run's table for it.
        assert_eq!(result.outcomes.len(), 2 * 2);
        assert!(result.outcomes.iter().all(|o| o.scenario == "aging-node"));
        let table_of = |scorecard: &Scorecard, name: &str| {
            scorecard
                .per_scenario
                .iter()
                .find(|r| r.scenario == name)
                .unwrap()
                .clone()
        };
        assert_eq!(
            table_of(&result.scorecard, "aging-node"),
            table_of(&clean.scorecard, "aging-node")
        );
        assert!(
            table_of(&result.scorecard, "desert-clear-sky")
                .entries
                .is_empty(),
            "the quarantined scenario's table is empty, not wrong"
        );
    }

    #[test]
    fn streaming_only_policy_is_byte_identical_and_never_materializes() {
        let matrix = small_matrix();
        let materialized = FleetEngine::new(5).run(&matrix).unwrap();
        let engine = FleetEngine::new(5).with_trace_cache(TraceCachePolicy::streaming_only());
        let mut cache = engine.new_cache();
        let streamed = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(streamed.streamed_jobs, matrix.job_count());
        assert_eq!(cache.trace_count(), 0, "no trace may materialize");
        assert_eq!(
            streamed.scorecard.to_json_string(),
            materialized.scorecard.to_json_string(),
            "streamed and materialized paths must agree byte-for-byte"
        );
        for (a, b) in streamed.outcomes.iter().zip(&materialized.outcomes) {
            assert_eq!(a.summary, b.summary);
            assert_eq!(a.report, b.report);
            assert!(
                a.cost.peak_trace_bytes < b.cost.peak_trace_bytes,
                "streamed jobs must hold less trace memory"
            );
        }
    }

    #[test]
    fn bounded_budget_splits_materialize_and_stream_deterministically() {
        let matrix = small_matrix();
        // Admit exactly the first scenario (40 days × 1440 samples × 8).
        let first_bytes = 40 * 1440 * 8;
        let engine =
            FleetEngine::new(5).with_trace_cache(TraceCachePolicy::bounded(first_bytes as u64));
        let mut cache = engine.new_cache();
        let result = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(cache.trace_count(), 1);
        assert_eq!(result.streamed_jobs, matrix.job_count() / 2);
        let reference = FleetEngine::new(5).run(&matrix).unwrap();
        assert_eq!(
            result.scorecard.to_json_string(),
            reference.scorecard.to_json_string()
        );
    }

    #[test]
    fn adaptive_policy_resolves_budgets_and_stays_byte_identical() {
        // Configured ceilings resolve deterministically (ceiling / 8)…
        assert_eq!(
            TraceCachePolicy::adaptive_with_ceiling(32 << 20).budget_bytes(),
            Some(4 << 20)
        );
        // …and detection always yields *some* budget (the 4 MiB default
        // when the machine's memory cannot be read).
        // (No floor is asserted on the detected value: a genuinely
        // memory-starved machine may resolve below the fallback — the
        // fallback only applies when detection is impossible.)
        let detected = TraceCachePolicy::adaptive().budget_bytes();
        assert!(detected.is_some_and(|budget| budget > 0));
        assert_eq!(ADAPTIVE_FALLBACK_BUDGET_BYTES, 4 << 20);

        // The resolution also names its source — the decision is no
        // longer invisible.
        assert_eq!(
            TraceCachePolicy::unbounded().resolve(),
            ResolvedTraceBudget {
                bytes: None,
                source: TraceBudgetSource::Unbounded,
            }
        );
        assert_eq!(
            TraceCachePolicy::bounded(512).resolve(),
            ResolvedTraceBudget {
                bytes: Some(512),
                source: TraceBudgetSource::Configured,
            }
        );
        let ceiled = TraceCachePolicy::adaptive_with_ceiling(32 << 20).resolve();
        assert_eq!(ceiled.source, TraceBudgetSource::AdaptiveCeiling);
        assert_eq!(ceiled.to_string(), "4194304 bytes (adaptive-ceiling)");
        let adaptive = TraceCachePolicy::adaptive().resolve();
        assert!(matches!(
            adaptive.source,
            TraceBudgetSource::AdaptiveDetectedMemory | TraceBudgetSource::AdaptiveFallback
        ));

        // A starved ceiling forces streaming; the scorecard must not
        // move by a byte relative to the unbounded run.
        let matrix = small_matrix();
        let unbounded = FleetEngine::new(11)
            .with_trace_cache(TraceCachePolicy::unbounded())
            .run(&matrix)
            .unwrap();
        let starved_engine =
            FleetEngine::new(11).with_trace_cache(TraceCachePolicy::adaptive_with_ceiling(8));
        let mut cache = starved_engine.new_cache();
        let starved = starved_engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(starved.streamed_jobs, matrix.job_count());
        assert_eq!(cache.trace_count(), 0, "starved ceiling must stream");
        assert_eq!(
            starved.scorecard.to_json_string(),
            unbounded.scorecard.to_json_string()
        );
    }

    #[test]
    fn single_pass_accounting_counts_one_synthesis_per_fresh_scenario() {
        let matrix = small_matrix();
        let engine = FleetEngine::new(17);
        let mut cache = engine.new_cache();
        // Fresh materialized run: one generation per scenario, shared by
        // all of its jobs — never one per job.
        let fresh = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(fresh.synthesis_passes(), matrix.scenarios.len());
        assert_eq!(fresh.passes.trace_generations, matrix.scenarios.len());
        // Warm trace cache: new jobs cost zero synthesis passes.
        let mut grown = matrix.clone();
        grown.predictors.push(PredictorSpec::Ewma { gamma: 0.4 });
        let incremental = engine.run_cached(&grown, &mut cache).unwrap();
        assert_eq!(incremental.synthesis_passes(), 0);
        // Fully cached: nothing runs at all.
        let warm = engine.run_cached(&grown, &mut cache).unwrap();
        assert_eq!(warm.synthesis_passes(), 0);
        assert_eq!(warm.cached_jobs, grown.job_count());
        // Streaming-only: one generation pass per scenario per run
        // (these 40-day scenarios stay under the metrics-log cap, so no
        // ROI pre-pass happens).
        let streaming = FleetEngine::new(17)
            .with_trace_cache(TraceCachePolicy::streaming_only())
            .run(&matrix)
            .unwrap();
        assert_eq!(streaming.synthesis_passes(), matrix.scenarios.len());
        assert_eq!(streaming.passes.streamed_passes, matrix.scenarios.len());
        assert_eq!(streaming.passes.roi_prepasses, 0);
    }

    #[test]
    fn collector_records_ledger_and_budget_without_perturbing_output() {
        let matrix = small_matrix();
        let plain = FleetEngine::new(23).run(&matrix).unwrap();
        let collector = Collector::recording();
        let observed = FleetEngine::new(23)
            .with_collector(collector.clone())
            .run(&matrix)
            .unwrap();
        // Collection must not move a byte of pinned output.
        assert_eq!(
            plain.scorecard.to_json_string(),
            observed.scorecard.to_json_string()
        );
        let ledger = collector.ledger();
        let jobs = matrix.job_count() as u64;
        let scenarios = matrix.scenarios.len() as u64;
        assert_eq!(ledger.counter("jobs/evaluated"), jobs);
        assert_eq!(ledger.counter("cache/job_misses"), jobs);
        assert_eq!(ledger.counter("cache/job_hits"), 0);
        assert_eq!(ledger.counter("synth/trace_generations"), scenarios);
        assert_eq!(ledger.counter("score/scenarios_ranked"), scenarios);
        assert_eq!(ledger.counter("jobs/fresh"), jobs);
        assert!(ledger.counter("slots/processed") > 0);
        assert!(ledger
            .label_value("admission/trace_budget_source")
            .is_some());
        // The resolved budget also reaches the scorecard's text output
        // (text-only; the pinned JSON above proved it stays out of it).
        assert!(observed.scorecard.render_text().contains("trace budget: "));
        // Phase spans landed under the run root.
        let report = collector.report();
        let fleet = report
            .spans
            .children
            .iter()
            .find(|c| c.name == "fleet")
            .expect("fleet span recorded");
        assert!(fleet.children.iter().any(|c| c.name == "simulate"));
        assert_eq!(report.scenario_top.len(), matrix.scenarios.len().min(10));
    }

    #[test]
    fn warm_cache_ledger_shows_hits_equal_jobs_and_zero_synthesis() {
        let matrix = small_matrix();
        let engine = FleetEngine::new(29);
        let mut cache = engine.new_cache();
        engine.run_cached(&matrix, &mut cache).unwrap();
        // Second run through a fresh collector: everything is served
        // from the cache.
        let collector = Collector::recording();
        let warm = FleetEngine::new(29)
            .with_collector(collector.clone())
            .run_cached(&matrix, &mut cache)
            .unwrap();
        assert_eq!(warm.cached_jobs, matrix.job_count());
        let ledger = collector.ledger();
        let jobs = matrix.job_count() as u64;
        assert_eq!(ledger.counter("cache/job_hits"), jobs);
        assert_eq!(ledger.counter("cache/job_misses"), 0);
        assert_eq!(
            ledger.counter("cache/trace_hits"),
            matrix.scenarios.len() as u64
        );
        assert_eq!(ledger.counter("synth/trace_generations"), 0);
        assert_eq!(ledger.counter("synth/streamed_passes"), 0);
        assert_eq!(ledger.counter("slots/processed"), 0);
    }

    #[test]
    fn outcomes_are_in_job_order_regardless_of_threads() {
        let matrix = small_matrix();
        let a = FleetEngine::new(7).with_threads(1).run(&matrix).unwrap();
        let b = FleetEngine::new(7).with_threads(4).run(&matrix).unwrap();
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.summary, y.summary);
            assert_eq!(x.report, y.report);
        }
    }

    #[test]
    fn equally_configured_custom_sites_with_different_names_get_different_traces() {
        // Regression: the scenario-seed hash must not cancel against the
        // custom site's name-derived seed_stream (engine XORs the
        // scenario hash in, TraceGenerator XORs seed_stream back out).
        let base = Catalog::builtin().get("four-seasons").unwrap().clone();
        let mut twin = base.clone();
        twin.name = "four-seasons-twin".into();
        twin.days = base.days;
        let engine = FleetEngine::new(3);
        let (a, _) = engine.generate_trace(&base).unwrap();
        let (b, _) = engine.generate_trace(&twin).unwrap();
        assert_ne!(a.samples(), b.samples());
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let matrix = small_matrix();
        let a = FleetEngine::new(1).run(&matrix).unwrap();
        let b = FleetEngine::new(2).run(&matrix).unwrap();
        assert_ne!(a.outcomes[0].summary, b.outcomes[0].summary);
    }

    #[test]
    fn faults_hurt_the_faulted_scenario() {
        // The aging-node scenario halves storage and drops samples; the
        // faulted run must still balance energy and produce strictly
        // positive harvest.
        let result = FleetEngine::new(3).run(&small_matrix()).unwrap();
        let faulted: Vec<_> = result
            .outcomes
            .iter()
            .filter(|o| o.scenario == "aging-node")
            .collect();
        assert!(!faulted.is_empty());
        for outcome in faulted {
            assert!(outcome.report.harvested_j > 0.0);
            assert!(outcome.report.energy_balance_error_j() < 1e-6);
        }
    }

    #[test]
    fn cache_answers_repeat_runs_without_re_evaluating() {
        let matrix = small_matrix();
        let engine = FleetEngine::new(9);
        let mut cache = engine.new_cache();
        let first = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(first.cached_jobs, 0);
        assert_eq!(cache.len(), matrix.job_count());
        assert_eq!(cache.trace_count(), matrix.scenarios.len());
        assert!(cache.trace_bytes() > 0);
        let second = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(second.cached_jobs, matrix.job_count());
        assert_eq!(
            first.scorecard.to_json_string(),
            second.scorecard.to_json_string()
        );
    }

    #[test]
    fn incremental_predictor_axis_change_matches_full_run_byte_for_byte() {
        // The tuning-loop pattern: score family A, then grow the axis.
        let base = small_matrix();
        let mut grown = base.clone();
        grown.predictors.push(PredictorSpec::Ewma { gamma: 0.5 });

        let engine = FleetEngine::new(21);
        let mut cache = engine.new_cache();
        engine.run_cached(&base, &mut cache).unwrap();
        let incremental = engine.run_cached(&grown, &mut cache).unwrap();
        // Only the new predictor's jobs ran.
        assert_eq!(incremental.cached_jobs, base.job_count());

        let full = FleetEngine::new(21).run(&grown).unwrap();
        assert_eq!(
            incremental.scorecard.to_json_string(),
            full.scorecard.to_json_string(),
            "incremental re-scoring must be byte-identical to a full run"
        );
    }

    #[test]
    fn cache_rejects_mismatched_engines() {
        let matrix = small_matrix();
        let mut cache = FleetEngine::new(1).new_cache();
        assert!(FleetEngine::new(2).run_cached(&matrix, &mut cache).is_err());
        let strict = FleetEngine::new(1).with_protocol(EvalProtocol::new(0.2, 10));
        assert!(strict.run_cached(&matrix, &mut cache).is_err());
    }

    #[test]
    fn renamed_scenario_is_not_served_from_cache() {
        // Same site config, different name ⇒ different trace seed; the
        // JSON cache key must keep them apart.
        let mut matrix = small_matrix();
        let engine = FleetEngine::new(4);
        let mut cache = engine.new_cache();
        let before = engine.run_cached(&matrix, &mut cache).unwrap();
        matrix.scenarios[0].name = "desert-clear-sky-b".into();
        let after = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(after.cached_jobs, matrix.job_count() / 2);
        assert_ne!(
            before.outcomes[0].summary, after.outcomes[0].summary,
            "renamed scenario must re-evaluate under its own seed"
        );
    }

    #[test]
    fn sharded_run_merges_back_to_the_monolithic_scorecard() {
        let matrix = small_matrix();
        let monolithic = FleetEngine::new(31).run(&matrix).unwrap();
        let sharded = FleetEngine::new(31).run_sharded(&matrix, 2).unwrap();
        assert_eq!(sharded.shards.len(), 2);
        let merged = Scorecard::merge_shards(&sharded.manifest, &sharded.shards).unwrap();
        assert_eq!(
            merged.to_json_string(),
            monolithic.scorecard.to_json_string()
        );
        // The engine-level routing produces the same bytes too.
        let routed = FleetEngine::new(31).with_shards(2).run(&matrix).unwrap();
        assert_eq!(
            routed.scorecard.to_json_string(),
            monolithic.scorecard.to_json_string()
        );
    }

    #[test]
    fn out_of_range_shard_counts_clamp_like_the_routed_path() {
        // `run_sharded` historically rejected counts that
        // `with_shards` silently clamped — same matrix, divergent
        // behavior. Both entry points now share the documented clamp
        // into `1..=scenario_count`, and the clamped artifacts still
        // merge back to the monolithic bytes.
        let matrix = small_matrix();
        let monolithic = FleetEngine::new(1).run(&matrix).unwrap();
        let low = FleetEngine::new(1).run_sharded(&matrix, 0).unwrap();
        assert_eq!(low.shards.len(), 1);
        let high = FleetEngine::new(1).run_sharded(&matrix, 3).unwrap();
        assert_eq!(high.shards.len(), matrix.scenarios.len());
        for sharded in [low, high] {
            let merged = Scorecard::merge_shards(&sharded.manifest, &sharded.shards).unwrap();
            assert_eq!(
                merged.to_json_string(),
                monolithic.scorecard.to_json_string()
            );
        }
    }

    #[test]
    fn day_append_resumes_from_checkpoints_and_matches_cold_bytes() {
        // Materialized path: the warm run leaves unit checkpoints and
        // generator tails; appending days must extend traces in place
        // (no full regeneration) and resume every state machine, with
        // the scorecard byte-identical to a cold run of the extended
        // matrix.
        let matrix = small_matrix();
        let engine = FleetEngine::new(41);
        let mut cache = engine.new_cache();
        engine.run_cached(&matrix, &mut cache).unwrap();

        let mut grown = matrix.clone();
        for scenario in &mut grown.scenarios {
            scenario.days += 3;
        }
        let delta = FleetDelta::classify(&matrix, &grown).unwrap();
        assert_eq!(
            delta,
            FleetDelta::DayAppend {
                scenarios: grown.scenarios.iter().map(|s| s.name.clone()).collect()
            }
        );

        let collector = Collector::recording();
        let incremental = FleetEngine::new(41)
            .with_collector(collector.clone())
            .run_delta(&grown, &mut cache, &delta)
            .unwrap();
        assert_eq!(incremental.passes.trace_generations, 0);
        assert_eq!(
            incremental.passes.trace_extensions,
            grown.scenarios.len(),
            "every trace must extend from its stored tail"
        );
        let ledger = collector.ledger();
        assert_eq!(ledger.counter("synth/trace_generations"), 0);
        assert_eq!(
            ledger.counter("delta/trace_extensions"),
            grown.scenarios.len() as u64
        );
        assert_eq!(
            ledger.counter("delta/resumed_units") + ledger.counter("delta/peak_fallbacks"),
            grown.scenarios.len() as u64,
            "every unit either resumes or transparently falls back"
        );
        assert_eq!(
            ledger.counter("delta/day_appends"),
            grown.scenarios.len() as u64
        );

        let cold = FleetEngine::new(41).run(&grown).unwrap();
        assert_eq!(
            incremental.scorecard.to_json_string(),
            cold.scorecard.to_json_string()
        );
        // The extended cached trace is bitwise the cold-generated one.
        let engine = FleetEngine::new(41);
        for scenario in &grown.scenarios {
            let (cold_trace, _) = engine.generate_trace(scenario).unwrap();
            let cached = &cache.traces[&scenario.to_json().render()];
            assert_eq!(cached.samples(), cold_trace.samples());
        }
    }

    #[test]
    fn streamed_day_append_resumes_the_generator_tail() {
        // Streaming-only path: no trace exists to extend, so the resume
        // continues the synthesis stream from the checkpointed
        // day-boundary generator state — appended days only.
        let matrix = small_matrix();
        let engine = FleetEngine::new(43).with_trace_cache(TraceCachePolicy::streaming_only());
        let mut cache = engine.new_cache();
        engine.run_cached(&matrix, &mut cache).unwrap();

        let mut grown = matrix.clone();
        for scenario in &mut grown.scenarios {
            scenario.days += 2;
        }
        let collector = Collector::recording();
        let incremental = FleetEngine::new(43)
            .with_trace_cache(TraceCachePolicy::streaming_only())
            .with_collector(collector.clone())
            .run_cached(&grown, &mut cache)
            .unwrap();
        let ledger = collector.ledger();
        let n = grown.scenarios[0].slots_per_day as u64;
        let resumed = ledger.counter("delta/resumed_units");
        assert!(resumed > 0, "streamed units must resume their tails");
        if resumed == grown.scenarios.len() as u64 {
            // All units resumed: the pass walked only the appended days.
            assert_eq!(
                ledger.counter("slots/processed"),
                2 * n * grown.scenarios.len() as u64
            );
        }
        let cold = FleetEngine::new(43)
            .with_trace_cache(TraceCachePolicy::streaming_only())
            .run(&grown)
            .unwrap();
        assert_eq!(
            incremental.scorecard.to_json_string(),
            cold.scorecard.to_json_string()
        );
    }

    #[test]
    fn appended_days_that_raise_the_roi_peak_fall_back_to_a_cold_pass() {
        // Dimming the whole original horizon halves every reference
        // mean the checkpointed ROI peak saw; the appended days shine
        // at full strength, so the extended peak must rise — the
        // prefix's record-inclusion decisions are stale and the unit
        // has to transparently re-run cold. Bytes still match.
        let mut scenario = Catalog::builtin().get("desert-clear-sky").unwrap().clone();
        scenario.faults.push(crate::FaultSpec::ClimateDimming {
            start_day: 0,
            duration_days: scenario.days,
            factor: 0.5,
        });
        let matrix = FleetMatrix::new(
            vec![PredictorSpec::Wcma {
                alpha: 0.7,
                days: 10,
                k: 2,
            }],
            vec![ManagerSpec::EnergyNeutral {
                target_soc: 0.5,
                gain: 0.25,
            }],
            vec![scenario],
        )
        .unwrap();
        let engine = FleetEngine::new(47);
        let mut cache = engine.new_cache();
        engine.run_cached(&matrix, &mut cache).unwrap();

        let mut grown = matrix.clone();
        grown.scenarios[0].days += 2;
        let collector = Collector::recording();
        let incremental = FleetEngine::new(47)
            .with_collector(collector.clone())
            .run_cached(&grown, &mut cache)
            .unwrap();
        let ledger = collector.ledger();
        assert_eq!(ledger.counter("delta/peak_fallbacks"), 1);
        assert_eq!(ledger.counter("delta/resumed_units"), 0);
        let cold = FleetEngine::new(47).run(&grown).unwrap();
        assert_eq!(
            incremental.scorecard.to_json_string(),
            cold.scorecard.to_json_string()
        );
    }

    #[test]
    fn delta_classification_covers_every_route() {
        let base = small_matrix();

        assert_eq!(
            FleetDelta::classify(&base, &base).unwrap(),
            FleetDelta::Unchanged
        );

        let mut appended = base.clone();
        appended.scenarios[1].days += 5;
        assert_eq!(
            FleetDelta::classify(&base, &appended).unwrap(),
            FleetDelta::DayAppend {
                scenarios: vec![appended.scenarios[1].name.clone()]
            }
        );

        // Shrinking a horizon is not an append — it edits the scenario.
        let mut shrunk = base.clone();
        shrunk.scenarios[0].days -= 1;
        assert_eq!(
            FleetDelta::classify(&base, &shrunk).unwrap(),
            FleetDelta::ScenarioEdit {
                scenarios: vec![shrunk.scenarios[0].name.clone()]
            }
        );

        let mut edited = base.clone();
        edited.scenarios[0]
            .faults
            .push(crate::FaultSpec::ClimateDimming {
                start_day: 0,
                duration_days: 5,
                factor: 0.5,
            });
        assert_eq!(
            FleetDelta::classify(&base, &edited).unwrap(),
            FleetDelta::ScenarioEdit {
                scenarios: vec![edited.scenarios[0].name.clone()]
            }
        );

        let mut removed = base.clone();
        let gone = removed.scenarios.remove(0);
        assert_eq!(
            FleetDelta::classify(&base, &removed).unwrap(),
            FleetDelta::ScenarioEdit {
                scenarios: vec![gone.name]
            }
        );

        let mut retired = base.clone();
        let dropped = retired.predictors.remove(0);
        assert_eq!(
            FleetDelta::classify(&base, &retired).unwrap(),
            FleetDelta::PredictorRetire {
                predictors: vec![dropped.label()]
            }
        );

        // Growth, manager changes, and mixed batches have no delta
        // path.
        let mut grown_axis = base.clone();
        grown_axis
            .predictors
            .push(PredictorSpec::Ewma { gamma: 0.4 });
        assert!(FleetDelta::classify(&base, &grown_axis).is_err());
        let mut managers_changed = base.clone();
        managers_changed.managers.push(ManagerSpec::Greedy);
        assert!(FleetDelta::classify(&base, &managers_changed).is_err());
        let mut mixed = base.clone();
        mixed.scenarios[0].days += 1;
        mixed.scenarios[1].slots_per_day = 24;
        assert!(FleetDelta::classify(&base, &mixed).is_err());
    }

    #[test]
    fn retiring_a_predictor_re_ranks_entirely_from_cache() {
        let matrix = small_matrix();
        let engine = FleetEngine::new(53);
        let mut cache = engine.new_cache();
        engine.run_cached(&matrix, &mut cache).unwrap();

        let mut retired = matrix.clone();
        retired.predictors.remove(1);
        let delta = FleetDelta::classify(&matrix, &retired).unwrap();
        let incremental = engine.run_delta(&retired, &mut cache, &delta).unwrap();
        assert_eq!(incremental.cached_jobs, retired.job_count());
        assert_eq!(incremental.passes.total(), 0, "no simulation at all");
        let cold = FleetEngine::new(53).run(&retired).unwrap();
        assert_eq!(
            incremental.scorecard.to_json_string(),
            cold.scorecard.to_json_string()
        );
    }

    #[test]
    fn prune_to_evicts_exactly_the_entries_the_matrix_no_longer_wants() {
        let matrix = small_matrix();
        let engine = FleetEngine::new(59);
        let mut cache = engine.new_cache();
        engine.run_cached(&matrix, &mut cache).unwrap();
        let bytes_before = cache.trace_bytes();

        let mut narrowed = matrix.clone();
        narrowed.scenarios.remove(1);
        let stats = cache.prune_to(&narrowed).unwrap();
        let jobs_per_scenario = matrix.predictors.len() * matrix.managers.len();
        assert_eq!(stats.evicted_outcomes, jobs_per_scenario);
        assert_eq!(stats.evicted_traces, 1);
        assert!(stats.evicted_trace_bytes > 0);
        assert_eq!(
            cache.trace_bytes(),
            bytes_before - stats.evicted_trace_bytes
        );
        assert_eq!(cache.trace_count(), 1);

        // Pruning to the same matrix is a no-op.
        assert_eq!(cache.prune_to(&narrowed).unwrap(), PruneStats::default());

        // The surviving scenario still replays entirely from cache.
        let warm = engine.run_cached(&narrowed, &mut cache).unwrap();
        assert_eq!(warm.cached_jobs, narrowed.job_count());
        let cold = FleetEngine::new(59).run(&narrowed).unwrap();
        assert_eq!(
            warm.scorecard.to_json_string(),
            cold.scorecard.to_json_string()
        );
    }

    #[test]
    fn dimming_is_ground_truth_for_the_metrics_pass() {
        // A sky dimmed by exactly 0.5 over the whole horizon scales
        // observations, predictions, and references by the same power
        // of two, so prediction accuracy — a ratio — is unchanged: the
        // predictor tracked the real (dimmed) sky perfectly well. The
        // physical outcome (harvest, brownouts) must still suffer.
        let clean = Catalog::builtin().get("desert-clear-sky").unwrap().clone();
        let mut dimmed = clean.clone();
        dimmed.faults.push(crate::FaultSpec::ClimateDimming {
            start_day: 0,
            duration_days: dimmed.days,
            factor: 0.5,
        });
        // Same name ⇒ same trace seed ⇒ identical underlying sky.
        let specs = vec![PredictorSpec::Wcma {
            alpha: 0.7,
            days: 10,
            k: 2,
        }];
        let managers = vec![ManagerSpec::EnergyNeutral {
            target_soc: 0.5,
            gain: 0.25,
        }];
        let engine = FleetEngine::new(6);
        let clean_run = engine
            .run(&FleetMatrix::new(specs.clone(), managers.clone(), vec![clean]).unwrap())
            .unwrap();
        let dimmed_run = engine
            .run(&FleetMatrix::new(specs, managers, vec![dimmed]).unwrap())
            .unwrap();
        let (a, b) = (&clean_run.outcomes[0], &dimmed_run.outcomes[0]);
        assert!(
            (a.summary.mape - b.summary.mape).abs() < 1e-12,
            "scale-invariant accuracy must not register phantom error: {} vs {}",
            a.summary.mape,
            b.summary.mape
        );
        assert_eq!(a.summary.count, b.summary.count);
        assert!(
            b.report.harvested_j < 0.6 * a.report.harvested_j,
            "the physical harvest must halve"
        );
    }

    #[test]
    fn fleet_faults_project_into_every_affected_scenario() {
        let matrix = small_matrix()
            .with_fleet_faults(vec![FleetFault::RegionalStorm {
                window_start_day: 22,
                window_end_day: 30,
                duration_days: 5,
                depth: 0.8,
                region: crate::SpatialFalloff::global(),
            }])
            .unwrap();
        let engine = FleetEngine::new(8);
        let effective = engine.project_fleet_faults(&matrix).unwrap();
        assert!(effective.fleet_faults.is_empty());
        for scenario in &effective.scenarios {
            assert!(
                scenario
                    .faults
                    .iter()
                    .any(|f| matches!(f, crate::FaultSpec::ClimateDimming { .. })),
                "{} missing the storm projection",
                scenario.name
            );
        }
        // The storm measurably hurts: compare against the clean matrix.
        let clean = FleetEngine::new(8).run(&small_matrix()).unwrap();
        let stormy = FleetEngine::new(8).run(&matrix).unwrap();
        let harvested =
            |r: &FleetResult| r.outcomes.iter().map(|o| o.report.harvested_j).sum::<f64>();
        assert!(
            harvested(&stormy) < harvested(&clean),
            "a fleet-wide storm must reduce total harvest"
        );
        // And the cache keeps clean/stormy scenarios apart (their JSON
        // differs), so a warm clean cache cannot answer stormy jobs.
        let mut cache = engine.new_cache();
        engine.run_cached(&small_matrix(), &mut cache).unwrap();
        let stormy_cached = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(stormy_cached.cached_jobs, 0);
    }
}
