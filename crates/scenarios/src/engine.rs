//! The fleet engine: expand a [`FleetMatrix`] into work units, run them
//! in parallel — materialized or streamed — and reduce to a
//! [`Scorecard`], monolithic or sharded.
//!
//! # Determinism
//!
//! Every random draw is derived from the engine's master seed by stable
//! hashing — scenario traces from `(master, scenario name)`, fault
//! realizations likewise, fleet-wide events from `(master, event
//! index)` — and each job re-derives its own state from those seeds.
//! Jobs share nothing mutable, and reduction sorts by job index, so the
//! engine's output (including rendered scorecard JSON) is
//! **byte-identical for a given matrix and seed regardless of thread
//! count, trace-cache policy, shard count, or cache warmth**.
//! Integration tests pin all four properties.
//!
//! # The single-pass invariant
//!
//! **One slot pass per scenario per run.** Every fresh job of a
//! scenario — the whole predictor × manager block — is fed from a
//! single walk over the scenario's slot sequence, and synthesis runs at
//! most once per scenario per run (once into the trace cache when the
//! scenario is admitted, once as a [`solar_synth::SlotStream`]
//! otherwise; multi-year scenarios above the metrics-log cap add one
//! ROI pre-pass). Growing the candidate axis therefore adds per-slot
//! arithmetic, never whole passes — [`FleetResult::synthesis_passes`]
//! exposes the count, and the `fleet_hotpath`/`tuner_bank` benches pin
//! the resulting throughput trajectory (`BENCH_PR5.json`).
//!
//! The work-unit granularity is the scenario, so parallelism is across
//! scenarios: at fleet scale (hundreds of regimes) that saturates any
//! core count, while a few-scenario × many-predictor matrix trades
//! per-job parallelism for the shared-kernel savings below — the right
//! trade everywhere the workspace runs today, revisit if wide matrices
//! on many-core boxes become a primary shape.
//!
//! Within a pass, each slot is evaluated in two conceptual halves that
//! share one fault realization (injectors are pure functions of the
//! shared seed and slot sequence, and measurement corruption never
//! depends on the harvest argument — pinned by a faults test):
//!
//! 1. a *metrics half* scoring predictions against the true slot means
//!    under the paper's protocol, with measurement faults corrupting
//!    the predictors' inputs — prediction accuracy under adversity;
//! 2. a *simulation half* closing the management loop with physical
//!    faults applied — what the accuracy buys (brownouts, utilization).
//!
//! Because both halves observe the identical corrupted stream, each
//! *distinct predictor* computes its prediction once per slot: float
//! WCMA candidates fold into a shared
//! [`solar_predict::CandidateBank`] (one `E_{D×N}` history, one μ/η
//! column walk per distinct D, one Φ per distinct (D, K)), other
//! predictors run one owned instance — and every manager pairing reuses
//! that prediction stream and its metrics summary. Per-candidate
//! arithmetic is unchanged throughout, so every outcome is
//! bit-identical to a per-job solo run (property-tested in core, pinned
//! end to end by the engine equality tests and the golden 200-regime
//! digest).
//!
//! # Materialize or stream
//!
//! The [`TraceCachePolicy`] decides, per scenario, whether its trace is
//! generated once into the shared cache (the pass then walks the cached
//! `SlotView` — and later runs reuse the trace for free) or
//! **streamed**: the slot sequence is generated on the fly, holding one
//! day of samples instead of the full horizon. Both sources produce
//! identical slot values into the same machines, so outcomes are
//! bit-identical by construction — multi-year scenarios can run under a
//! bounded memory budget without perturbing a single byte of output.
//! The default [`TraceCachePolicy::Adaptive`] sizes the budget from the
//! machine's available memory (fixed 4 MiB fallback), closing the
//! roadmap's adaptive-policy item.
//!
//! # Incremental re-scoring
//!
//! A tuning loop re-runs near-identical matrices dozens of times,
//! changing only the predictor axis between rounds. [`FleetCache`]
//! makes that cheap: it memoizes generated traces per scenario and
//! finished [`JobOutcome`]s per (scenario, predictor, manager) triple,
//! so [`FleetEngine::run_cached`] evaluates **only the jobs whose axis
//! value changed**. Because every job is a pure function of its triple
//! and the master seed, a cached outcome is bit-identical to a fresh
//! one — the resulting scorecard JSON is byte-identical to a full
//! re-run (pinned by test).
//!
//! # Observability
//!
//! The engine reports on itself through an optional
//! [`fleet_obs::Collector`] ([`FleetEngine::with_collector`]): phase
//! spans (`fleet/project` → `admission` → `synthesis` → `simulate` →
//! `score`/`merge`) on the timing plane, and deterministic ledger
//! counters — admission decisions with the resolved budget, synthesis
//! passes, cache hits, slot counts, bank sizes, fault specs — recorded
//! at **work-unit granularity** (one batch of counter updates per
//! scenario unit, computed arithmetically), never inside the per-slot
//! loop. The default collector is a no-op whose calls cost one branch,
//! so un-instrumented runs are unchanged (pinned by the
//! `fleet_hotpath` bench); with collection on, outputs stay
//! byte-identical and the ledger itself is byte-identical across
//! thread counts and shard splits.

use crate::catalog::Scenario;
use crate::faults::{storage_capacity_factor, FaultInjector};
use crate::matrix::{FleetMatrix, JobSpec};
use crate::scorecard::{Scorecard, ScorecardShard, ShardManifest};
use fleet_obs::Collector;
use harvest_sim::SlotHook;
use harvest_sim::{NodeReport, NodeSimulation};
use pred_metrics::{ErrorSummary, EvalProtocol, RecordSink, RunCost, StreamingEval};
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use solar_predict::Predictor;
use solar_synth::{SynthCounters, TraceGenerator};
use solar_trace::{PowerTrace, SlotView, SlotsPerDay};
use std::collections::HashMap;
use std::time::Instant;

/// Outcome of one (scenario, predictor, manager) job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Predictor label.
    pub predictor: String,
    /// Manager label.
    pub manager: String,
    /// Matrix coordinates.
    pub spec: JobSpec,
    /// Prediction accuracy under the paper's protocol (metrics pass).
    pub summary: ErrorSummary,
    /// Management outcome (simulation pass).
    pub report: NodeReport,
    /// What the job cost: wall time (both passes; non-deterministic),
    /// the predictor's peak candidate count (deterministic), and the
    /// peak trace bytes held (full trace when materialized, one day's
    /// buffer when streamed).
    pub cost: RunCost,
}

/// How a run spent its synthesis passes, by kind. The single-pass
/// invariant bounds the total by one per fresh scenario plus
/// pre-passes — never by the job count. Recorded in the run ledger as
/// the `synth/*` counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PassBreakdown {
    /// Traces generated into the cache (one per fresh admitted
    /// scenario).
    pub trace_generations: usize,
    /// Streamed slot passes (one per fresh non-admitted scenario).
    pub streamed_passes: usize,
    /// ROI pre-passes spent by streamed units above the metrics-log
    /// cap (the paper's filter needs the reference peak up front).
    pub roi_prepasses: usize,
}

impl PassBreakdown {
    /// Total synthesis passes of any kind.
    pub fn total(&self) -> usize {
        self.trace_generations + self.streamed_passes + self.roi_prepasses
    }

    fn add(&mut self, other: PassBreakdown) {
        self.trace_generations += other.trace_generations;
        self.streamed_passes += other.streamed_passes;
        self.roi_prepasses += other.roi_prepasses;
    }
}

/// Everything one fleet run produces.
#[derive(Clone, Debug)]
pub struct FleetResult {
    /// Per-job outcomes, in deterministic job order.
    pub outcomes: Vec<JobOutcome>,
    /// The reduced, ranked scorecard.
    pub scorecard: Scorecard,
    /// Jobs answered from the cache (0 for a fresh run).
    pub cached_jobs: usize,
    /// Jobs evaluated through the streamed path (no full-horizon trace
    /// allocation) this run.
    pub streamed_jobs: usize,
    /// Synthesis passes this run spent, broken down by kind.
    pub passes: PassBreakdown,
}

impl FleetResult {
    /// Synthesis passes this run spent (all kinds).
    pub fn synthesis_passes(&self) -> usize {
        self.passes.total()
    }
}

/// A sharded fleet run: the manifest plus one scorecard shard per
/// scenario subset — the format for matrices whose monolithic scorecard
/// no longer fits one JSON document. [`Scorecard::merge_shards`]
/// reassembles the monolithic scorecard byte-for-byte.
#[derive(Clone, Debug)]
pub struct ShardedFleetResult {
    /// Which scenario lives in which shard, in matrix order.
    pub manifest: ShardManifest,
    /// The shards, indexed `0..manifest.shard_count`.
    pub shards: Vec<ScorecardShard>,
    /// Per-job outcomes, in deterministic job order.
    pub outcomes: Vec<JobOutcome>,
    /// Jobs answered from the cache.
    pub cached_jobs: usize,
    /// Jobs evaluated through the streamed path.
    pub streamed_jobs: usize,
    /// Synthesis passes this run spent, broken down by kind.
    pub passes: PassBreakdown,
}

impl ShardedFleetResult {
    /// Synthesis passes this run spent (all kinds).
    pub fn synthesis_passes(&self) -> usize {
        self.passes.total()
    }
}

/// How much memory the engine may spend on materialized traces.
///
/// Scenarios are admitted greedily in matrix order — a deterministic
/// admission order depending only on the matrix and the resolved
/// budget; a scenario whose trace would push the running total past the
/// budget runs **streamed** instead
/// ([`SlotStream`](solar_synth::SlotStream)-driven, one day buffered).
/// Outputs stay byte-identical across policies, thread counts and cache
/// warmth, because both sources drive the same per-slot machines.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceCachePolicy {
    /// Materialize every trace (the classic engine behaviour).
    Unbounded,
    /// Materialize traces until this many bytes of trace data are held;
    /// stream the rest.
    Bounded(u64),
    /// Size the trace budget from a memory ceiling: `1/8` of the
    /// configured ceiling when given, else `1/8` of the machine's
    /// available memory detected at run start, else the fixed
    /// [`ADAPTIVE_FALLBACK_BUDGET_BYTES`] (4 MiB) default. The engine
    /// default: small fleets materialize, fleets that would not fit
    /// stream — with byte-identical output either way (only the
    /// materialize/stream split moves with the machine).
    Adaptive {
        /// Optional configured memory ceiling in bytes; `None` detects
        /// available memory at run start.
        ceiling_bytes: Option<u64>,
    },
}

/// The adaptive policy's trace budget when no ceiling is configured and
/// the machine's available memory cannot be detected.
pub const ADAPTIVE_FALLBACK_BUDGET_BYTES: u64 = 4 << 20;

/// Where a run's trace budget came from — the previously invisible
/// half of the adaptive policy's decision, now recorded in the run
/// ledger (`admission/trace_budget_source`) and printed in scorecard
/// text output.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TraceBudgetSource {
    /// [`TraceCachePolicy::Unbounded`]: no budget at all.
    Unbounded,
    /// [`TraceCachePolicy::Bounded`]: the configured byte count.
    Configured,
    /// Adaptive with an explicit ceiling: `ceiling / 8`.
    AdaptiveCeiling,
    /// Adaptive from `/proc/meminfo` `MemAvailable`: `available / 8`.
    AdaptiveDetectedMemory,
    /// Adaptive with nothing to consult: the fixed 4 MiB fallback.
    AdaptiveFallback,
}

impl std::fmt::Display for TraceBudgetSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TraceBudgetSource::Unbounded => "unbounded",
            TraceBudgetSource::Configured => "configured",
            TraceBudgetSource::AdaptiveCeiling => "adaptive-ceiling",
            TraceBudgetSource::AdaptiveDetectedMemory => "adaptive-detected-memory",
            TraceBudgetSource::AdaptiveFallback => "adaptive-fallback",
        })
    }
}

/// A trace budget as one run enforces it: the byte count (`None` =
/// unbounded) plus where it came from. Resolved **once** per run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ResolvedTraceBudget {
    /// Enforced budget in bytes; `None` means unbounded.
    pub bytes: Option<u64>,
    /// How the bytes were chosen.
    pub source: TraceBudgetSource,
}

impl std::fmt::Display for ResolvedTraceBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.bytes {
            None => write!(f, "unbounded ({})", self.source),
            Some(bytes) => write!(f, "{bytes} bytes ({})", self.source),
        }
    }
}

/// Fraction of the memory ceiling the adaptive policy spends on
/// materialized traces (the denominator: budget = ceiling / 8).
const ADAPTIVE_CEILING_DIVISOR: u64 = 8;

impl TraceCachePolicy {
    /// Materialize every trace.
    pub fn unbounded() -> Self {
        TraceCachePolicy::Unbounded
    }

    /// Materialize traces until `bytes` of trace data are held; stream
    /// the rest.
    pub fn bounded(bytes: u64) -> Self {
        TraceCachePolicy::Bounded(bytes)
    }

    /// Stream every scenario (a zero-byte budget).
    pub fn streaming_only() -> Self {
        Self::bounded(0)
    }

    /// Size the budget from the machine's available memory (default).
    pub fn adaptive() -> Self {
        TraceCachePolicy::Adaptive {
            ceiling_bytes: None,
        }
    }

    /// Size the budget from an explicit memory ceiling — deterministic
    /// across machines, unlike detection.
    pub fn adaptive_with_ceiling(ceiling_bytes: u64) -> Self {
        TraceCachePolicy::Adaptive {
            ceiling_bytes: Some(ceiling_bytes),
        }
    }

    /// The budget a run under this policy enforces, with its source.
    /// For [`TraceCachePolicy::Adaptive`] without a configured ceiling
    /// this consults the machine's available memory, so it may differ
    /// between calls; the engine resolves it **once** per run, keeping
    /// the admission split fixed within a run.
    pub fn resolve(&self) -> ResolvedTraceBudget {
        match *self {
            TraceCachePolicy::Unbounded => ResolvedTraceBudget {
                bytes: None,
                source: TraceBudgetSource::Unbounded,
            },
            TraceCachePolicy::Bounded(bytes) => ResolvedTraceBudget {
                bytes: Some(bytes),
                source: TraceBudgetSource::Configured,
            },
            TraceCachePolicy::Adaptive { ceiling_bytes } => {
                let (ceiling, source) = match ceiling_bytes {
                    Some(ceiling) => (Some(ceiling), TraceBudgetSource::AdaptiveCeiling),
                    None => match detected_available_memory_bytes() {
                        Some(available) => {
                            (Some(available), TraceBudgetSource::AdaptiveDetectedMemory)
                        }
                        None => (None, TraceBudgetSource::AdaptiveFallback),
                    },
                };
                ResolvedTraceBudget {
                    bytes: Some(
                        ceiling
                            .map(|c| c / ADAPTIVE_CEILING_DIVISOR)
                            .unwrap_or(ADAPTIVE_FALLBACK_BUDGET_BYTES),
                    ),
                    source,
                }
            }
        }
    }

    /// The resolved budget's byte count alone (see
    /// [`TraceCachePolicy::resolve`]).
    pub fn budget_bytes(&self) -> Option<u64> {
        self.resolve().bytes
    }

    fn admits(resolved_budget: Option<u64>, running_total: u64, trace_bytes: u64) -> bool {
        match resolved_budget {
            None => true,
            Some(budget) => running_total.saturating_add(trace_bytes) <= budget,
        }
    }
}

impl Default for TraceCachePolicy {
    fn default() -> Self {
        Self::adaptive()
    }
}

/// `MemAvailable` from `/proc/meminfo`, in bytes (`None` off Linux or
/// when unreadable).
fn detected_available_memory_bytes() -> Option<u64> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    let meminfo = std::fs::read_to_string("/proc/meminfo").ok()?;
    let line = meminfo
        .lines()
        .find(|line| line.starts_with("MemAvailable:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// Memo of traces and job outcomes across runs of one engine — the
/// incremental re-scoring state. Create with [`FleetEngine::new_cache`];
/// feed to [`FleetEngine::run_cached`]. The cache is bound to the
/// engine's master seed and protocol and refuses to serve any other.
#[derive(Clone, Debug, Default)]
pub struct FleetCache {
    master_seed: u64,
    protocol: Option<EvalProtocol>,
    /// Traces keyed by the scenario's full JSON form (not just its
    /// name, so a mutated same-name scenario can never alias).
    traces: HashMap<String, PowerTrace>,
    /// Outcomes keyed by (scenario JSON, predictor label, manager
    /// label); labels are injective over specs by contract.
    outcomes: HashMap<(String, String, String), JobOutcome>,
}

impl FleetCache {
    /// Number of memoized job outcomes.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the cache holds no outcomes.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Number of memoized scenario traces.
    pub fn trace_count(&self) -> usize {
        self.traces.len()
    }

    /// Bytes of trace data the cache currently holds.
    pub fn trace_bytes(&self) -> usize {
        self.traces
            .values()
            .map(|t| std::mem::size_of_val(t.samples()))
            .sum()
    }

    /// Aggregate cost of every distinct job this cache has evaluated —
    /// the true cost of an incremental loop, with re-served jobs
    /// counted once (order-independent, so stable despite the map).
    pub fn cost(&self) -> pred_metrics::CostAggregate {
        pred_metrics::CostAggregate::of(self.outcomes.values().map(|o| o.cost))
    }
}

/// Per-job metrics-log cap on the streamed path: scenarios whose
/// prediction log would exceed this fold records into O(1) streaming
/// accumulators (at the cost of one ROI pre-pass per scenario) instead
/// of materializing the log. 1 MiB keeps every sub-year scenario on the
/// cheap single-pass path while multi-year horizons stay bounded.
const STREAMED_LOG_CAP_BYTES: usize = 1 << 20;

/// The streamed metrics pass's record sink: a materialized log under
/// [`STREAMED_LOG_CAP_BYTES`], streaming protocol accumulators above
/// it. Both evaluate through the same accumulator code, so the variants
/// are bit-identical in output.
enum MetricsSink {
    Log(pred_metrics::PredictionLog),
    Streaming(StreamingEval),
}

impl RecordSink for MetricsSink {
    fn push_record(&mut self, record: pred_metrics::PredictionRecord) {
        match self {
            MetricsSink::Log(log) => log.push(record),
            MetricsSink::Streaming(eval) => eval.push_record(record),
        }
    }
}

/// One schedulable unit of a fleet run: **all** of one scenario's fresh
/// jobs, evaluated over a single slot pass — from the cached trace when
/// the scenario is admitted, from a generator stream otherwise.
struct WorkUnit {
    scenario_idx: usize,
    /// Fresh job indices, in matrix job order.
    job_indices: Vec<usize>,
}

/// What evaluating one work unit yields: `(job index, outcome)` pairs
/// plus the synthesis passes the unit spent (units only ever spend
/// streamed passes and ROI pre-passes; trace generations happen in
/// phase 1).
type UnitOutcomes = (Vec<(usize, JobOutcome)>, PassBreakdown);

/// The parallel fleet evaluator.
#[derive(Clone, Debug)]
pub struct FleetEngine {
    master_seed: u64,
    threads: Option<usize>,
    protocol: EvalProtocol,
    cache_policy: TraceCachePolicy,
    shards: Option<usize>,
    collector: Collector,
}

impl FleetEngine {
    /// An engine deriving all randomness from `master_seed`, evaluating
    /// under the paper's protocol, using all available cores and the
    /// adaptive trace-cache policy (small fleets materialize, fleets
    /// that would not fit in memory stream — byte-identical either
    /// way).
    pub fn new(master_seed: u64) -> Self {
        FleetEngine {
            master_seed,
            threads: None,
            protocol: EvalProtocol::paper(),
            cache_policy: TraceCachePolicy::default(),
            shards: None,
            collector: Collector::noop(),
        }
    }

    /// Pins the worker-thread count (useful for determinism tests and
    /// benchmarking scaling).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Replaces the evaluation protocol.
    pub fn with_protocol(mut self, protocol: EvalProtocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Replaces the trace-cache policy (bounded budgets stream the
    /// overflow; outputs stay byte-identical either way).
    pub fn with_trace_cache(mut self, policy: TraceCachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// Routes [`FleetEngine::run`]/[`FleetEngine::run_cached`] through
    /// the sharded reduction with `shards` shards merged back into the
    /// returned scorecard — byte-identical to the monolithic reduction,
    /// so callers (e.g. the tuner) consume sharded results unchanged.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Attaches an observability collector: runs record ledger
    /// counters and phase spans into it. The default is the no-op
    /// collector, whose calls cost one branch — outputs are
    /// byte-identical either way.
    pub fn with_collector(mut self, collector: Collector) -> Self {
        self.collector = collector;
        self
    }

    /// The attached collector (no-op unless one was attached).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// The master seed.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The trace-cache policy.
    pub fn trace_cache_policy(&self) -> TraceCachePolicy {
        self.cache_policy
    }

    /// An empty cache bound to this engine's seed and protocol.
    pub fn new_cache(&self) -> FleetCache {
        FleetCache {
            master_seed: self.master_seed,
            protocol: Some(self.protocol),
            traces: HashMap::new(),
            outcomes: HashMap::new(),
        }
    }

    /// Runs the whole matrix from scratch.
    ///
    /// # Errors
    ///
    /// Returns the first trace-generation or hardware-construction
    /// error; per-job panics (contract violations) propagate.
    pub fn run(&self, matrix: &FleetMatrix) -> Result<FleetResult, String> {
        let mut cache = self.new_cache();
        self.run_cached(matrix, &mut cache)
    }

    /// Runs the matrix, reusing every trace and job outcome already in
    /// `cache` and evaluating only what changed since the cache was
    /// filled. New traces and outcomes are added to the cache.
    ///
    /// The scorecard is **byte-identical** to what [`FleetEngine::run`]
    /// would produce for the same matrix: jobs are pure functions of
    /// (scenario, predictor, manager, master seed), so a memoized
    /// outcome equals a recomputed one. Only the non-deterministic
    /// wall-time/trace-memory accounting (never rendered into JSON) can
    /// differ.
    ///
    /// # Errors
    ///
    /// Returns an error if the cache is bound to a different seed or
    /// protocol, or on the first trace-generation/hardware error.
    pub fn run_cached(
        &self,
        matrix: &FleetMatrix,
        cache: &mut FleetCache,
    ) -> Result<FleetResult, String> {
        self.check_cache(cache)?;
        self.install(|| {
            let _run_span = self.collector.span("fleet");
            let evaluated = self.evaluate_matrix(matrix, cache)?;
            let mut scorecard = match self.shards {
                None => {
                    let _span = self.collector.span("fleet/score");
                    Scorecard::build(&evaluated.effective, &evaluated.outcomes, self.master_seed)
                }
                Some(count) => {
                    // Routed sharding degrades gracefully on small
                    // matrices (a tuner's per-regime pass may hold one
                    // scenario): clamp instead of erroring.
                    let count = count.clamp(1, evaluated.effective.scenarios.len());
                    let _span = self.collector.span("fleet/score");
                    let (manifest, shards) = Self::shard_outcomes(
                        &evaluated.effective,
                        &evaluated.outcomes,
                        self.master_seed,
                        count,
                    )?;
                    drop(_span);
                    let _span = self.collector.span("fleet/merge");
                    Scorecard::merge_shards_observed(&manifest, &shards, &self.collector)?
                }
            };
            self.collector.count(
                "score/scenarios_ranked",
                evaluated.effective.scenarios.len() as u64,
            );
            scorecard.trace_budget = Some(evaluated.resolved_budget);
            Ok(FleetResult {
                outcomes: evaluated.outcomes,
                scorecard,
                cached_jobs: evaluated.cached_jobs,
                streamed_jobs: evaluated.streamed_jobs,
                passes: evaluated.passes,
            })
        })
    }

    /// Runs the matrix and reduces into `shard_count` scorecard shards
    /// plus the manifest — the artifact set for matrices whose
    /// monolithic scorecard is too large for one document. Scenarios
    /// are assigned round-robin (`scenario_idx % shard_count`), so
    /// multi-year entries spread across shards.
    ///
    /// # Errors
    ///
    /// Rejects a shard count of zero or above the scenario count, and
    /// propagates evaluation errors.
    pub fn run_sharded(
        &self,
        matrix: &FleetMatrix,
        shard_count: usize,
    ) -> Result<ShardedFleetResult, String> {
        let mut cache = self.new_cache();
        self.run_sharded_cached(matrix, shard_count, &mut cache)
    }

    /// [`FleetEngine::run_sharded`] through a warm cache.
    ///
    /// # Errors
    ///
    /// As [`FleetEngine::run_sharded`], plus cache-binding mismatches.
    pub fn run_sharded_cached(
        &self,
        matrix: &FleetMatrix,
        shard_count: usize,
        cache: &mut FleetCache,
    ) -> Result<ShardedFleetResult, String> {
        self.check_cache(cache)?;
        self.install(|| {
            let _run_span = self.collector.span("fleet");
            let evaluated = self.evaluate_matrix(matrix, cache)?;
            let _span = self.collector.span("fleet/score");
            let (manifest, shards) = Self::shard_outcomes(
                &evaluated.effective,
                &evaluated.outcomes,
                self.master_seed,
                shard_count,
            )?;
            self.collector.count(
                "score/scenarios_ranked",
                evaluated.effective.scenarios.len() as u64,
            );
            Ok(ShardedFleetResult {
                manifest,
                shards,
                outcomes: evaluated.outcomes,
                cached_jobs: evaluated.cached_jobs,
                streamed_jobs: evaluated.streamed_jobs,
                passes: evaluated.passes,
            })
        })
    }

    fn check_cache(&self, cache: &mut FleetCache) -> Result<(), String> {
        let unbound =
            cache.protocol.is_none() && cache.outcomes.is_empty() && cache.traces.is_empty();
        if !unbound
            && (cache.master_seed != self.master_seed || cache.protocol != Some(self.protocol))
        {
            return Err("fleet cache is bound to a different master seed or protocol".to_string());
        }
        cache.master_seed = self.master_seed;
        cache.protocol = Some(self.protocol);
        Ok(())
    }

    fn install<T>(&self, f: impl FnOnce() -> Result<T, String>) -> Result<T, String> {
        match self.threads {
            Some(threads) => ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .map_err(|e| e.to_string())?
                .install(f),
            None => f(),
        }
    }

    /// Projects the matrix's correlated fleet-wide events into each
    /// affected scenario's fault list. Every event realizes from one
    /// shared seed, so it hits all its scenarios on the same days; the
    /// projected faults live in the scenario (and hence its JSON/cache
    /// key), so caching and determinism need no special cases.
    fn project_fleet_faults(&self, matrix: &FleetMatrix) -> Result<FleetMatrix, String> {
        let mut effective = matrix.clone();
        for (index, fault) in matrix.fleet_faults.iter().enumerate() {
            let salted = format!("fleet-fault/{index}");
            let event_seed = solar_trace::hash::fnv1a(&salted) ^ self.master_seed.rotate_left(23);
            for scenario in &mut effective.scenarios {
                scenario.faults.extend(fault.project(event_seed, scenario)?);
            }
        }
        effective.fleet_faults.clear();
        Ok(effective)
    }

    /// The full evaluation pass: fleet-fault projection, cache-policy
    /// admission, parallel materialized/streamed work units, cache
    /// fill, and assembly in job order.
    fn evaluate_matrix(
        &self,
        matrix: &FleetMatrix,
        cache: &mut FleetCache,
    ) -> Result<EvaluatedMatrix, String> {
        let effective = {
            let _span = self.collector.span("fleet/project");
            self.collector
                .count("faults/fleet_events", matrix.fleet_faults.len() as u64);
            if matrix.fleet_faults.is_empty() {
                matrix.clone()
            } else {
                self.project_fleet_faults(matrix)?
            }
        };
        let matrix = &effective;
        self.collector.count(
            "faults/fault_specs",
            matrix.scenarios.iter().map(|s| s.faults.len() as u64).sum(),
        );

        // Stable per-scenario cache keys: the full JSON form.
        let scenario_keys: Vec<String> = matrix
            .scenarios
            .iter()
            .map(|s| s.to_json().render())
            .collect();
        let predictor_labels: Vec<String> = matrix.predictors.iter().map(|p| p.label()).collect();
        let manager_labels: Vec<String> = matrix.managers.iter().map(|m| m.label()).collect();

        // Cache-policy admission, greedily in scenario order — a pure
        // function of the matrix and the budget resolved once here, so
        // the materialize/stream split never depends on thread timing
        // (an adaptive policy consults memory exactly once per run).
        // Warm traces stay admitted (they are already paid for) and
        // count toward the budget.
        let admission_span = self.collector.span("fleet/admission");
        let resolved = self.cache_policy.resolve();
        let resolved_budget = resolved.bytes;
        let mut admitted = vec![false; matrix.scenarios.len()];
        let mut warm_traces = 0u64;
        let mut running_total = 0u64;
        for (idx, scenario) in matrix.scenarios.iter().enumerate() {
            let bytes = Self::trace_bytes(scenario)?;
            let warm = cache.traces.contains_key(&scenario_keys[idx]);
            warm_traces += warm as u64;
            if warm || TraceCachePolicy::admits(resolved_budget, running_total, bytes) {
                admitted[idx] = true;
                running_total = running_total.saturating_add(bytes);
            }
        }
        if self.collector.is_enabled() {
            self.collector.label(
                "admission/trace_budget_source",
                &resolved.source.to_string(),
            );
            if let Some(bytes) = resolved.bytes {
                self.collector.gauge("admission/trace_budget_bytes", bytes);
            }
            let materialized = admitted.iter().filter(|&&a| a).count() as u64;
            self.collector
                .count("admission/materialized_scenarios", materialized);
            self.collector.count(
                "admission/streamed_scenarios",
                matrix.scenarios.len() as u64 - materialized,
            );
            self.collector
                .count("admission/admitted_trace_bytes", running_total);
            self.collector.count("cache/trace_hits", warm_traces);
        }
        drop(admission_span);

        // Phase 1: traces for admitted scenarios the cache has not
        // seen, in parallel, shared read-only by every job of that
        // scenario.
        let synthesis_span = self.collector.span("fleet/synthesis");
        let missing: Vec<usize> = (0..matrix.scenarios.len())
            .filter(|&idx| admitted[idx] && !cache.traces.contains_key(&scenario_keys[idx]))
            .collect();
        let generated: Vec<Result<(PowerTrace, SynthCounters), String>> = missing
            .par_iter()
            .map(|&idx| self.generate_trace(&matrix.scenarios[idx]))
            .collect();
        let mut synthesis_cost = SynthCounters::default();
        for (&idx, generated) in missing.iter().zip(generated) {
            let (trace, counters) = generated?;
            synthesis_cost.add(counters);
            cache.traces.insert(scenario_keys[idx].clone(), trace);
        }
        if self.collector.is_enabled() {
            self.collector
                .count("synth/trace_generations", missing.len() as u64);
            // Keystream/draw totals for the whole materialization
            // phase: one ledger update, never per slot or per trace.
            self.collector
                .count("synth/keystream_blocks", synthesis_cost.keystream_blocks);
            self.collector
                .count("synth/normal_draws", synthesis_cost.normal_draws);
        }
        drop(synthesis_span);

        // Phase 2: only the jobs the cache cannot answer, grouped into
        // **one work unit per scenario** — the unit's single slot pass
        // (over the cached trace or a generator stream) feeds every
        // fresh job's machines, so adding candidates to the matrix adds
        // per-slot arithmetic, never whole passes.
        let jobs = matrix.jobs();
        let job_keys: Vec<(String, String, String)> = jobs
            .iter()
            .map(|job| {
                (
                    scenario_keys[job.scenario_idx].clone(),
                    predictor_labels[job.predictor_idx].clone(),
                    manager_labels[job.manager_idx].clone(),
                )
            })
            .collect();
        let fresh: Vec<usize> = (0..jobs.len())
            .filter(|&idx| !cache.outcomes.contains_key(&job_keys[idx]))
            .collect();
        let cached_jobs = jobs.len() - fresh.len();
        if self.collector.is_enabled() {
            self.collector.count("jobs/evaluated", jobs.len() as u64);
            self.collector.count("cache/job_hits", cached_jobs as u64);
            self.collector.count("cache/job_misses", fresh.len() as u64);
        }

        let mut jobs_by_scenario: HashMap<usize, Vec<usize>> = HashMap::new();
        for &idx in &fresh {
            jobs_by_scenario
                .entry(jobs[idx].scenario_idx)
                .or_default()
                .push(idx);
        }
        let mut streamed_jobs = 0;
        let mut units: Vec<WorkUnit> = Vec::new();
        for (scenario_idx, &scenario_admitted) in admitted.iter().enumerate() {
            if let Some(job_indices) = jobs_by_scenario.remove(&scenario_idx) {
                if !scenario_admitted {
                    streamed_jobs += job_indices.len();
                }
                units.push(WorkUnit {
                    scenario_idx,
                    job_indices,
                });
            }
        }

        let evaluated: Vec<Result<UnitOutcomes, String>> = units
            .par_iter()
            .map(|unit| {
                let trace = admitted[unit.scenario_idx]
                    .then(|| &cache.traces[&scenario_keys[unit.scenario_idx]]);
                self.evaluate_scenario_unit(
                    matrix,
                    unit.scenario_idx,
                    &unit.job_indices,
                    &jobs,
                    trace,
                )
            })
            .collect();
        let mut passes = PassBreakdown {
            trace_generations: missing.len(),
            ..PassBreakdown::default()
        };
        for unit_outcomes in evaluated {
            let (unit_outcomes, unit_passes) = unit_outcomes?;
            passes.add(unit_passes);
            for (idx, outcome) in unit_outcomes {
                cache.outcomes.insert(job_keys[idx].clone(), outcome);
            }
        }

        // Phase 3: assemble in job order (cached outcomes carry stale
        // matrix coordinates from the run that produced them — rewrite).
        let outcomes: Vec<JobOutcome> = jobs
            .iter()
            .zip(&job_keys)
            .map(|(job, key)| {
                let mut outcome = cache.outcomes[key].clone();
                outcome.spec = *job;
                outcome
            })
            .collect();
        Ok(EvaluatedMatrix {
            effective,
            outcomes,
            cached_jobs,
            streamed_jobs,
            passes,
            resolved_budget: resolved,
        })
    }

    /// Splits outcomes into per-shard scorecards plus the manifest.
    fn shard_outcomes(
        matrix: &FleetMatrix,
        outcomes: &[JobOutcome],
        master_seed: u64,
        shard_count: usize,
    ) -> Result<(ShardManifest, Vec<ScorecardShard>), String> {
        if shard_count == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if shard_count > matrix.scenarios.len() {
            return Err(format!(
                "shard count {shard_count} exceeds the {} scenarios",
                matrix.scenarios.len()
            ));
        }
        let rankings = Scorecard::per_scenario_rankings(matrix, outcomes);
        let manifest = ShardManifest {
            master_seed,
            shard_count,
            scenarios: matrix
                .scenarios
                .iter()
                .enumerate()
                .map(|(idx, s)| (s.name.clone(), idx % shard_count))
                .collect(),
        };
        let shards = (0..shard_count)
            .map(|shard_index| {
                let per_scenario: Vec<_> = rankings
                    .iter()
                    .enumerate()
                    .filter(|(idx, _)| idx % shard_count == shard_index)
                    .map(|(_, ranking)| ranking.clone())
                    .collect();
                let cost = pred_metrics::CostAggregate::of(
                    outcomes
                        .iter()
                        .filter(|o| o.spec.scenario_idx % shard_count == shard_index)
                        .map(|o| o.cost),
                );
                ScorecardShard {
                    shard_index,
                    master_seed,
                    per_scenario,
                    cost,
                }
            })
            .collect();
        Ok((manifest, shards))
    }

    /// The deterministic per-scenario seed: stable across runs, thread
    /// counts, and platforms; distinct per scenario name.
    ///
    /// The hashed string is *salted*: a custom site built from the same
    /// scenario name carries `seed_stream = fnv1a(name)`, and the trace
    /// generator XORs `seed ^ seed_stream` — hashing the bare name here
    /// would cancel it out and hand every custom-site scenario the same
    /// RNG stream (a regression test pins this).
    fn scenario_seed(&self, scenario: &Scenario) -> u64 {
        let salted = format!("fleet-scenario/{}", scenario.name);
        solar_trace::hash::fnv1a(&salted) ^ self.master_seed.rotate_left(17)
    }

    /// Bytes a scenario's materialized trace would occupy.
    fn trace_bytes(scenario: &Scenario) -> Result<u64, String> {
        let config = scenario.site_config()?;
        Ok((scenario.days * config.resolution.samples_per_day()) as u64
            * std::mem::size_of::<f64>() as u64)
    }

    /// Generates a scenario's trace along with its synthesis-cost
    /// counters (keystream blocks, normal draws) for the run ledger.
    fn generate_trace(&self, scenario: &Scenario) -> Result<(PowerTrace, SynthCounters), String> {
        let config = scenario.site_config()?;
        TraceGenerator::new(config, self.scenario_seed(scenario))
            .generate_days_counted(scenario.days)
            .map_err(|e| e.to_string())
    }

    /// The universal fast path: **one slot pass per scenario** drives
    /// every fresh job's state machines simultaneously. The slots come
    /// from the cached trace when the scenario is admitted
    /// (materialized), else from a [`solar_synth::SlotStream`] holding
    /// one day of samples; both sources produce the identical slot
    /// values, so the choice never shows in the output.
    ///
    /// Jobs whose predictor is float WCMA are additionally folded into
    /// a shared [`CandidateBank`] per pass half (metrics, simulation):
    /// every such job of a scenario sees the identical observation
    /// stream (its fault injector realizes from the same seed), so the
    /// bank computes each candidate's predictions once per slot with
    /// the per-candidate arithmetic unchanged — bit-identical to a solo
    /// run, pinned by core property tests and the engine equality tests
    /// here.
    ///
    /// The metrics pass picks its record sink by horizon: short
    /// scenarios collect a `PredictionLog`; past
    /// [`STREAMED_LOG_CAP_BYTES`] per job the records fold into O(1)
    /// protocol accumulators ([`pred_metrics::StreamingEval`]) instead,
    /// with an ROI pre-pass supplying the peak the paper's filter needs
    /// up front — a view walk when materialized, one extra generator
    /// pass when streamed. The two sinks are bit-identical, so the
    /// choice is invisible in the output.
    ///
    /// Returns the job outcomes plus how many synthesis passes the unit
    /// spent (0 for materialized units, 1 per generator pass else).
    fn evaluate_scenario_unit(
        &self,
        matrix: &FleetMatrix,
        scenario_idx: usize,
        job_indices: &[usize],
        jobs: &[JobSpec],
        trace: Option<&PowerTrace>,
    ) -> Result<UnitOutcomes, String> {
        let started = Instant::now();
        let scenario = &matrix.scenarios[scenario_idx];
        let _unit_span = self
            .collector
            .span_scenario("fleet/simulate", &scenario.name);
        let n = scenario.slots_per_day as usize;
        let slots = SlotsPerDay::new(scenario.slots_per_day).map_err(|e| e.to_string())?;
        let slot_seconds = slots.slot_seconds_f64();
        let fault_seed = self.scenario_seed(scenario) ^ 0xFA01;
        let node_config = scenario
            .node
            .node_config(storage_capacity_factor(&scenario.faults))?;
        let mut passes = PassBreakdown::default();
        // Keystream/normal-draw totals across this unit's generator
        // streams (ROI prepass + evaluation pass); merged into the
        // ledger once at the end of the unit, never per slot.
        let mut synth_cost = SynthCounters::default();

        let view = match trace {
            Some(trace) => Some(SlotView::new(trace, slots).map_err(|e| e.to_string())?),
            None => None,
        };
        let generator = match view {
            Some(_) => None,
            None => Some(TraceGenerator::new(
                scenario.site_config()?,
                self.scenario_seed(scenario),
            )),
        };

        // Sink selection (see the method docs): materialized units
        // always fold records straight into O(1) streaming accumulators
        // (their ROI pre-pass is a cheap view walk, and skipping the
        // log halves record handling); streamed units only pay the
        // extra generator pre-pass once the log would exceed the cap.
        let log_bytes = scenario.days * n * std::mem::size_of::<pred_metrics::PredictionRecord>();
        let streaming_eval = view.is_some() || log_bytes > STREAMED_LOG_CAP_BYTES;

        // ROI pre-pass (streaming sinks only): the peak of the (dimmed)
        // reference means over every slot that becomes a record — all
        // but the final one, mirroring `PredictionLog::peak_actual_mean`
        // exactly. The probe injector is only consulted for its
        // deterministic sky factor (no per-slot RNG draws happen here).
        let mut roi_peak = 0.0_f64;
        if streaming_eval {
            let sky_probe = FaultInjector::new(&scenario.faults, fault_seed, scenario.days, n);
            let mut pending_mean: Option<f64> = None;
            let mut absorb = |day: usize, mean_power: f64| {
                if let Some(mean) = pending_mean.take() {
                    roi_peak = roi_peak.max(mean);
                }
                pending_mean = Some(mean_power * sky_probe.sky_factor(day));
            };
            match (&view, &generator) {
                (Some(view), _) => {
                    for day in 0..view.days() {
                        for slot in 0..n {
                            absorb(day, view.mean_power(day, slot));
                        }
                    }
                }
                (None, Some(generator)) => {
                    passes.roi_prepasses += 1;
                    let mut stream = generator
                        .slot_stream(scenario.days, slots)
                        .map_err(|e| e.to_string())?;
                    for slot in stream.by_ref() {
                        absorb(slot.day, slot.mean_power);
                    }
                    synth_cost.add(stream.counters());
                }
                (None, None) => unreachable!("unit has a view or a generator"),
            }
        }

        // Distinct predictors among the fresh jobs: the metrics pass
        // and the simulation pass's *predictions* are pure functions of
        // (scenario, predictor) — managers only steer duty — so all
        // per-slot kernel work and record assembly happens once per
        // distinct predictor, and every job reuses its predictor's
        // summary and prediction stream.
        let mut distinct_predictors: Vec<usize> = Vec::new();
        let job_kernel: Vec<usize> = job_indices
            .iter()
            .map(|&job_idx| {
                let predictor_idx = jobs[job_idx].predictor_idx;
                match distinct_predictors.iter().position(|&p| p == predictor_idx) {
                    Some(slot) => slot,
                    None => {
                        distinct_predictors.push(predictor_idx);
                        distinct_predictors.len() - 1
                    }
                }
            })
            .collect();

        // Kernel per distinct predictor: float WCMA folds into one
        // shared bank; everything else gets one owned instance. One
        // kernel serves *both* pass halves, because what the metrics
        // predictor observes is bit-identical to what the simulation
        // predictor observes: measurement corruption never depends on
        // the harvest argument (pinned by a faults.rs test), so the
        // historically separate per-pass predictor instances always
        // evolved in lockstep — one instance now produces that shared
        // prediction stream once.
        enum Kernel {
            Banked(usize),
            Solo(usize),
        }
        let mut kernels: Vec<Kernel> = Vec::with_capacity(distinct_predictors.len());
        let mut bank_params: Vec<solar_predict::WcmaParams> = Vec::new();
        let mut solo: Vec<Box<dyn Predictor>> = Vec::new();
        for &predictor_idx in &distinct_predictors {
            let spec = &matrix.predictors[predictor_idx];
            match *spec {
                crate::PredictorSpec::Wcma { alpha, days, k } => {
                    bank_params.push(
                        solar_predict::WcmaParams::new(alpha, days, k, n)
                            .map_err(|e| e.to_string())?,
                    );
                    kernels.push(Kernel::Banked(bank_params.len() - 1));
                }
                _ => {
                    solo.push(spec.build(n)?);
                    kernels.push(Kernel::Solo(solo.len() - 1));
                }
            }
        }
        let mut bank = if bank_params.is_empty() {
            None
        } else {
            Some(solar_predict::CandidateBank::new(bank_params).map_err(|e| e.to_string())?)
        };

        let new_sink = |streaming_eval: bool| {
            if streaming_eval {
                MetricsSink::Streaming(StreamingEval::new(self.protocol, roi_peak))
            } else {
                MetricsSink::Log(pred_metrics::PredictionLog::with_capacity(
                    n,
                    scenario.days * n,
                ))
            }
        };

        // Every job of a scenario realizes the *identical* fault
        // corruption (injectors are pure functions of the shared seed
        // and the slot sequence), so the unit realizes it exactly once
        // per slot — one injector shared by all jobs and both pass
        // halves — instead of two injector instances per job.
        let mut injector = FaultInjector::new(&scenario.faults, fault_seed, scenario.days, n);

        // One record feed per distinct predictor, and one prediction
        // scratch slot the simulation machines read from.
        let mut feeds: Vec<solar_predict::PredictionFeed<MetricsSink>> = kernels
            .iter()
            .map(|_| solar_predict::PredictionFeed::new(new_sink(streaming_eval)))
            .collect();
        let mut predictions = vec![0.0_f64; kernels.len()];

        // One simulation machine per job — storage and duty state is
        // where the manager axis matters.
        struct JobState {
            manager: Box<dyn harvest_sim::PowerManager>,
            hook: harvest_sim::NoFaults,
        }
        let mut job_states: Vec<JobState> = job_indices
            .iter()
            .map(|&job_idx| JobState {
                manager: matrix.managers[jobs[job_idx].manager_idx].build(),
                hook: harvest_sim::NoFaults,
            })
            .collect();
        let mut sims: Vec<NodeSimulation<'_>> = job_states
            .iter_mut()
            .map(|state| {
                NodeSimulation::with_external_predictions(
                    state.manager.as_mut(),
                    &node_config,
                    &mut state.hook,
                    slot_seconds,
                    n,
                )
            })
            .collect();

        // The single slot pass. The corruption realization happens once
        // and serves both halves: the metrics half records predictions
        // against ground-truth references scaled by the day's
        // climate-dimming factor — dimming is physical sky state, so
        // accuracy is judged against the sky that actually existed (a
        // predictor perfectly tracking a la-niña year must not register
        // phantom MAPE against the counterfactual clean year); sensor
        // faults and panel soiling leave the references untouched. The
        // simulation half absorbs the corrupted physical harvest and
        // plans each job's duty from its predictor's shared prediction.
        {
            // With streaming sinks the protocol's record filter is
            // decidable per slot *before* any per-predictor work — it
            // depends only on (day, reference mean, peak), all shared —
            // so discarded slots skip record assembly for every
            // predictor at once. A record opened at slot t completes at
            // slot t+1, hence the carried `prior_included`.
            let mut prior_included = false;
            let mut feed_slot = |day: usize, slot: usize, start_sample: f64, mean_power: f64| {
                let mut harvest_j = node_config.panel.power_w(mean_power) * slot_seconds;
                let mut observed = start_sample;
                injector.on_slot(day, slot, &mut harvest_j, &mut observed);
                let sky = injector.sky_factor(day);
                let ref_start = start_sample * sky;
                let ref_mean = mean_power * sky;
                let included =
                    !streaming_eval || self.protocol.includes(day as u32, ref_mean, roi_peak);
                let bank_predictions = bank.as_mut().map(|bank| bank.observe_and_predict(observed));
                for ((kernel, feed), prediction) in
                    kernels.iter().zip(&mut feeds).zip(&mut predictions)
                {
                    let predicted = match *kernel {
                        Kernel::Banked(candidate) => {
                            bank_predictions.as_ref().expect("bank built")[candidate]
                        }
                        Kernel::Solo(idx) => solo[idx].observe_and_predict(observed),
                    };
                    if prior_included {
                        feed.flush_pending(ref_start);
                    }
                    if included {
                        feed.open_pending(day, slot, predicted, ref_mean);
                    }
                    *prediction = predicted;
                }
                prior_included = included;
                for (sim, &kernel_slot) in sims.iter_mut().zip(&job_kernel) {
                    sim.absorb_corrupted(harvest_j);
                    sim.plan_with(predictions[kernel_slot]);
                }
            };
            match (&view, &generator) {
                (Some(view), _) => {
                    for day in 0..view.days() {
                        for slot in 0..n {
                            feed_slot(
                                day,
                                slot,
                                view.start_sample(day, slot),
                                view.mean_power(day, slot),
                            );
                        }
                    }
                }
                (None, Some(generator)) => {
                    passes.streamed_passes += 1;
                    let mut stream = generator
                        .slot_stream(scenario.days, slots)
                        .map_err(|e| e.to_string())?;
                    for slot in stream.by_ref() {
                        feed_slot(slot.day, slot.slot, slot.start_sample, slot.mean_power);
                    }
                    synth_cost.add(stream.counters());
                }
                (None, None) => unreachable!("unit has a view or a generator"),
            }
        }

        // Peak trace bytes per job: the shared materialized trace, or
        // the one-day stream buffer plus the metrics log when the
        // horizon fit under the cap.
        let peak_trace_bytes = match trace {
            Some(trace) => std::mem::size_of_val(trace.samples()),
            None => {
                let buffer_bytes = scenario.site_config()?.resolution.samples_per_day()
                    * std::mem::size_of::<f64>();
                buffer_bytes + if streaming_eval { 0 } else { log_bytes }
            }
        };

        // One summary per distinct predictor; every job of a manager
        // pairing reuses its predictor's summary verbatim (the metrics
        // pass never depended on the manager — this just stops
        // recomputing the identical value).
        let summaries: Vec<ErrorSummary> = feeds
            .into_iter()
            .map(|feed| match feed.finish() {
                MetricsSink::Log(log) => self.protocol.evaluate(&log),
                MetricsSink::Streaming(eval) => eval.finish(),
            })
            .collect();
        let reports: Vec<NodeReport> = sims.into_iter().map(NodeSimulation::finish).collect();
        let mut results = Vec::with_capacity(job_indices.len());
        for ((&job_idx, &kernel_slot), report) in job_indices.iter().zip(&job_kernel).zip(reports) {
            let job = &jobs[job_idx];
            let predictor_spec = &matrix.predictors[job.predictor_idx];
            results.push((
                job_idx,
                JobOutcome {
                    scenario: scenario.name.clone(),
                    predictor: predictor_spec.label(),
                    manager: matrix.managers[job.manager_idx].label(),
                    spec: *job,
                    summary: summaries[kernel_slot],
                    report,
                    cost: RunCost {
                        wall_nanos: 0, // filled below (shared pass)
                        peak_candidates: predictor_spec.candidate_count(),
                        peak_trace_bytes,
                    },
                },
            ));
        }
        // The slot pass is shared: split its wall time evenly.
        let wall_each =
            (started.elapsed().as_nanos() as u64 / job_indices.len().max(1) as u64).max(1);
        for (_, outcome) in &mut results {
            outcome.cost.wall_nanos = wall_each;
        }
        // Ledger entries for the whole unit, computed arithmetically —
        // one batch of counter updates per scenario, nothing per slot.
        if self.collector.is_enabled() {
            let name = &scenario.name;
            self.collector
                .count_scenario(name, "slots/processed", (scenario.days * n) as u64);
            self.collector
                .count_scenario(name, "jobs/fresh", job_indices.len() as u64);
            // Distribution plane, still at unit granularity: the unit's
            // slot volume and one MAPE sample per distinct predictor —
            // deterministic inputs, so the histograms stay byte-pinned.
            self.collector
                .observe("fleet/unit_slots", (scenario.days * n) as f64);
            for summary in &summaries {
                self.collector.observe("score/mape", summary.mape);
            }
            let banked = kernels
                .iter()
                .filter(|k| matches!(k, Kernel::Banked(_)))
                .count();
            self.collector
                .count_scenario(name, "bank/banked_candidates", banked as u64);
            self.collector
                .count_scenario(name, "bank/solo_predictors", solo.len() as u64);
            self.collector.count_scenario(
                name,
                "faults/injected_specs",
                scenario.faults.len() as u64,
            );
            if passes.streamed_passes > 0 {
                self.collector.count_scenario(
                    name,
                    "synth/streamed_passes",
                    passes.streamed_passes as u64,
                );
            }
            if passes.roi_prepasses > 0 {
                self.collector.count_scenario(
                    name,
                    "synth/roi_prepasses",
                    passes.roi_prepasses as u64,
                );
            }
            if synth_cost != SynthCounters::default() {
                self.collector.count_scenario(
                    name,
                    "synth/keystream_blocks",
                    synth_cost.keystream_blocks,
                );
                self.collector
                    .count_scenario(name, "synth/normal_draws", synth_cost.normal_draws);
            }
        }
        Ok((results, passes))
    }
}

/// Internal result of one full evaluation pass.
struct EvaluatedMatrix {
    /// The matrix actually evaluated (fleet faults projected in).
    effective: FleetMatrix,
    outcomes: Vec<JobOutcome>,
    cached_jobs: usize,
    streamed_jobs: usize,
    passes: PassBreakdown,
    resolved_budget: ResolvedTraceBudget,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::fleet_faults::FleetFault;
    use crate::matrix::{ManagerSpec, PredictorSpec};

    fn small_matrix() -> FleetMatrix {
        let scenarios = vec![
            Catalog::builtin().get("desert-clear-sky").unwrap().clone(),
            Catalog::builtin().get("aging-node").unwrap().clone(),
        ];
        FleetMatrix::new(
            vec![
                PredictorSpec::Wcma {
                    alpha: 0.7,
                    days: 10,
                    k: 2,
                },
                PredictorSpec::Persistence,
            ],
            vec![
                ManagerSpec::EnergyNeutral {
                    target_soc: 0.5,
                    gain: 0.25,
                },
                ManagerSpec::Greedy,
            ],
            scenarios,
        )
        .unwrap()
    }

    #[test]
    fn engine_runs_the_full_matrix() {
        let result = FleetEngine::new(42).run(&small_matrix()).unwrap();
        assert_eq!(result.outcomes.len(), 2 * 2 * 2);
        assert_eq!(result.cached_jobs, 0);
        // The default adaptive budget (≥ the 4 MiB fallback) comfortably
        // admits this matrix's ~0.9 MiB of traces.
        assert_eq!(result.streamed_jobs, 0, "small fleets must not stream");
        for outcome in &result.outcomes {
            assert!(outcome.summary.count > 0, "{}", outcome.scenario);
            assert!(outcome.summary.mape.is_finite());
            assert!(outcome.cost.wall_nanos > 0);
            assert_eq!(outcome.cost.peak_candidates, 1);
            assert!(outcome.cost.peak_trace_bytes > 0);
            assert!(
                outcome.report.energy_balance_error_j()
                    < 1e-6 * outcome.report.harvested_j.max(1.0),
                "{}: {}",
                outcome.scenario,
                outcome.report.energy_balance_error_j()
            );
        }
    }

    #[test]
    fn streaming_only_policy_is_byte_identical_and_never_materializes() {
        let matrix = small_matrix();
        let materialized = FleetEngine::new(5).run(&matrix).unwrap();
        let engine = FleetEngine::new(5).with_trace_cache(TraceCachePolicy::streaming_only());
        let mut cache = engine.new_cache();
        let streamed = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(streamed.streamed_jobs, matrix.job_count());
        assert_eq!(cache.trace_count(), 0, "no trace may materialize");
        assert_eq!(
            streamed.scorecard.to_json_string(),
            materialized.scorecard.to_json_string(),
            "streamed and materialized paths must agree byte-for-byte"
        );
        for (a, b) in streamed.outcomes.iter().zip(&materialized.outcomes) {
            assert_eq!(a.summary, b.summary);
            assert_eq!(a.report, b.report);
            assert!(
                a.cost.peak_trace_bytes < b.cost.peak_trace_bytes,
                "streamed jobs must hold less trace memory"
            );
        }
    }

    #[test]
    fn bounded_budget_splits_materialize_and_stream_deterministically() {
        let matrix = small_matrix();
        // Admit exactly the first scenario (40 days × 1440 samples × 8).
        let first_bytes = 40 * 1440 * 8;
        let engine =
            FleetEngine::new(5).with_trace_cache(TraceCachePolicy::bounded(first_bytes as u64));
        let mut cache = engine.new_cache();
        let result = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(cache.trace_count(), 1);
        assert_eq!(result.streamed_jobs, matrix.job_count() / 2);
        let reference = FleetEngine::new(5).run(&matrix).unwrap();
        assert_eq!(
            result.scorecard.to_json_string(),
            reference.scorecard.to_json_string()
        );
    }

    #[test]
    fn adaptive_policy_resolves_budgets_and_stays_byte_identical() {
        // Configured ceilings resolve deterministically (ceiling / 8)…
        assert_eq!(
            TraceCachePolicy::adaptive_with_ceiling(32 << 20).budget_bytes(),
            Some(4 << 20)
        );
        // …and detection always yields *some* budget (the 4 MiB default
        // when the machine's memory cannot be read).
        // (No floor is asserted on the detected value: a genuinely
        // memory-starved machine may resolve below the fallback — the
        // fallback only applies when detection is impossible.)
        let detected = TraceCachePolicy::adaptive().budget_bytes();
        assert!(detected.is_some_and(|budget| budget > 0));
        assert_eq!(ADAPTIVE_FALLBACK_BUDGET_BYTES, 4 << 20);

        // The resolution also names its source — the decision is no
        // longer invisible.
        assert_eq!(
            TraceCachePolicy::unbounded().resolve(),
            ResolvedTraceBudget {
                bytes: None,
                source: TraceBudgetSource::Unbounded,
            }
        );
        assert_eq!(
            TraceCachePolicy::bounded(512).resolve(),
            ResolvedTraceBudget {
                bytes: Some(512),
                source: TraceBudgetSource::Configured,
            }
        );
        let ceiled = TraceCachePolicy::adaptive_with_ceiling(32 << 20).resolve();
        assert_eq!(ceiled.source, TraceBudgetSource::AdaptiveCeiling);
        assert_eq!(ceiled.to_string(), "4194304 bytes (adaptive-ceiling)");
        let adaptive = TraceCachePolicy::adaptive().resolve();
        assert!(matches!(
            adaptive.source,
            TraceBudgetSource::AdaptiveDetectedMemory | TraceBudgetSource::AdaptiveFallback
        ));

        // A starved ceiling forces streaming; the scorecard must not
        // move by a byte relative to the unbounded run.
        let matrix = small_matrix();
        let unbounded = FleetEngine::new(11)
            .with_trace_cache(TraceCachePolicy::unbounded())
            .run(&matrix)
            .unwrap();
        let starved_engine =
            FleetEngine::new(11).with_trace_cache(TraceCachePolicy::adaptive_with_ceiling(8));
        let mut cache = starved_engine.new_cache();
        let starved = starved_engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(starved.streamed_jobs, matrix.job_count());
        assert_eq!(cache.trace_count(), 0, "starved ceiling must stream");
        assert_eq!(
            starved.scorecard.to_json_string(),
            unbounded.scorecard.to_json_string()
        );
    }

    #[test]
    fn single_pass_accounting_counts_one_synthesis_per_fresh_scenario() {
        let matrix = small_matrix();
        let engine = FleetEngine::new(17);
        let mut cache = engine.new_cache();
        // Fresh materialized run: one generation per scenario, shared by
        // all of its jobs — never one per job.
        let fresh = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(fresh.synthesis_passes(), matrix.scenarios.len());
        assert_eq!(fresh.passes.trace_generations, matrix.scenarios.len());
        // Warm trace cache: new jobs cost zero synthesis passes.
        let mut grown = matrix.clone();
        grown.predictors.push(PredictorSpec::Ewma { gamma: 0.4 });
        let incremental = engine.run_cached(&grown, &mut cache).unwrap();
        assert_eq!(incremental.synthesis_passes(), 0);
        // Fully cached: nothing runs at all.
        let warm = engine.run_cached(&grown, &mut cache).unwrap();
        assert_eq!(warm.synthesis_passes(), 0);
        assert_eq!(warm.cached_jobs, grown.job_count());
        // Streaming-only: one generation pass per scenario per run
        // (these 40-day scenarios stay under the metrics-log cap, so no
        // ROI pre-pass happens).
        let streaming = FleetEngine::new(17)
            .with_trace_cache(TraceCachePolicy::streaming_only())
            .run(&matrix)
            .unwrap();
        assert_eq!(streaming.synthesis_passes(), matrix.scenarios.len());
        assert_eq!(streaming.passes.streamed_passes, matrix.scenarios.len());
        assert_eq!(streaming.passes.roi_prepasses, 0);
    }

    #[test]
    fn collector_records_ledger_and_budget_without_perturbing_output() {
        let matrix = small_matrix();
        let plain = FleetEngine::new(23).run(&matrix).unwrap();
        let collector = Collector::recording();
        let observed = FleetEngine::new(23)
            .with_collector(collector.clone())
            .run(&matrix)
            .unwrap();
        // Collection must not move a byte of pinned output.
        assert_eq!(
            plain.scorecard.to_json_string(),
            observed.scorecard.to_json_string()
        );
        let ledger = collector.ledger();
        let jobs = matrix.job_count() as u64;
        let scenarios = matrix.scenarios.len() as u64;
        assert_eq!(ledger.counter("jobs/evaluated"), jobs);
        assert_eq!(ledger.counter("cache/job_misses"), jobs);
        assert_eq!(ledger.counter("cache/job_hits"), 0);
        assert_eq!(ledger.counter("synth/trace_generations"), scenarios);
        assert_eq!(ledger.counter("score/scenarios_ranked"), scenarios);
        assert_eq!(ledger.counter("jobs/fresh"), jobs);
        assert!(ledger.counter("slots/processed") > 0);
        assert!(ledger
            .label_value("admission/trace_budget_source")
            .is_some());
        // The resolved budget also reaches the scorecard's text output
        // (text-only; the pinned JSON above proved it stays out of it).
        assert!(observed.scorecard.render_text().contains("trace budget: "));
        // Phase spans landed under the run root.
        let report = collector.report();
        let fleet = report
            .spans
            .children
            .iter()
            .find(|c| c.name == "fleet")
            .expect("fleet span recorded");
        assert!(fleet.children.iter().any(|c| c.name == "simulate"));
        assert_eq!(report.scenario_top.len(), matrix.scenarios.len().min(10));
    }

    #[test]
    fn warm_cache_ledger_shows_hits_equal_jobs_and_zero_synthesis() {
        let matrix = small_matrix();
        let engine = FleetEngine::new(29);
        let mut cache = engine.new_cache();
        engine.run_cached(&matrix, &mut cache).unwrap();
        // Second run through a fresh collector: everything is served
        // from the cache.
        let collector = Collector::recording();
        let warm = FleetEngine::new(29)
            .with_collector(collector.clone())
            .run_cached(&matrix, &mut cache)
            .unwrap();
        assert_eq!(warm.cached_jobs, matrix.job_count());
        let ledger = collector.ledger();
        let jobs = matrix.job_count() as u64;
        assert_eq!(ledger.counter("cache/job_hits"), jobs);
        assert_eq!(ledger.counter("cache/job_misses"), 0);
        assert_eq!(
            ledger.counter("cache/trace_hits"),
            matrix.scenarios.len() as u64
        );
        assert_eq!(ledger.counter("synth/trace_generations"), 0);
        assert_eq!(ledger.counter("synth/streamed_passes"), 0);
        assert_eq!(ledger.counter("slots/processed"), 0);
    }

    #[test]
    fn outcomes_are_in_job_order_regardless_of_threads() {
        let matrix = small_matrix();
        let a = FleetEngine::new(7).with_threads(1).run(&matrix).unwrap();
        let b = FleetEngine::new(7).with_threads(4).run(&matrix).unwrap();
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.summary, y.summary);
            assert_eq!(x.report, y.report);
        }
    }

    #[test]
    fn equally_configured_custom_sites_with_different_names_get_different_traces() {
        // Regression: the scenario-seed hash must not cancel against the
        // custom site's name-derived seed_stream (engine XORs the
        // scenario hash in, TraceGenerator XORs seed_stream back out).
        let base = Catalog::builtin().get("four-seasons").unwrap().clone();
        let mut twin = base.clone();
        twin.name = "four-seasons-twin".into();
        twin.days = base.days;
        let engine = FleetEngine::new(3);
        let (a, _) = engine.generate_trace(&base).unwrap();
        let (b, _) = engine.generate_trace(&twin).unwrap();
        assert_ne!(a.samples(), b.samples());
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let matrix = small_matrix();
        let a = FleetEngine::new(1).run(&matrix).unwrap();
        let b = FleetEngine::new(2).run(&matrix).unwrap();
        assert_ne!(a.outcomes[0].summary, b.outcomes[0].summary);
    }

    #[test]
    fn faults_hurt_the_faulted_scenario() {
        // The aging-node scenario halves storage and drops samples; the
        // faulted run must still balance energy and produce strictly
        // positive harvest.
        let result = FleetEngine::new(3).run(&small_matrix()).unwrap();
        let faulted: Vec<_> = result
            .outcomes
            .iter()
            .filter(|o| o.scenario == "aging-node")
            .collect();
        assert!(!faulted.is_empty());
        for outcome in faulted {
            assert!(outcome.report.harvested_j > 0.0);
            assert!(outcome.report.energy_balance_error_j() < 1e-6);
        }
    }

    #[test]
    fn cache_answers_repeat_runs_without_re_evaluating() {
        let matrix = small_matrix();
        let engine = FleetEngine::new(9);
        let mut cache = engine.new_cache();
        let first = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(first.cached_jobs, 0);
        assert_eq!(cache.len(), matrix.job_count());
        assert_eq!(cache.trace_count(), matrix.scenarios.len());
        assert!(cache.trace_bytes() > 0);
        let second = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(second.cached_jobs, matrix.job_count());
        assert_eq!(
            first.scorecard.to_json_string(),
            second.scorecard.to_json_string()
        );
    }

    #[test]
    fn incremental_predictor_axis_change_matches_full_run_byte_for_byte() {
        // The tuning-loop pattern: score family A, then grow the axis.
        let base = small_matrix();
        let mut grown = base.clone();
        grown.predictors.push(PredictorSpec::Ewma { gamma: 0.5 });

        let engine = FleetEngine::new(21);
        let mut cache = engine.new_cache();
        engine.run_cached(&base, &mut cache).unwrap();
        let incremental = engine.run_cached(&grown, &mut cache).unwrap();
        // Only the new predictor's jobs ran.
        assert_eq!(incremental.cached_jobs, base.job_count());

        let full = FleetEngine::new(21).run(&grown).unwrap();
        assert_eq!(
            incremental.scorecard.to_json_string(),
            full.scorecard.to_json_string(),
            "incremental re-scoring must be byte-identical to a full run"
        );
    }

    #[test]
    fn cache_rejects_mismatched_engines() {
        let matrix = small_matrix();
        let mut cache = FleetEngine::new(1).new_cache();
        assert!(FleetEngine::new(2).run_cached(&matrix, &mut cache).is_err());
        let strict = FleetEngine::new(1).with_protocol(EvalProtocol::new(0.2, 10));
        assert!(strict.run_cached(&matrix, &mut cache).is_err());
    }

    #[test]
    fn renamed_scenario_is_not_served_from_cache() {
        // Same site config, different name ⇒ different trace seed; the
        // JSON cache key must keep them apart.
        let mut matrix = small_matrix();
        let engine = FleetEngine::new(4);
        let mut cache = engine.new_cache();
        let before = engine.run_cached(&matrix, &mut cache).unwrap();
        matrix.scenarios[0].name = "desert-clear-sky-b".into();
        let after = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(after.cached_jobs, matrix.job_count() / 2);
        assert_ne!(
            before.outcomes[0].summary, after.outcomes[0].summary,
            "renamed scenario must re-evaluate under its own seed"
        );
    }

    #[test]
    fn sharded_run_merges_back_to_the_monolithic_scorecard() {
        let matrix = small_matrix();
        let monolithic = FleetEngine::new(31).run(&matrix).unwrap();
        let sharded = FleetEngine::new(31).run_sharded(&matrix, 2).unwrap();
        assert_eq!(sharded.shards.len(), 2);
        let merged = Scorecard::merge_shards(&sharded.manifest, &sharded.shards).unwrap();
        assert_eq!(
            merged.to_json_string(),
            monolithic.scorecard.to_json_string()
        );
        // The engine-level routing produces the same bytes too.
        let routed = FleetEngine::new(31).with_shards(2).run(&matrix).unwrap();
        assert_eq!(
            routed.scorecard.to_json_string(),
            monolithic.scorecard.to_json_string()
        );
    }

    #[test]
    fn shard_counts_are_validated() {
        let matrix = small_matrix();
        assert!(FleetEngine::new(1).run_sharded(&matrix, 0).is_err());
        assert!(FleetEngine::new(1).run_sharded(&matrix, 3).is_err());
    }

    #[test]
    fn dimming_is_ground_truth_for_the_metrics_pass() {
        // A sky dimmed by exactly 0.5 over the whole horizon scales
        // observations, predictions, and references by the same power
        // of two, so prediction accuracy — a ratio — is unchanged: the
        // predictor tracked the real (dimmed) sky perfectly well. The
        // physical outcome (harvest, brownouts) must still suffer.
        let clean = Catalog::builtin().get("desert-clear-sky").unwrap().clone();
        let mut dimmed = clean.clone();
        dimmed.faults.push(crate::FaultSpec::ClimateDimming {
            start_day: 0,
            duration_days: dimmed.days,
            factor: 0.5,
        });
        // Same name ⇒ same trace seed ⇒ identical underlying sky.
        let specs = vec![PredictorSpec::Wcma {
            alpha: 0.7,
            days: 10,
            k: 2,
        }];
        let managers = vec![ManagerSpec::EnergyNeutral {
            target_soc: 0.5,
            gain: 0.25,
        }];
        let engine = FleetEngine::new(6);
        let clean_run = engine
            .run(&FleetMatrix::new(specs.clone(), managers.clone(), vec![clean]).unwrap())
            .unwrap();
        let dimmed_run = engine
            .run(&FleetMatrix::new(specs, managers, vec![dimmed]).unwrap())
            .unwrap();
        let (a, b) = (&clean_run.outcomes[0], &dimmed_run.outcomes[0]);
        assert!(
            (a.summary.mape - b.summary.mape).abs() < 1e-12,
            "scale-invariant accuracy must not register phantom error: {} vs {}",
            a.summary.mape,
            b.summary.mape
        );
        assert_eq!(a.summary.count, b.summary.count);
        assert!(
            b.report.harvested_j < 0.6 * a.report.harvested_j,
            "the physical harvest must halve"
        );
    }

    #[test]
    fn fleet_faults_project_into_every_affected_scenario() {
        let matrix = small_matrix()
            .with_fleet_faults(vec![FleetFault::RegionalStorm {
                window_start_day: 22,
                window_end_day: 30,
                duration_days: 5,
                depth: 0.8,
                region: crate::SpatialFalloff::global(),
            }])
            .unwrap();
        let engine = FleetEngine::new(8);
        let effective = engine.project_fleet_faults(&matrix).unwrap();
        assert!(effective.fleet_faults.is_empty());
        for scenario in &effective.scenarios {
            assert!(
                scenario
                    .faults
                    .iter()
                    .any(|f| matches!(f, crate::FaultSpec::ClimateDimming { .. })),
                "{} missing the storm projection",
                scenario.name
            );
        }
        // The storm measurably hurts: compare against the clean matrix.
        let clean = FleetEngine::new(8).run(&small_matrix()).unwrap();
        let stormy = FleetEngine::new(8).run(&matrix).unwrap();
        let harvested =
            |r: &FleetResult| r.outcomes.iter().map(|o| o.report.harvested_j).sum::<f64>();
        assert!(
            harvested(&stormy) < harvested(&clean),
            "a fleet-wide storm must reduce total harvest"
        );
        // And the cache keeps clean/stormy scenarios apart (their JSON
        // differs), so a warm clean cache cannot answer stormy jobs.
        let mut cache = engine.new_cache();
        engine.run_cached(&small_matrix(), &mut cache).unwrap();
        let stormy_cached = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(stormy_cached.cached_jobs, 0);
    }
}
