//! The fleet engine: expand a [`FleetMatrix`] into work units, run them
//! in parallel — materialized or streamed — and reduce to a
//! [`Scorecard`], monolithic or sharded.
//!
//! # Determinism
//!
//! Every random draw is derived from the engine's master seed by stable
//! hashing — scenario traces from `(master, scenario name)`, fault
//! realizations likewise, fleet-wide events from `(master, event
//! index)` — and each job re-derives its own state from those seeds.
//! Jobs share nothing mutable, and reduction sorts by job index, so the
//! engine's output (including rendered scorecard JSON) is
//! **byte-identical for a given matrix and seed regardless of thread
//! count, trace-cache policy, shard count, or cache warmth**.
//! Integration tests pin all four properties.
//!
//! # Two passes per job
//!
//! Each job runs the predictor twice over the scenario's slots:
//!
//! 1. a *metrics pass* scoring predictions against the true slot means
//!    under the paper's protocol, with measurement faults corrupting the
//!    predictor's inputs — this is prediction accuracy under adversity;
//! 2. a *simulation pass* closing the management loop with physical
//!    faults applied — this is what the accuracy buys (brownouts,
//!    utilization).
//!
//! Both passes realize the identical fault sequence (same seed).
//!
//! # Materialize or stream
//!
//! The [`TraceCachePolicy`] decides, per scenario, whether its trace is
//! generated once into the shared cache (jobs then run independently in
//! parallel, each over the cached `SlotView`) or **streamed**: the
//! scenario's slot sequence is generated once on the fly
//! ([`solar_synth::SlotStream`]) and pushed through every job's state
//! machines in a single pass, holding one day of samples instead of the
//! full horizon. Both paths drive the *same* per-slot machines
//! ([`solar_predict::StreamedPredictorRun`],
//! [`harvest_sim::NodeSimulation`]), so their outcomes are bit-identical
//! by construction — multi-year scenarios can run under a bounded
//! memory budget without perturbing a single byte of output.
//!
//! # Incremental re-scoring
//!
//! A tuning loop re-runs near-identical matrices dozens of times,
//! changing only the predictor axis between rounds. [`FleetCache`]
//! makes that cheap: it memoizes generated traces per scenario and
//! finished [`JobOutcome`]s per (scenario, predictor, manager) triple,
//! so [`FleetEngine::run_cached`] evaluates **only the jobs whose axis
//! value changed**. Because every job is a pure function of its triple
//! and the master seed, a cached outcome is bit-identical to a fresh
//! one — the resulting scorecard JSON is byte-identical to a full
//! re-run (pinned by test).

use crate::catalog::Scenario;
use crate::faults::{storage_capacity_factor, FaultInjector};
use crate::matrix::{FleetMatrix, JobSpec};
use crate::scorecard::{Scorecard, ScorecardShard, ShardManifest};
use harvest_sim::{NodeReport, NodeSimulation, SlotHook, SlotInput};
use pred_metrics::{ErrorSummary, EvalProtocol, RecordSink, RunCost, StreamingEval};
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use solar_predict::{Predictor, StreamedPredictorRun};
use solar_synth::TraceGenerator;
use solar_trace::{PowerTrace, SlotView, SlotsPerDay};
use std::collections::HashMap;
use std::time::Instant;

/// Outcome of one (scenario, predictor, manager) job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Predictor label.
    pub predictor: String,
    /// Manager label.
    pub manager: String,
    /// Matrix coordinates.
    pub spec: JobSpec,
    /// Prediction accuracy under the paper's protocol (metrics pass).
    pub summary: ErrorSummary,
    /// Management outcome (simulation pass).
    pub report: NodeReport,
    /// What the job cost: wall time (both passes; non-deterministic),
    /// the predictor's peak candidate count (deterministic), and the
    /// peak trace bytes held (full trace when materialized, one day's
    /// buffer when streamed).
    pub cost: RunCost,
}

/// Everything one fleet run produces.
#[derive(Clone, Debug)]
pub struct FleetResult {
    /// Per-job outcomes, in deterministic job order.
    pub outcomes: Vec<JobOutcome>,
    /// The reduced, ranked scorecard.
    pub scorecard: Scorecard,
    /// Jobs answered from the cache (0 for a fresh run).
    pub cached_jobs: usize,
    /// Jobs evaluated through the streamed path (no full-horizon trace
    /// allocation) this run.
    pub streamed_jobs: usize,
}

/// A sharded fleet run: the manifest plus one scorecard shard per
/// scenario subset — the format for matrices whose monolithic scorecard
/// no longer fits one JSON document. [`Scorecard::merge_shards`]
/// reassembles the monolithic scorecard byte-for-byte.
#[derive(Clone, Debug)]
pub struct ShardedFleetResult {
    /// Which scenario lives in which shard, in matrix order.
    pub manifest: ShardManifest,
    /// The shards, indexed `0..manifest.shard_count`.
    pub shards: Vec<ScorecardShard>,
    /// Per-job outcomes, in deterministic job order.
    pub outcomes: Vec<JobOutcome>,
    /// Jobs answered from the cache.
    pub cached_jobs: usize,
    /// Jobs evaluated through the streamed path.
    pub streamed_jobs: usize,
}

/// How much memory the engine may spend on materialized traces.
///
/// Scenarios are admitted greedily in matrix order; a scenario whose
/// trace would push the running total past the budget runs **streamed**
/// instead ([`SlotStream`](solar_synth::SlotStream)-driven, one day
/// buffered). Admission depends only on the matrix and the policy, so
/// outputs stay byte-identical across thread counts and cache warmth.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceCachePolicy {
    /// `None` = materialize everything (the classic engine behaviour).
    budget_bytes: Option<u64>,
}

impl TraceCachePolicy {
    /// Materialize every trace (default).
    pub fn unbounded() -> Self {
        TraceCachePolicy { budget_bytes: None }
    }

    /// Materialize traces until `bytes` of trace data are held; stream
    /// the rest.
    pub fn bounded(bytes: u64) -> Self {
        TraceCachePolicy {
            budget_bytes: Some(bytes),
        }
    }

    /// Stream every scenario (a zero-byte budget).
    pub fn streaming_only() -> Self {
        Self::bounded(0)
    }

    /// The budget in bytes, if bounded.
    pub fn budget_bytes(&self) -> Option<u64> {
        self.budget_bytes
    }

    fn admits(&self, running_total: u64, trace_bytes: u64) -> bool {
        match self.budget_bytes {
            None => true,
            Some(budget) => running_total.saturating_add(trace_bytes) <= budget,
        }
    }
}

impl Default for TraceCachePolicy {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// Memo of traces and job outcomes across runs of one engine — the
/// incremental re-scoring state. Create with [`FleetEngine::new_cache`];
/// feed to [`FleetEngine::run_cached`]. The cache is bound to the
/// engine's master seed and protocol and refuses to serve any other.
#[derive(Clone, Debug, Default)]
pub struct FleetCache {
    master_seed: u64,
    protocol: Option<EvalProtocol>,
    /// Traces keyed by the scenario's full JSON form (not just its
    /// name, so a mutated same-name scenario can never alias).
    traces: HashMap<String, PowerTrace>,
    /// Outcomes keyed by (scenario JSON, predictor label, manager
    /// label); labels are injective over specs by contract.
    outcomes: HashMap<(String, String, String), JobOutcome>,
}

impl FleetCache {
    /// Number of memoized job outcomes.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the cache holds no outcomes.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Number of memoized scenario traces.
    pub fn trace_count(&self) -> usize {
        self.traces.len()
    }

    /// Bytes of trace data the cache currently holds.
    pub fn trace_bytes(&self) -> usize {
        self.traces
            .values()
            .map(|t| std::mem::size_of_val(t.samples()))
            .sum()
    }

    /// Aggregate cost of every distinct job this cache has evaluated —
    /// the true cost of an incremental loop, with re-served jobs
    /// counted once (order-independent, so stable despite the map).
    pub fn cost(&self) -> pred_metrics::CostAggregate {
        pred_metrics::CostAggregate::of(self.outcomes.values().map(|o| o.cost))
    }
}

/// Per-job metrics-log cap on the streamed path: scenarios whose
/// prediction log would exceed this fold records into O(1) streaming
/// accumulators (at the cost of one ROI pre-pass per scenario) instead
/// of materializing the log. 1 MiB keeps every sub-year scenario on the
/// cheap single-pass path while multi-year horizons stay bounded.
const STREAMED_LOG_CAP_BYTES: usize = 1 << 20;

/// The streamed metrics pass's record sink: a materialized log under
/// [`STREAMED_LOG_CAP_BYTES`], streaming protocol accumulators above
/// it. Both evaluate through the same accumulator code, so the variants
/// are bit-identical in output.
enum MetricsSink {
    Log(pred_metrics::PredictionLog),
    Streaming(StreamingEval),
}

impl RecordSink for MetricsSink {
    fn push_record(&mut self, record: pred_metrics::PredictionRecord) {
        match self {
            MetricsSink::Log(log) => log.push(record),
            MetricsSink::Streaming(eval) => eval.push_record(record),
        }
    }
}

/// One schedulable unit of a fleet run.
enum WorkUnit {
    /// A single fresh job over a materialized trace.
    Job(usize),
    /// All of one streamed scenario's fresh jobs, evaluated in a single
    /// generator pass.
    Stream {
        scenario_idx: usize,
        job_indices: Vec<usize>,
    },
}

/// The parallel fleet evaluator.
#[derive(Clone, Debug)]
pub struct FleetEngine {
    master_seed: u64,
    threads: Option<usize>,
    protocol: EvalProtocol,
    cache_policy: TraceCachePolicy,
    shards: Option<usize>,
}

impl FleetEngine {
    /// An engine deriving all randomness from `master_seed`, evaluating
    /// under the paper's protocol, using all available cores and an
    /// unbounded trace cache.
    pub fn new(master_seed: u64) -> Self {
        FleetEngine {
            master_seed,
            threads: None,
            protocol: EvalProtocol::paper(),
            cache_policy: TraceCachePolicy::unbounded(),
            shards: None,
        }
    }

    /// Pins the worker-thread count (useful for determinism tests and
    /// benchmarking scaling).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Replaces the evaluation protocol.
    pub fn with_protocol(mut self, protocol: EvalProtocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Replaces the trace-cache policy (bounded budgets stream the
    /// overflow; outputs stay byte-identical either way).
    pub fn with_trace_cache(mut self, policy: TraceCachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// Routes [`FleetEngine::run`]/[`FleetEngine::run_cached`] through
    /// the sharded reduction with `shards` shards merged back into the
    /// returned scorecard — byte-identical to the monolithic reduction,
    /// so callers (e.g. the tuner) consume sharded results unchanged.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// The master seed.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The trace-cache policy.
    pub fn trace_cache_policy(&self) -> TraceCachePolicy {
        self.cache_policy
    }

    /// An empty cache bound to this engine's seed and protocol.
    pub fn new_cache(&self) -> FleetCache {
        FleetCache {
            master_seed: self.master_seed,
            protocol: Some(self.protocol),
            traces: HashMap::new(),
            outcomes: HashMap::new(),
        }
    }

    /// Runs the whole matrix from scratch.
    ///
    /// # Errors
    ///
    /// Returns the first trace-generation or hardware-construction
    /// error; per-job panics (contract violations) propagate.
    pub fn run(&self, matrix: &FleetMatrix) -> Result<FleetResult, String> {
        let mut cache = self.new_cache();
        self.run_cached(matrix, &mut cache)
    }

    /// Runs the matrix, reusing every trace and job outcome already in
    /// `cache` and evaluating only what changed since the cache was
    /// filled. New traces and outcomes are added to the cache.
    ///
    /// The scorecard is **byte-identical** to what [`FleetEngine::run`]
    /// would produce for the same matrix: jobs are pure functions of
    /// (scenario, predictor, manager, master seed), so a memoized
    /// outcome equals a recomputed one. Only the non-deterministic
    /// wall-time/trace-memory accounting (never rendered into JSON) can
    /// differ.
    ///
    /// # Errors
    ///
    /// Returns an error if the cache is bound to a different seed or
    /// protocol, or on the first trace-generation/hardware error.
    pub fn run_cached(
        &self,
        matrix: &FleetMatrix,
        cache: &mut FleetCache,
    ) -> Result<FleetResult, String> {
        self.check_cache(cache)?;
        self.install(|| {
            let evaluated = self.evaluate_matrix(matrix, cache)?;
            let scorecard = match self.shards {
                None => {
                    Scorecard::build(&evaluated.effective, &evaluated.outcomes, self.master_seed)
                }
                Some(count) => {
                    // Routed sharding degrades gracefully on small
                    // matrices (a tuner's per-regime pass may hold one
                    // scenario): clamp instead of erroring.
                    let count = count.clamp(1, evaluated.effective.scenarios.len());
                    let (manifest, shards) = Self::shard_outcomes(
                        &evaluated.effective,
                        &evaluated.outcomes,
                        self.master_seed,
                        count,
                    )?;
                    Scorecard::merge_shards(&manifest, &shards)?
                }
            };
            Ok(FleetResult {
                outcomes: evaluated.outcomes,
                scorecard,
                cached_jobs: evaluated.cached_jobs,
                streamed_jobs: evaluated.streamed_jobs,
            })
        })
    }

    /// Runs the matrix and reduces into `shard_count` scorecard shards
    /// plus the manifest — the artifact set for matrices whose
    /// monolithic scorecard is too large for one document. Scenarios
    /// are assigned round-robin (`scenario_idx % shard_count`), so
    /// multi-year entries spread across shards.
    ///
    /// # Errors
    ///
    /// Rejects a shard count of zero or above the scenario count, and
    /// propagates evaluation errors.
    pub fn run_sharded(
        &self,
        matrix: &FleetMatrix,
        shard_count: usize,
    ) -> Result<ShardedFleetResult, String> {
        let mut cache = self.new_cache();
        self.run_sharded_cached(matrix, shard_count, &mut cache)
    }

    /// [`FleetEngine::run_sharded`] through a warm cache.
    ///
    /// # Errors
    ///
    /// As [`FleetEngine::run_sharded`], plus cache-binding mismatches.
    pub fn run_sharded_cached(
        &self,
        matrix: &FleetMatrix,
        shard_count: usize,
        cache: &mut FleetCache,
    ) -> Result<ShardedFleetResult, String> {
        self.check_cache(cache)?;
        self.install(|| {
            let evaluated = self.evaluate_matrix(matrix, cache)?;
            let (manifest, shards) = Self::shard_outcomes(
                &evaluated.effective,
                &evaluated.outcomes,
                self.master_seed,
                shard_count,
            )?;
            Ok(ShardedFleetResult {
                manifest,
                shards,
                outcomes: evaluated.outcomes,
                cached_jobs: evaluated.cached_jobs,
                streamed_jobs: evaluated.streamed_jobs,
            })
        })
    }

    fn check_cache(&self, cache: &mut FleetCache) -> Result<(), String> {
        let unbound =
            cache.protocol.is_none() && cache.outcomes.is_empty() && cache.traces.is_empty();
        if !unbound
            && (cache.master_seed != self.master_seed || cache.protocol != Some(self.protocol))
        {
            return Err("fleet cache is bound to a different master seed or protocol".to_string());
        }
        cache.master_seed = self.master_seed;
        cache.protocol = Some(self.protocol);
        Ok(())
    }

    fn install<T>(&self, f: impl FnOnce() -> Result<T, String>) -> Result<T, String> {
        match self.threads {
            Some(threads) => ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .map_err(|e| e.to_string())?
                .install(f),
            None => f(),
        }
    }

    /// Projects the matrix's correlated fleet-wide events into each
    /// affected scenario's fault list. Every event realizes from one
    /// shared seed, so it hits all its scenarios on the same days; the
    /// projected faults live in the scenario (and hence its JSON/cache
    /// key), so caching and determinism need no special cases.
    fn project_fleet_faults(&self, matrix: &FleetMatrix) -> Result<FleetMatrix, String> {
        let mut effective = matrix.clone();
        for (index, fault) in matrix.fleet_faults.iter().enumerate() {
            let salted = format!("fleet-fault/{index}");
            let event_seed = solar_trace::hash::fnv1a(&salted) ^ self.master_seed.rotate_left(23);
            for scenario in &mut effective.scenarios {
                scenario.faults.extend(fault.project(event_seed, scenario)?);
            }
        }
        effective.fleet_faults.clear();
        Ok(effective)
    }

    /// The full evaluation pass: fleet-fault projection, cache-policy
    /// admission, parallel materialized/streamed work units, cache
    /// fill, and assembly in job order.
    fn evaluate_matrix(
        &self,
        matrix: &FleetMatrix,
        cache: &mut FleetCache,
    ) -> Result<EvaluatedMatrix, String> {
        let effective = if matrix.fleet_faults.is_empty() {
            matrix.clone()
        } else {
            self.project_fleet_faults(matrix)?
        };
        let matrix = &effective;

        // Stable per-scenario cache keys: the full JSON form.
        let scenario_keys: Vec<String> = matrix
            .scenarios
            .iter()
            .map(|s| s.to_json().render())
            .collect();
        let predictor_labels: Vec<String> = matrix.predictors.iter().map(|p| p.label()).collect();
        let manager_labels: Vec<String> = matrix.managers.iter().map(|m| m.label()).collect();

        // Cache-policy admission, greedily in scenario order — a pure
        // function of (matrix, policy), so the materialize/stream split
        // never depends on thread timing. Warm traces stay admitted
        // (they are already paid for) and count toward the budget.
        let mut admitted = vec![false; matrix.scenarios.len()];
        let mut running_total = 0u64;
        for (idx, scenario) in matrix.scenarios.iter().enumerate() {
            let bytes = Self::trace_bytes(scenario)?;
            if cache.traces.contains_key(&scenario_keys[idx])
                || self.cache_policy.admits(running_total, bytes)
            {
                admitted[idx] = true;
                running_total = running_total.saturating_add(bytes);
            }
        }

        // Phase 1: traces for admitted scenarios the cache has not
        // seen, in parallel, shared read-only by every job of that
        // scenario.
        let missing: Vec<usize> = (0..matrix.scenarios.len())
            .filter(|&idx| admitted[idx] && !cache.traces.contains_key(&scenario_keys[idx]))
            .collect();
        let generated: Vec<Result<PowerTrace, String>> = missing
            .par_iter()
            .map(|&idx| self.generate_trace(&matrix.scenarios[idx]))
            .collect();
        for (&idx, trace) in missing.iter().zip(generated) {
            cache.traces.insert(scenario_keys[idx].clone(), trace?);
        }

        // Phase 2: only the jobs the cache cannot answer, as work
        // units — one unit per fresh job on the materialized path, one
        // unit per scenario on the streamed path (its generator pass is
        // shared by all of that scenario's fresh jobs).
        let jobs = matrix.jobs();
        let job_keys: Vec<(String, String, String)> = jobs
            .iter()
            .map(|job| {
                (
                    scenario_keys[job.scenario_idx].clone(),
                    predictor_labels[job.predictor_idx].clone(),
                    manager_labels[job.manager_idx].clone(),
                )
            })
            .collect();
        let fresh: Vec<usize> = (0..jobs.len())
            .filter(|&idx| !cache.outcomes.contains_key(&job_keys[idx]))
            .collect();
        let cached_jobs = jobs.len() - fresh.len();

        let mut units: Vec<WorkUnit> = Vec::new();
        let mut stream_jobs_by_scenario: HashMap<usize, Vec<usize>> = HashMap::new();
        for &idx in &fresh {
            let scenario_idx = jobs[idx].scenario_idx;
            if admitted[scenario_idx] {
                units.push(WorkUnit::Job(idx));
            } else {
                stream_jobs_by_scenario
                    .entry(scenario_idx)
                    .or_default()
                    .push(idx);
            }
        }
        let mut streamed_jobs = 0;
        for scenario_idx in 0..matrix.scenarios.len() {
            if let Some(job_indices) = stream_jobs_by_scenario.remove(&scenario_idx) {
                streamed_jobs += job_indices.len();
                units.push(WorkUnit::Stream {
                    scenario_idx,
                    job_indices,
                });
            }
        }

        let evaluated: Vec<Result<Vec<(usize, JobOutcome)>, String>> = units
            .par_iter()
            .map(|unit| match unit {
                WorkUnit::Job(idx) => {
                    let job = &jobs[*idx];
                    let trace = &cache.traces[&scenario_keys[job.scenario_idx]];
                    Ok(vec![(*idx, self.evaluate(matrix, job, trace)?)])
                }
                WorkUnit::Stream {
                    scenario_idx,
                    job_indices,
                } => self.evaluate_scenario_streamed(matrix, *scenario_idx, job_indices, &jobs),
            })
            .collect();
        for unit_outcomes in evaluated {
            for (idx, outcome) in unit_outcomes? {
                cache.outcomes.insert(job_keys[idx].clone(), outcome);
            }
        }

        // Phase 3: assemble in job order (cached outcomes carry stale
        // matrix coordinates from the run that produced them — rewrite).
        let outcomes: Vec<JobOutcome> = jobs
            .iter()
            .zip(&job_keys)
            .map(|(job, key)| {
                let mut outcome = cache.outcomes[key].clone();
                outcome.spec = *job;
                outcome
            })
            .collect();
        Ok(EvaluatedMatrix {
            effective,
            outcomes,
            cached_jobs,
            streamed_jobs,
        })
    }

    /// Splits outcomes into per-shard scorecards plus the manifest.
    fn shard_outcomes(
        matrix: &FleetMatrix,
        outcomes: &[JobOutcome],
        master_seed: u64,
        shard_count: usize,
    ) -> Result<(ShardManifest, Vec<ScorecardShard>), String> {
        if shard_count == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if shard_count > matrix.scenarios.len() {
            return Err(format!(
                "shard count {shard_count} exceeds the {} scenarios",
                matrix.scenarios.len()
            ));
        }
        let rankings = Scorecard::per_scenario_rankings(matrix, outcomes);
        let manifest = ShardManifest {
            master_seed,
            shard_count,
            scenarios: matrix
                .scenarios
                .iter()
                .enumerate()
                .map(|(idx, s)| (s.name.clone(), idx % shard_count))
                .collect(),
        };
        let shards = (0..shard_count)
            .map(|shard_index| {
                let per_scenario: Vec<_> = rankings
                    .iter()
                    .enumerate()
                    .filter(|(idx, _)| idx % shard_count == shard_index)
                    .map(|(_, ranking)| ranking.clone())
                    .collect();
                let cost = pred_metrics::CostAggregate::of(
                    outcomes
                        .iter()
                        .filter(|o| o.spec.scenario_idx % shard_count == shard_index)
                        .map(|o| o.cost),
                );
                ScorecardShard {
                    shard_index,
                    master_seed,
                    per_scenario,
                    cost,
                }
            })
            .collect();
        Ok((manifest, shards))
    }

    /// One slot of a metrics pass, shared verbatim by the materialized
    /// and streamed paths (bit-identity by construction): the job's
    /// injector corrupts what the predictor observes, and the logged
    /// ground-truth references are scaled by the day's climate-dimming
    /// factor — dimming is physical sky state, so accuracy is judged
    /// against the sky that actually existed (a predictor perfectly
    /// tracking a la-niña year must not register phantom MAPE against
    /// the counterfactual clean year). Sensor faults and panel soiling
    /// leave the references untouched.
    fn feed_metrics_slot<S: RecordSink>(
        run: &mut StreamedPredictorRun<'_, S>,
        injector: &mut FaultInjector,
        day: usize,
        slot: usize,
        start_sample: f64,
        mean_power: f64,
    ) {
        let mut harvest_ignored = 0.0;
        let mut observed = start_sample;
        injector.on_slot(day, slot, &mut harvest_ignored, &mut observed);
        let sky = injector.sky_factor(day);
        run.on_slot(day, slot, observed, start_sample * sky, mean_power * sky);
    }

    /// The deterministic per-scenario seed: stable across runs, thread
    /// counts, and platforms; distinct per scenario name.
    ///
    /// The hashed string is *salted*: a custom site built from the same
    /// scenario name carries `seed_stream = fnv1a(name)`, and the trace
    /// generator XORs `seed ^ seed_stream` — hashing the bare name here
    /// would cancel it out and hand every custom-site scenario the same
    /// RNG stream (a regression test pins this).
    fn scenario_seed(&self, scenario: &Scenario) -> u64 {
        let salted = format!("fleet-scenario/{}", scenario.name);
        solar_trace::hash::fnv1a(&salted) ^ self.master_seed.rotate_left(17)
    }

    /// Bytes a scenario's materialized trace would occupy.
    fn trace_bytes(scenario: &Scenario) -> Result<u64, String> {
        let config = scenario.site_config()?;
        Ok((scenario.days * config.resolution.samples_per_day()) as u64
            * std::mem::size_of::<f64>() as u64)
    }

    fn generate_trace(&self, scenario: &Scenario) -> Result<PowerTrace, String> {
        let config = scenario.site_config()?;
        TraceGenerator::new(config, self.scenario_seed(scenario))
            .generate_days(scenario.days)
            .map_err(|e| e.to_string())
    }

    /// The materialized path: one job over a cached trace.
    fn evaluate(
        &self,
        matrix: &FleetMatrix,
        job: &JobSpec,
        trace: &PowerTrace,
    ) -> Result<JobOutcome, String> {
        let started = Instant::now();
        let scenario = &matrix.scenarios[job.scenario_idx];
        let predictor_spec = &matrix.predictors[job.predictor_idx];
        let manager_spec = &matrix.managers[job.manager_idx];
        let n = scenario.slots_per_day;
        let view = SlotView::new(trace, SlotsPerDay::new(n).map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        let fault_seed = self.scenario_seed(scenario) ^ 0xFA01;

        // Metrics pass: the predictor sees fault-corrupted samples;
        // the log's references stay ground truth — with the one
        // exception of climate dimming, which *is* the ground truth
        // (see `feed_metrics_slot`).
        let mut predictor = predictor_spec.build(n as usize)?;
        let mut injector =
            FaultInjector::new(&scenario.faults, fault_seed, scenario.days, n as usize);
        let mut run = StreamedPredictorRun::with_capacity(
            predictor.as_mut(),
            n as usize,
            scenario.days * n as usize,
        );
        for day in 0..view.days() {
            for slot in 0..n as usize {
                Self::feed_metrics_slot(
                    &mut run,
                    &mut injector,
                    day,
                    slot,
                    view.start_sample(day, slot),
                    view.mean_power(day, slot),
                );
            }
        }
        let log = run.finish();
        let summary = self.protocol.evaluate(&log);

        // Simulation pass: fresh predictor, identical fault realization.
        let mut predictor = predictor_spec.build(n as usize)?;
        let mut manager = manager_spec.build();
        let mut injector =
            FaultInjector::new(&scenario.faults, fault_seed, scenario.days, n as usize);
        let config = scenario
            .node
            .node_config(storage_capacity_factor(&scenario.faults))?;
        let report = harvest_sim::simulate_node_hooked(
            &view,
            predictor.as_mut(),
            manager.as_mut(),
            &config,
            &mut injector,
        );

        Ok(JobOutcome {
            scenario: scenario.name.clone(),
            predictor: predictor_spec.label(),
            manager: manager_spec.label(),
            spec: *job,
            summary,
            report,
            cost: RunCost {
                wall_nanos: started.elapsed().as_nanos() as u64,
                peak_candidates: predictor_spec.candidate_count(),
                peak_trace_bytes: std::mem::size_of_val(trace.samples()),
            },
        })
    }

    /// The streamed path: one generator pass over a scenario drives all
    /// of its fresh jobs' state machines simultaneously — the trace
    /// lives in a one-day buffer, never a full-horizon `PowerTrace`.
    ///
    /// The metrics pass picks its record sink by horizon: short
    /// scenarios collect a `PredictionLog` (single generator pass);
    /// past [`STREAMED_LOG_CAP_BYTES`] per job the records fold into
    /// O(1) protocol accumulators ([`pred_metrics::StreamingEval`])
    /// instead, with one extra generator pre-pass supplying the ROI
    /// peak the paper's filter needs up front (`actual_mean` is
    /// trace-derived, so the peak is shared by every job of the
    /// scenario). The two sinks are bit-identical — the log path
    /// evaluates through the same accumulators — so the choice is
    /// invisible in the output: it bounds memory on multi-year
    /// horizons while short scenarios keep the single-pass cost.
    fn evaluate_scenario_streamed(
        &self,
        matrix: &FleetMatrix,
        scenario_idx: usize,
        job_indices: &[usize],
        jobs: &[JobSpec],
    ) -> Result<Vec<(usize, JobOutcome)>, String> {
        let started = Instant::now();
        let scenario = &matrix.scenarios[scenario_idx];
        let n = scenario.slots_per_day as usize;
        let slots = SlotsPerDay::new(scenario.slots_per_day).map_err(|e| e.to_string())?;
        let generator = TraceGenerator::new(scenario.site_config()?, self.scenario_seed(scenario));
        let stream = generator
            .slot_stream(scenario.days, slots)
            .map_err(|e| e.to_string())?;
        let buffer_bytes = stream.buffer_bytes();
        let slot_seconds = slots.slot_seconds_f64();
        let fault_seed = self.scenario_seed(scenario) ^ 0xFA01;
        let node_config = scenario
            .node
            .node_config(storage_capacity_factor(&scenario.faults))?;

        // Sink selection (see the method docs): horizon-proportional
        // log under the cap, O(1) streaming accumulators above it.
        let log_bytes = scenario.days * n * std::mem::size_of::<pred_metrics::PredictionRecord>();
        let streaming_eval = log_bytes > STREAMED_LOG_CAP_BYTES;

        // ROI pre-pass (streaming sinks only): the peak of the (dimmed)
        // reference means over every slot that becomes a record — all
        // but the final one, mirroring `PredictionLog::peak_actual_mean`
        // exactly. The probe injector is only consulted for its
        // deterministic sky factor (no per-slot RNG draws happen here).
        let mut roi_peak = 0.0_f64;
        if streaming_eval {
            let sky_probe = FaultInjector::new(&scenario.faults, fault_seed, scenario.days, n);
            let mut pending_mean: Option<f64> = None;
            for slot in generator
                .slot_stream(scenario.days, slots)
                .map_err(|e| e.to_string())?
            {
                if let Some(mean) = pending_mean.take() {
                    roi_peak = roi_peak.max(mean);
                }
                pending_mean = Some(slot.mean_power * sky_probe.sky_factor(slot.day));
            }
        }

        // Per-job owned state; the machines below borrow its fields
        // disjointly.
        struct JobState {
            metrics_predictor: Box<dyn Predictor>,
            metrics_injector: FaultInjector,
            sim_predictor: Box<dyn Predictor>,
            manager: Box<dyn harvest_sim::PowerManager>,
            sim_injector: FaultInjector,
        }
        struct JobMachines<'a> {
            metrics: StreamedPredictorRun<'a, MetricsSink>,
            metrics_injector: &'a mut FaultInjector,
            sim: NodeSimulation<'a>,
        }

        let mut states: Vec<JobState> = Vec::with_capacity(job_indices.len());
        for &job_idx in job_indices {
            let job = &jobs[job_idx];
            let predictor_spec = &matrix.predictors[job.predictor_idx];
            let manager_spec = &matrix.managers[job.manager_idx];
            states.push(JobState {
                metrics_predictor: predictor_spec.build(n)?,
                metrics_injector: FaultInjector::new(
                    &scenario.faults,
                    fault_seed,
                    scenario.days,
                    n,
                ),
                sim_predictor: predictor_spec.build(n)?,
                manager: manager_spec.build(),
                sim_injector: FaultInjector::new(&scenario.faults, fault_seed, scenario.days, n),
            });
        }
        let mut machines: Vec<JobMachines<'_>> = states
            .iter_mut()
            .map(|state| {
                let JobState {
                    metrics_predictor,
                    metrics_injector,
                    sim_predictor,
                    manager,
                    sim_injector,
                } = state;
                let sink = if streaming_eval {
                    MetricsSink::Streaming(StreamingEval::new(self.protocol, roi_peak))
                } else {
                    MetricsSink::Log(pred_metrics::PredictionLog::with_capacity(
                        n,
                        scenario.days * n,
                    ))
                };
                JobMachines {
                    metrics: StreamedPredictorRun::with_sink(metrics_predictor.as_mut(), n, sink),
                    metrics_injector,
                    sim: NodeSimulation::new(
                        sim_predictor.as_mut(),
                        manager.as_mut(),
                        &node_config,
                        sim_injector,
                        slot_seconds,
                    ),
                }
            })
            .collect();

        // The single generator pass: every slot feeds every job's
        // metrics machine (through the same per-slot feeder as the
        // materialized metrics pass, so the paths stay bit-identical)
        // and simulation machine.
        for slot in stream {
            for machine in &mut machines {
                Self::feed_metrics_slot(
                    &mut machine.metrics,
                    machine.metrics_injector,
                    slot.day,
                    slot.slot,
                    slot.start_sample,
                    slot.mean_power,
                );
                machine.sim.on_slot(SlotInput {
                    day: slot.day,
                    slot: slot.slot,
                    start_sample: slot.start_sample,
                    mean_power: slot.mean_power,
                });
            }
        }

        let mut results = Vec::with_capacity(job_indices.len());
        for (machine, &job_idx) in machines.into_iter().zip(job_indices) {
            let job = &jobs[job_idx];
            let predictor_spec = &matrix.predictors[job.predictor_idx];
            let manager_spec = &matrix.managers[job.manager_idx];
            let summary = match machine.metrics.finish() {
                MetricsSink::Log(log) => self.protocol.evaluate(&log),
                MetricsSink::Streaming(eval) => eval.finish(),
            };
            let report = machine.sim.finish();
            results.push((
                job_idx,
                JobOutcome {
                    scenario: scenario.name.clone(),
                    predictor: predictor_spec.label(),
                    manager: manager_spec.label(),
                    spec: *job,
                    summary,
                    report,
                    cost: RunCost {
                        wall_nanos: 0, // filled below (shared pass)
                        peak_candidates: predictor_spec.candidate_count(),
                        // One day of samples, plus the metrics log when
                        // the horizon fit under the cap.
                        peak_trace_bytes: buffer_bytes + if streaming_eval { 0 } else { log_bytes },
                    },
                },
            ));
        }
        // The generator pass is shared: split its wall time evenly.
        let wall_each =
            (started.elapsed().as_nanos() as u64 / job_indices.len().max(1) as u64).max(1);
        for (_, outcome) in &mut results {
            outcome.cost.wall_nanos = wall_each;
        }
        Ok(results)
    }
}

/// Internal result of one full evaluation pass.
struct EvaluatedMatrix {
    /// The matrix actually evaluated (fleet faults projected in).
    effective: FleetMatrix,
    outcomes: Vec<JobOutcome>,
    cached_jobs: usize,
    streamed_jobs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::fleet_faults::FleetFault;
    use crate::matrix::{ManagerSpec, PredictorSpec};

    fn small_matrix() -> FleetMatrix {
        let scenarios = vec![
            Catalog::builtin().get("desert-clear-sky").unwrap().clone(),
            Catalog::builtin().get("aging-node").unwrap().clone(),
        ];
        FleetMatrix::new(
            vec![
                PredictorSpec::Wcma {
                    alpha: 0.7,
                    days: 10,
                    k: 2,
                },
                PredictorSpec::Persistence,
            ],
            vec![
                ManagerSpec::EnergyNeutral {
                    target_soc: 0.5,
                    gain: 0.25,
                },
                ManagerSpec::Greedy,
            ],
            scenarios,
        )
        .unwrap()
    }

    #[test]
    fn engine_runs_the_full_matrix() {
        let result = FleetEngine::new(42).run(&small_matrix()).unwrap();
        assert_eq!(result.outcomes.len(), 2 * 2 * 2);
        assert_eq!(result.cached_jobs, 0);
        assert_eq!(result.streamed_jobs, 0, "unbounded cache never streams");
        for outcome in &result.outcomes {
            assert!(outcome.summary.count > 0, "{}", outcome.scenario);
            assert!(outcome.summary.mape.is_finite());
            assert!(outcome.cost.wall_nanos > 0);
            assert_eq!(outcome.cost.peak_candidates, 1);
            assert!(outcome.cost.peak_trace_bytes > 0);
            assert!(
                outcome.report.energy_balance_error_j()
                    < 1e-6 * outcome.report.harvested_j.max(1.0),
                "{}: {}",
                outcome.scenario,
                outcome.report.energy_balance_error_j()
            );
        }
    }

    #[test]
    fn streaming_only_policy_is_byte_identical_and_never_materializes() {
        let matrix = small_matrix();
        let materialized = FleetEngine::new(5).run(&matrix).unwrap();
        let engine = FleetEngine::new(5).with_trace_cache(TraceCachePolicy::streaming_only());
        let mut cache = engine.new_cache();
        let streamed = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(streamed.streamed_jobs, matrix.job_count());
        assert_eq!(cache.trace_count(), 0, "no trace may materialize");
        assert_eq!(
            streamed.scorecard.to_json_string(),
            materialized.scorecard.to_json_string(),
            "streamed and materialized paths must agree byte-for-byte"
        );
        for (a, b) in streamed.outcomes.iter().zip(&materialized.outcomes) {
            assert_eq!(a.summary, b.summary);
            assert_eq!(a.report, b.report);
            assert!(
                a.cost.peak_trace_bytes < b.cost.peak_trace_bytes,
                "streamed jobs must hold less trace memory"
            );
        }
    }

    #[test]
    fn bounded_budget_splits_materialize_and_stream_deterministically() {
        let matrix = small_matrix();
        // Admit exactly the first scenario (40 days × 1440 samples × 8).
        let first_bytes = 40 * 1440 * 8;
        let engine =
            FleetEngine::new(5).with_trace_cache(TraceCachePolicy::bounded(first_bytes as u64));
        let mut cache = engine.new_cache();
        let result = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(cache.trace_count(), 1);
        assert_eq!(result.streamed_jobs, matrix.job_count() / 2);
        let reference = FleetEngine::new(5).run(&matrix).unwrap();
        assert_eq!(
            result.scorecard.to_json_string(),
            reference.scorecard.to_json_string()
        );
    }

    #[test]
    fn outcomes_are_in_job_order_regardless_of_threads() {
        let matrix = small_matrix();
        let a = FleetEngine::new(7).with_threads(1).run(&matrix).unwrap();
        let b = FleetEngine::new(7).with_threads(4).run(&matrix).unwrap();
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.summary, y.summary);
            assert_eq!(x.report, y.report);
        }
    }

    #[test]
    fn equally_configured_custom_sites_with_different_names_get_different_traces() {
        // Regression: the scenario-seed hash must not cancel against the
        // custom site's name-derived seed_stream (engine XORs the
        // scenario hash in, TraceGenerator XORs seed_stream back out).
        let base = Catalog::builtin().get("four-seasons").unwrap().clone();
        let mut twin = base.clone();
        twin.name = "four-seasons-twin".into();
        twin.days = base.days;
        let engine = FleetEngine::new(3);
        let a = engine.generate_trace(&base).unwrap();
        let b = engine.generate_trace(&twin).unwrap();
        assert_ne!(a.samples(), b.samples());
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let matrix = small_matrix();
        let a = FleetEngine::new(1).run(&matrix).unwrap();
        let b = FleetEngine::new(2).run(&matrix).unwrap();
        assert_ne!(a.outcomes[0].summary, b.outcomes[0].summary);
    }

    #[test]
    fn faults_hurt_the_faulted_scenario() {
        // The aging-node scenario halves storage and drops samples; the
        // faulted run must still balance energy and produce strictly
        // positive harvest.
        let result = FleetEngine::new(3).run(&small_matrix()).unwrap();
        let faulted: Vec<_> = result
            .outcomes
            .iter()
            .filter(|o| o.scenario == "aging-node")
            .collect();
        assert!(!faulted.is_empty());
        for outcome in faulted {
            assert!(outcome.report.harvested_j > 0.0);
            assert!(outcome.report.energy_balance_error_j() < 1e-6);
        }
    }

    #[test]
    fn cache_answers_repeat_runs_without_re_evaluating() {
        let matrix = small_matrix();
        let engine = FleetEngine::new(9);
        let mut cache = engine.new_cache();
        let first = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(first.cached_jobs, 0);
        assert_eq!(cache.len(), matrix.job_count());
        assert_eq!(cache.trace_count(), matrix.scenarios.len());
        assert!(cache.trace_bytes() > 0);
        let second = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(second.cached_jobs, matrix.job_count());
        assert_eq!(
            first.scorecard.to_json_string(),
            second.scorecard.to_json_string()
        );
    }

    #[test]
    fn incremental_predictor_axis_change_matches_full_run_byte_for_byte() {
        // The tuning-loop pattern: score family A, then grow the axis.
        let base = small_matrix();
        let mut grown = base.clone();
        grown.predictors.push(PredictorSpec::Ewma { gamma: 0.5 });

        let engine = FleetEngine::new(21);
        let mut cache = engine.new_cache();
        engine.run_cached(&base, &mut cache).unwrap();
        let incremental = engine.run_cached(&grown, &mut cache).unwrap();
        // Only the new predictor's jobs ran.
        assert_eq!(incremental.cached_jobs, base.job_count());

        let full = FleetEngine::new(21).run(&grown).unwrap();
        assert_eq!(
            incremental.scorecard.to_json_string(),
            full.scorecard.to_json_string(),
            "incremental re-scoring must be byte-identical to a full run"
        );
    }

    #[test]
    fn cache_rejects_mismatched_engines() {
        let matrix = small_matrix();
        let mut cache = FleetEngine::new(1).new_cache();
        assert!(FleetEngine::new(2).run_cached(&matrix, &mut cache).is_err());
        let strict = FleetEngine::new(1).with_protocol(EvalProtocol::new(0.2, 10));
        assert!(strict.run_cached(&matrix, &mut cache).is_err());
    }

    #[test]
    fn renamed_scenario_is_not_served_from_cache() {
        // Same site config, different name ⇒ different trace seed; the
        // JSON cache key must keep them apart.
        let mut matrix = small_matrix();
        let engine = FleetEngine::new(4);
        let mut cache = engine.new_cache();
        let before = engine.run_cached(&matrix, &mut cache).unwrap();
        matrix.scenarios[0].name = "desert-clear-sky-b".into();
        let after = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(after.cached_jobs, matrix.job_count() / 2);
        assert_ne!(
            before.outcomes[0].summary, after.outcomes[0].summary,
            "renamed scenario must re-evaluate under its own seed"
        );
    }

    #[test]
    fn sharded_run_merges_back_to_the_monolithic_scorecard() {
        let matrix = small_matrix();
        let monolithic = FleetEngine::new(31).run(&matrix).unwrap();
        let sharded = FleetEngine::new(31).run_sharded(&matrix, 2).unwrap();
        assert_eq!(sharded.shards.len(), 2);
        let merged = Scorecard::merge_shards(&sharded.manifest, &sharded.shards).unwrap();
        assert_eq!(
            merged.to_json_string(),
            monolithic.scorecard.to_json_string()
        );
        // The engine-level routing produces the same bytes too.
        let routed = FleetEngine::new(31).with_shards(2).run(&matrix).unwrap();
        assert_eq!(
            routed.scorecard.to_json_string(),
            monolithic.scorecard.to_json_string()
        );
    }

    #[test]
    fn shard_counts_are_validated() {
        let matrix = small_matrix();
        assert!(FleetEngine::new(1).run_sharded(&matrix, 0).is_err());
        assert!(FleetEngine::new(1).run_sharded(&matrix, 3).is_err());
    }

    #[test]
    fn dimming_is_ground_truth_for_the_metrics_pass() {
        // A sky dimmed by exactly 0.5 over the whole horizon scales
        // observations, predictions, and references by the same power
        // of two, so prediction accuracy — a ratio — is unchanged: the
        // predictor tracked the real (dimmed) sky perfectly well. The
        // physical outcome (harvest, brownouts) must still suffer.
        let clean = Catalog::builtin().get("desert-clear-sky").unwrap().clone();
        let mut dimmed = clean.clone();
        dimmed.faults.push(crate::FaultSpec::ClimateDimming {
            start_day: 0,
            duration_days: dimmed.days,
            factor: 0.5,
        });
        // Same name ⇒ same trace seed ⇒ identical underlying sky.
        let specs = vec![PredictorSpec::Wcma {
            alpha: 0.7,
            days: 10,
            k: 2,
        }];
        let managers = vec![ManagerSpec::EnergyNeutral {
            target_soc: 0.5,
            gain: 0.25,
        }];
        let engine = FleetEngine::new(6);
        let clean_run = engine
            .run(&FleetMatrix::new(specs.clone(), managers.clone(), vec![clean]).unwrap())
            .unwrap();
        let dimmed_run = engine
            .run(&FleetMatrix::new(specs, managers, vec![dimmed]).unwrap())
            .unwrap();
        let (a, b) = (&clean_run.outcomes[0], &dimmed_run.outcomes[0]);
        assert!(
            (a.summary.mape - b.summary.mape).abs() < 1e-12,
            "scale-invariant accuracy must not register phantom error: {} vs {}",
            a.summary.mape,
            b.summary.mape
        );
        assert_eq!(a.summary.count, b.summary.count);
        assert!(
            b.report.harvested_j < 0.6 * a.report.harvested_j,
            "the physical harvest must halve"
        );
    }

    #[test]
    fn fleet_faults_project_into_every_affected_scenario() {
        let matrix = small_matrix()
            .with_fleet_faults(vec![FleetFault::RegionalStorm {
                window_start_day: 22,
                window_end_day: 30,
                duration_days: 5,
                depth: 0.8,
                region: crate::SpatialFalloff::global(),
            }])
            .unwrap();
        let engine = FleetEngine::new(8);
        let effective = engine.project_fleet_faults(&matrix).unwrap();
        assert!(effective.fleet_faults.is_empty());
        for scenario in &effective.scenarios {
            assert!(
                scenario
                    .faults
                    .iter()
                    .any(|f| matches!(f, crate::FaultSpec::ClimateDimming { .. })),
                "{} missing the storm projection",
                scenario.name
            );
        }
        // The storm measurably hurts: compare against the clean matrix.
        let clean = FleetEngine::new(8).run(&small_matrix()).unwrap();
        let stormy = FleetEngine::new(8).run(&matrix).unwrap();
        let harvested =
            |r: &FleetResult| r.outcomes.iter().map(|o| o.report.harvested_j).sum::<f64>();
        assert!(
            harvested(&stormy) < harvested(&clean),
            "a fleet-wide storm must reduce total harvest"
        );
        // And the cache keeps clean/stormy scenarios apart (their JSON
        // differs), so a warm clean cache cannot answer stormy jobs.
        let mut cache = engine.new_cache();
        engine.run_cached(&small_matrix(), &mut cache).unwrap();
        let stormy_cached = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(stormy_cached.cached_jobs, 0);
    }
}
