//! The fleet engine: expand a [`FleetMatrix`] into jobs, run them in
//! parallel, reduce to a [`Scorecard`].
//!
//! # Determinism
//!
//! Every random draw is derived from the engine's master seed by stable
//! hashing — scenario traces from `(master, scenario name)`, fault
//! realizations likewise — and each job re-derives its own state from
//! those seeds. Jobs share nothing mutable, and reduction sorts by job
//! index, so the engine's output (including rendered scorecard JSON) is
//! **byte-identical for a given matrix and seed regardless of thread
//! count**. An integration test pins this property.
//!
//! # Two passes per job
//!
//! Each job runs the predictor twice over the scenario trace:
//!
//! 1. a *metrics pass* ([`run_predictor`]-style) scoring predictions
//!    against the true slot means under the paper's protocol, with
//!    measurement faults corrupting the predictor's inputs — this is
//!    prediction accuracy under adversity;
//! 2. a *simulation pass* ([`simulate_node_hooked`]) closing the
//!    management loop with physical faults applied — this is what the
//!    accuracy buys (brownouts, utilization).
//!
//! Both passes realize the identical fault sequence (same seed).
//!
//! # Incremental re-scoring
//!
//! A tuning loop re-runs near-identical matrices dozens of times,
//! changing only the predictor axis between rounds. [`FleetCache`]
//! makes that cheap: it memoizes generated traces per scenario and
//! finished [`JobOutcome`]s per (scenario, predictor, manager) triple,
//! so [`FleetEngine::run_cached`] evaluates **only the jobs whose axis
//! value changed**. Because every job is a pure function of its triple
//! and the master seed, a cached outcome is bit-identical to a fresh
//! one — the resulting scorecard JSON is byte-identical to a full
//! re-run (pinned by test).

use crate::catalog::Scenario;
use crate::faults::{storage_capacity_factor, FaultInjector};
use crate::matrix::{FleetMatrix, JobSpec};
use crate::scorecard::Scorecard;
use harvest_sim::{simulate_node_hooked, NodeReport, SlotHook};
use pred_metrics::{ErrorSummary, EvalProtocol, RunCost};
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use solar_predict::run_predictor_observed;
use solar_synth::TraceGenerator;
use solar_trace::{PowerTrace, SlotView, SlotsPerDay};
use std::collections::HashMap;
use std::time::Instant;

/// Outcome of one (scenario, predictor, manager) job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Predictor label.
    pub predictor: String,
    /// Manager label.
    pub manager: String,
    /// Matrix coordinates.
    pub spec: JobSpec,
    /// Prediction accuracy under the paper's protocol (metrics pass).
    pub summary: ErrorSummary,
    /// Management outcome (simulation pass).
    pub report: NodeReport,
    /// What the job cost: wall time (both passes; non-deterministic)
    /// and the predictor's peak candidate count (deterministic).
    pub cost: RunCost,
}

/// Everything one fleet run produces.
#[derive(Clone, Debug)]
pub struct FleetResult {
    /// Per-job outcomes, in deterministic job order.
    pub outcomes: Vec<JobOutcome>,
    /// The reduced, ranked scorecard.
    pub scorecard: Scorecard,
    /// Jobs answered from the cache (0 for a fresh run).
    pub cached_jobs: usize,
}

/// Memo of traces and job outcomes across runs of one engine — the
/// incremental re-scoring state. Create with [`FleetEngine::new_cache`];
/// feed to [`FleetEngine::run_cached`]. The cache is bound to the
/// engine's master seed and protocol and refuses to serve any other.
#[derive(Clone, Debug, Default)]
pub struct FleetCache {
    master_seed: u64,
    protocol: Option<EvalProtocol>,
    /// Traces keyed by the scenario's full JSON form (not just its
    /// name, so a mutated same-name scenario can never alias).
    traces: HashMap<String, PowerTrace>,
    /// Outcomes keyed by (scenario JSON, predictor label, manager
    /// label); labels are injective over specs by contract.
    outcomes: HashMap<(String, String, String), JobOutcome>,
}

impl FleetCache {
    /// Number of memoized job outcomes.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the cache holds no outcomes.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Number of memoized scenario traces.
    pub fn trace_count(&self) -> usize {
        self.traces.len()
    }

    /// Aggregate cost of every distinct job this cache has evaluated —
    /// the true cost of an incremental loop, with re-served jobs
    /// counted once (order-independent, so stable despite the map).
    pub fn cost(&self) -> pred_metrics::CostAggregate {
        pred_metrics::CostAggregate::of(self.outcomes.values().map(|o| o.cost))
    }
}

/// The parallel fleet evaluator.
#[derive(Clone, Debug)]
pub struct FleetEngine {
    master_seed: u64,
    threads: Option<usize>,
    protocol: EvalProtocol,
}

impl FleetEngine {
    /// An engine deriving all randomness from `master_seed`, evaluating
    /// under the paper's protocol, using all available cores.
    pub fn new(master_seed: u64) -> Self {
        FleetEngine {
            master_seed,
            threads: None,
            protocol: EvalProtocol::paper(),
        }
    }

    /// Pins the worker-thread count (useful for determinism tests and
    /// benchmarking scaling).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Replaces the evaluation protocol.
    pub fn with_protocol(mut self, protocol: EvalProtocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// The master seed.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// An empty cache bound to this engine's seed and protocol.
    pub fn new_cache(&self) -> FleetCache {
        FleetCache {
            master_seed: self.master_seed,
            protocol: Some(self.protocol),
            traces: HashMap::new(),
            outcomes: HashMap::new(),
        }
    }

    /// Runs the whole matrix from scratch.
    ///
    /// # Errors
    ///
    /// Returns the first trace-generation or hardware-construction
    /// error; per-job panics (contract violations) propagate.
    pub fn run(&self, matrix: &FleetMatrix) -> Result<FleetResult, String> {
        let mut cache = self.new_cache();
        self.run_cached(matrix, &mut cache)
    }

    /// Runs the matrix, reusing every trace and job outcome already in
    /// `cache` and evaluating only what changed since the cache was
    /// filled. New traces and outcomes are added to the cache.
    ///
    /// The scorecard is **byte-identical** to what [`FleetEngine::run`]
    /// would produce for the same matrix: jobs are pure functions of
    /// (scenario, predictor, manager, master seed), so a memoized
    /// outcome equals a recomputed one. Only the non-deterministic
    /// wall-time accounting (never rendered into JSON) can differ.
    ///
    /// # Errors
    ///
    /// Returns an error if the cache is bound to a different seed or
    /// protocol, or on the first trace-generation/hardware error.
    pub fn run_cached(
        &self,
        matrix: &FleetMatrix,
        cache: &mut FleetCache,
    ) -> Result<FleetResult, String> {
        let unbound =
            cache.protocol.is_none() && cache.outcomes.is_empty() && cache.traces.is_empty();
        if !unbound
            && (cache.master_seed != self.master_seed || cache.protocol != Some(self.protocol))
        {
            return Err("fleet cache is bound to a different master seed or protocol".to_string());
        }
        cache.master_seed = self.master_seed;
        cache.protocol = Some(self.protocol);
        match self.threads {
            Some(threads) => ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .map_err(|e| e.to_string())?
                .install(|| self.run_cached_inner(matrix, cache)),
            None => self.run_cached_inner(matrix, cache),
        }
    }

    fn run_cached_inner(
        &self,
        matrix: &FleetMatrix,
        cache: &mut FleetCache,
    ) -> Result<FleetResult, String> {
        // Stable per-scenario cache keys: the full JSON form.
        let scenario_keys: Vec<String> = matrix
            .scenarios
            .iter()
            .map(|s| s.to_json().render())
            .collect();
        let predictor_labels: Vec<String> = matrix.predictors.iter().map(|p| p.label()).collect();
        let manager_labels: Vec<String> = matrix.managers.iter().map(|m| m.label()).collect();

        // Phase 1: traces for scenarios the cache has not seen, in
        // parallel, shared read-only by every job of that scenario.
        let missing: Vec<usize> = (0..matrix.scenarios.len())
            .filter(|&idx| !cache.traces.contains_key(&scenario_keys[idx]))
            .collect();
        let generated: Vec<Result<PowerTrace, String>> = missing
            .par_iter()
            .map(|&idx| self.generate_trace(&matrix.scenarios[idx]))
            .collect();
        for (&idx, trace) in missing.iter().zip(generated) {
            cache.traces.insert(scenario_keys[idx].clone(), trace?);
        }

        // Phase 2: only the jobs the cache cannot answer. Keys are
        // built once per job (the scenario key alone is a rendered JSON
        // document) and borrowed for every lookup; only fresh inserts
        // pay a key clone.
        let jobs = matrix.jobs();
        let job_keys: Vec<(String, String, String)> = jobs
            .iter()
            .map(|job| {
                (
                    scenario_keys[job.scenario_idx].clone(),
                    predictor_labels[job.predictor_idx].clone(),
                    manager_labels[job.manager_idx].clone(),
                )
            })
            .collect();
        let fresh: Vec<usize> = (0..jobs.len())
            .filter(|&idx| !cache.outcomes.contains_key(&job_keys[idx]))
            .collect();
        let cached_jobs = jobs.len() - fresh.len();
        let evaluated: Vec<Result<JobOutcome, String>> = fresh
            .par_iter()
            .map(|&idx| {
                let job = &jobs[idx];
                self.evaluate(matrix, job, &cache.traces[&scenario_keys[job.scenario_idx]])
            })
            .collect();
        for (&idx, outcome) in fresh.iter().zip(evaluated) {
            cache.outcomes.insert(job_keys[idx].clone(), outcome?);
        }

        // Phase 3: assemble in job order (cached outcomes carry stale
        // matrix coordinates from the run that produced them — rewrite).
        let outcomes: Vec<JobOutcome> = jobs
            .iter()
            .zip(&job_keys)
            .map(|(job, key)| {
                let mut outcome = cache.outcomes[key].clone();
                outcome.spec = *job;
                outcome
            })
            .collect();
        let scorecard = Scorecard::build(matrix, &outcomes, self.master_seed);
        Ok(FleetResult {
            outcomes,
            scorecard,
            cached_jobs,
        })
    }

    /// The deterministic per-scenario seed: stable across runs, thread
    /// counts, and platforms; distinct per scenario name.
    ///
    /// The hashed string is *salted*: a custom site built from the same
    /// scenario name carries `seed_stream = fnv1a(name)`, and the trace
    /// generator XORs `seed ^ seed_stream` — hashing the bare name here
    /// would cancel it out and hand every custom-site scenario the same
    /// RNG stream (a regression test pins this).
    fn scenario_seed(&self, scenario: &Scenario) -> u64 {
        let salted = format!("fleet-scenario/{}", scenario.name);
        solar_trace::hash::fnv1a(&salted) ^ self.master_seed.rotate_left(17)
    }

    fn generate_trace(&self, scenario: &Scenario) -> Result<PowerTrace, String> {
        let config = scenario.site_config()?;
        TraceGenerator::new(config, self.scenario_seed(scenario))
            .generate_days(scenario.days)
            .map_err(|e| e.to_string())
    }

    fn evaluate(
        &self,
        matrix: &FleetMatrix,
        job: &JobSpec,
        trace: &PowerTrace,
    ) -> Result<JobOutcome, String> {
        let started = Instant::now();
        let scenario = &matrix.scenarios[job.scenario_idx];
        let predictor_spec = &matrix.predictors[job.predictor_idx];
        let manager_spec = &matrix.managers[job.manager_idx];
        let n = scenario.slots_per_day;
        let view = SlotView::new(trace, SlotsPerDay::new(n).map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        let fault_seed = self.scenario_seed(scenario) ^ 0xFA01;

        // Metrics pass: the predictor sees fault-corrupted samples
        // while the log keeps ground-truth references.
        let mut predictor = predictor_spec.build(n as usize)?;
        let mut injector =
            FaultInjector::new(&scenario.faults, fault_seed, scenario.days, n as usize);
        let log = run_predictor_observed(&view, predictor.as_mut(), |day, slot, sample| {
            let mut harvest_ignored = 0.0;
            let mut measured = sample;
            injector.on_slot(day, slot, &mut harvest_ignored, &mut measured);
            measured
        });
        let summary = self.protocol.evaluate(&log);

        // Simulation pass: fresh predictor, identical fault realization.
        let mut predictor = predictor_spec.build(n as usize)?;
        let mut manager = manager_spec.build();
        let mut injector =
            FaultInjector::new(&scenario.faults, fault_seed, scenario.days, n as usize);
        let config = scenario
            .node
            .node_config(storage_capacity_factor(&scenario.faults))?;
        let report = simulate_node_hooked(
            &view,
            predictor.as_mut(),
            manager.as_mut(),
            &config,
            &mut injector,
        );

        Ok(JobOutcome {
            scenario: scenario.name.clone(),
            predictor: predictor_spec.label(),
            manager: manager_spec.label(),
            spec: *job,
            summary,
            report,
            cost: RunCost {
                wall_nanos: started.elapsed().as_nanos() as u64,
                peak_candidates: predictor_spec.candidate_count(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::matrix::{ManagerSpec, PredictorSpec};

    fn small_matrix() -> FleetMatrix {
        let scenarios = vec![
            Catalog::builtin().get("desert-clear-sky").unwrap().clone(),
            Catalog::builtin().get("aging-node").unwrap().clone(),
        ];
        FleetMatrix::new(
            vec![
                PredictorSpec::Wcma {
                    alpha: 0.7,
                    days: 10,
                    k: 2,
                },
                PredictorSpec::Persistence,
            ],
            vec![
                ManagerSpec::EnergyNeutral {
                    target_soc: 0.5,
                    gain: 0.25,
                },
                ManagerSpec::Greedy,
            ],
            scenarios,
        )
        .unwrap()
    }

    #[test]
    fn engine_runs_the_full_matrix() {
        let result = FleetEngine::new(42).run(&small_matrix()).unwrap();
        assert_eq!(result.outcomes.len(), 2 * 2 * 2);
        assert_eq!(result.cached_jobs, 0);
        for outcome in &result.outcomes {
            assert!(outcome.summary.count > 0, "{}", outcome.scenario);
            assert!(outcome.summary.mape.is_finite());
            assert!(outcome.cost.wall_nanos > 0);
            assert_eq!(outcome.cost.peak_candidates, 1);
            assert!(
                outcome.report.energy_balance_error_j()
                    < 1e-6 * outcome.report.harvested_j.max(1.0),
                "{}: {}",
                outcome.scenario,
                outcome.report.energy_balance_error_j()
            );
        }
    }

    #[test]
    fn outcomes_are_in_job_order_regardless_of_threads() {
        let matrix = small_matrix();
        let a = FleetEngine::new(7).with_threads(1).run(&matrix).unwrap();
        let b = FleetEngine::new(7).with_threads(4).run(&matrix).unwrap();
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.summary, y.summary);
            assert_eq!(x.report, y.report);
        }
    }

    #[test]
    fn equally_configured_custom_sites_with_different_names_get_different_traces() {
        // Regression: the scenario-seed hash must not cancel against the
        // custom site's name-derived seed_stream (engine XORs the
        // scenario hash in, TraceGenerator XORs seed_stream back out).
        let base = Catalog::builtin().get("four-seasons").unwrap().clone();
        let mut twin = base.clone();
        twin.name = "four-seasons-twin".into();
        twin.days = base.days;
        let engine = FleetEngine::new(3);
        let a = engine.generate_trace(&base).unwrap();
        let b = engine.generate_trace(&twin).unwrap();
        assert_ne!(a.samples(), b.samples());
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let matrix = small_matrix();
        let a = FleetEngine::new(1).run(&matrix).unwrap();
        let b = FleetEngine::new(2).run(&matrix).unwrap();
        assert_ne!(a.outcomes[0].summary, b.outcomes[0].summary);
    }

    #[test]
    fn faults_hurt_the_faulted_scenario() {
        // The aging-node scenario halves storage and drops samples; the
        // same predictor+manager must brown out at least as often there
        // as on the clean desert scenario is not guaranteed (different
        // sites), but the faulted run must still balance energy and
        // produce strictly positive harvest.
        let result = FleetEngine::new(3).run(&small_matrix()).unwrap();
        let faulted: Vec<_> = result
            .outcomes
            .iter()
            .filter(|o| o.scenario == "aging-node")
            .collect();
        assert!(!faulted.is_empty());
        for outcome in faulted {
            assert!(outcome.report.harvested_j > 0.0);
            assert!(outcome.report.energy_balance_error_j() < 1e-6);
        }
    }

    #[test]
    fn cache_answers_repeat_runs_without_re_evaluating() {
        let matrix = small_matrix();
        let engine = FleetEngine::new(9);
        let mut cache = engine.new_cache();
        let first = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(first.cached_jobs, 0);
        assert_eq!(cache.len(), matrix.job_count());
        assert_eq!(cache.trace_count(), matrix.scenarios.len());
        let second = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(second.cached_jobs, matrix.job_count());
        assert_eq!(
            first.scorecard.to_json_string(),
            second.scorecard.to_json_string()
        );
    }

    #[test]
    fn incremental_predictor_axis_change_matches_full_run_byte_for_byte() {
        // The tuning-loop pattern: score family A, then grow the axis.
        let base = small_matrix();
        let mut grown = base.clone();
        grown.predictors.push(PredictorSpec::Ewma { gamma: 0.5 });

        let engine = FleetEngine::new(21);
        let mut cache = engine.new_cache();
        engine.run_cached(&base, &mut cache).unwrap();
        let incremental = engine.run_cached(&grown, &mut cache).unwrap();
        // Only the new predictor's jobs ran.
        assert_eq!(incremental.cached_jobs, base.job_count());

        let full = FleetEngine::new(21).run(&grown).unwrap();
        assert_eq!(
            incremental.scorecard.to_json_string(),
            full.scorecard.to_json_string(),
            "incremental re-scoring must be byte-identical to a full run"
        );
    }

    #[test]
    fn cache_rejects_mismatched_engines() {
        let matrix = small_matrix();
        let mut cache = FleetEngine::new(1).new_cache();
        assert!(FleetEngine::new(2).run_cached(&matrix, &mut cache).is_err());
        let strict = FleetEngine::new(1).with_protocol(EvalProtocol::new(0.2, 10));
        assert!(strict.run_cached(&matrix, &mut cache).is_err());
    }

    #[test]
    fn renamed_scenario_is_not_served_from_cache() {
        // Same site config, different name ⇒ different trace seed; the
        // JSON cache key must keep them apart.
        let mut matrix = small_matrix();
        let engine = FleetEngine::new(4);
        let mut cache = engine.new_cache();
        let before = engine.run_cached(&matrix, &mut cache).unwrap();
        matrix.scenarios[0].name = "desert-clear-sky-b".into();
        let after = engine.run_cached(&matrix, &mut cache).unwrap();
        assert_eq!(after.cached_jobs, matrix.job_count() / 2);
        assert_ne!(
            before.outcomes[0].summary, after.outcomes[0].summary,
            "renamed scenario must re-evaluate under its own seed"
        );
    }
}
