//! Parameterized catalog generators: climate-family templates expanded
//! into hundreds of concrete scenarios from a single seed.
//!
//! The builtin [`Catalog`](crate::Catalog) hand-writes thirteen regimes;
//! fleet-scale conclusions need hundreds (Basha et al. validate across
//! geographically distributed deployments, and Mziou-Sallami et al. show
//! prediction-error consequences are regime-dependent). A
//! [`RegimeTemplate`] describes one climate family as a cross product of
//! axes — a latitude sweep, continuous cloudiness/turbidity shaping (the
//! [`solar_synth::SiteConfigBuilder`] axes carried by
//! [`SiteSpec::Shaped`]), hardware tiers, and [`FaultMix`] presets — and
//! a [`CatalogGenerator`] expands a set of templates deterministically:
//!
//! * **one seed, whole catalog** — the generator seed salts every
//!   generated name, and the name drives the per-scenario trace seed
//!   stream, so two generators with different seeds produce structurally
//!   identical catalogs over *different* random worlds;
//! * **stable ids** — a generated id is a pure function of
//!   `(seed, family, axis values)`, independent of axis ordering or how
//!   many other combinations exist, so adding an axis value never
//!   renames existing scenarios (pinned by tests);
//! * **round-trippable** — every generated scenario is plain catalog
//!   data: its JSON round-trips byte-exactly and re-validates, so
//!   generated catalogs flow through `FleetMatrix`, the engine's
//!   streamed/sharded paths, the cache, and the tuner unchanged.

use crate::catalog::{Catalog, Climate, NodeProfile, Scenario, SiteSpec};
use crate::faults::FaultSpec;
use solar_synth::{SiteConfigBuilder, StreamVersion};

/// A named fault-mix preset attached to generated scenarios — the
/// fault-axis analogue of the climate presets.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultMix {
    /// No faults.
    Clean,
    /// Faded storage and a flaky sensor (the `aging-node` recipe).
    Aging,
    /// Logger gaps plus sensor dropouts (the `gappy-telemetry` recipe).
    Gappy,
    /// A mid-horizon climate-dimming anomaly (a la-niña-style span).
    Dimmed,
}

impl FaultMix {
    /// All presets.
    pub const ALL: [FaultMix; 4] = [
        FaultMix::Clean,
        FaultMix::Aging,
        FaultMix::Gappy,
        FaultMix::Dimmed,
    ];

    /// Stable identifier used in generated ids.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultMix::Clean => "clean",
            FaultMix::Aging => "aging",
            FaultMix::Gappy => "gappy",
            FaultMix::Dimmed => "dimmed",
        }
    }

    /// The concrete fault list for a `days`-day horizon.
    pub fn faults(self, days: usize) -> Vec<FaultSpec> {
        match self {
            FaultMix::Clean => vec![],
            FaultMix::Aging => vec![
                FaultSpec::StorageFade {
                    capacity_factor: 0.6,
                },
                FaultSpec::SensorDropout { rate: 0.02 },
            ],
            FaultMix::Gappy => vec![
                FaultSpec::TraceGap {
                    gaps_per_100_days: 10.0,
                    mean_slots: 6.0,
                },
                FaultSpec::SensorDropout { rate: 0.04 },
            ],
            FaultMix::Dimmed => vec![FaultSpec::ClimateDimming {
                start_day: days / 3,
                duration_days: (days / 4).max(1),
                factor: 0.8,
            }],
        }
    }
}

/// One climate-family template: the cross product of its axis values
/// expands into concrete [`Scenario`]s via [`RegimeTemplate::expand`]
/// (usually through a [`CatalogGenerator`]).
#[derive(Clone, Debug)]
pub struct RegimeTemplate {
    /// Kebab-case family stem, unique within a generator; part of every
    /// generated id.
    pub family: String,
    /// Climate family of every site this template emits.
    pub climate: Climate,
    /// Latitude sweep in degrees (north positive, within ±85).
    pub latitudes_deg: Vec<f64>,
    /// Cloudiness-tilt axis (`1.0` = the climate preset, `[1/8, 8]`).
    pub cloudiness: Vec<f64>,
    /// Turbidity axis (clear-sky fraction removed, `[0, 0.8]`).
    pub turbidity: Vec<f64>,
    /// Hardware tiers (storage and load classes).
    pub nodes: Vec<NodeProfile>,
    /// Fault-mix presets.
    pub fault_mixes: Vec<FaultMix>,
    /// Evaluation horizon in days (≥ 25 for the warm-up).
    pub days: usize,
    /// Prediction discretization `N`.
    pub slots_per_day: u32,
    /// Sample period in minutes.
    pub resolution_minutes: u32,
    /// RNG stream version of every generated trace. V1 ids are
    /// unchanged from before versioning existed; V2 ids carry a `-v2`
    /// segment so an id never silently changes meaning.
    pub stream_version: StreamVersion,
}

/// Rejects duplicates under `key` so two axis values can never collide
/// into one generated id.
fn check_unique<T, K: PartialEq>(
    axis: &str,
    values: &[T],
    key: impl Fn(&T) -> K,
) -> Result<(), String> {
    if values.is_empty() {
        return Err(format!("template axis {axis:?} must be non-empty"));
    }
    for (i, a) in values.iter().enumerate() {
        if values[i + 1..].iter().any(|b| key(b) == key(a)) {
            return Err(format!("template axis {axis:?} has duplicate values"));
        }
    }
    Ok(())
}

impl RegimeTemplate {
    /// Validates the template: non-empty, duplicate-free axes with
    /// in-range values and a horizon the catalog accepts.
    pub fn validate(&self) -> Result<(), String> {
        if self.family.is_empty() {
            return Err("template family must be non-empty".to_string());
        }
        check_unique("latitudes_deg", &self.latitudes_deg, |v| v.to_bits())?;
        check_unique("cloudiness", &self.cloudiness, |v| v.to_bits())?;
        check_unique("turbidity", &self.turbidity, |v| v.to_bits())?;
        // Ids embed NodeProfile::name(), and every Custom variant
        // renders as the same "custom" segment — stable ids therefore
        // require the named preset tiers.
        if self
            .nodes
            .iter()
            .any(|n| matches!(n, NodeProfile::Custom { .. }))
        {
            return Err(format!(
                "template {:?}: custom node profiles have no stable id segment; \
                 use the preset tiers (tiny-mote / mote / gateway)",
                self.family
            ));
        }
        check_unique("nodes", &self.nodes, |n| n.name())?;
        check_unique("fault_mixes", &self.fault_mixes, |m| m.as_str())?;
        // Per-axis range checks delegate to `SiteConfigBuilder` (one
        // probe build per axis value), so the latitude/cloudiness/
        // turbidity bounds live in exactly one place — the builder —
        // while template assembly still fails eagerly instead of
        // mid-expansion.
        let probe = |builder: SiteConfigBuilder| {
            builder
                .build()
                .map(|_| ())
                .map_err(|e| format!("template {:?}: {e}", self.family))
        };
        for &latitude in &self.latitudes_deg {
            probe(SiteConfigBuilder::new("axis-probe").latitude_deg(latitude))?;
        }
        for &cloudiness in &self.cloudiness {
            probe(SiteConfigBuilder::new("axis-probe").cloudiness(cloudiness))?;
        }
        for &turbidity in &self.turbidity {
            probe(SiteConfigBuilder::new("axis-probe").turbidity(turbidity))?;
        }
        if self.days < 25 {
            return Err(format!(
                "template {:?}: {} days leaves no room after the 20-day warm-up",
                self.family, self.days
            ));
        }
        Ok(())
    }

    /// Number of scenarios this template expands into.
    pub fn count(&self) -> usize {
        self.latitudes_deg.len()
            * self.cloudiness.len()
            * self.turbidity.len()
            * self.nodes.len()
            * self.fault_mixes.len()
    }

    /// The stable id of one axis combination: a pure function of the
    /// generator seed, the family, and the axis *values* (floats render
    /// in shortest round-trip form), never of axis positions.
    fn scenario_id(
        &self,
        seed: u64,
        latitude: f64,
        cloudiness: f64,
        turbidity: f64,
        node: &NodeProfile,
        mix: FaultMix,
    ) -> String {
        let version = match self.stream_version {
            // V1 predates versioning: no segment, so every id minted
            // before stream versions existed is byte-unchanged.
            StreamVersion::V1 => "",
            StreamVersion::V2 => "-v2",
        };
        format!(
            "g{seed:x}-{}-lat{latitude}-cl{cloudiness}-tb{turbidity}-{}-{}{version}",
            self.family,
            node.name(),
            mix.as_str()
        )
    }

    /// Expands the full cross product into validated scenarios, in
    /// deterministic axis order (latitude → cloudiness → turbidity →
    /// node → fault mix).
    ///
    /// # Errors
    ///
    /// Returns the first template- or scenario-validation error.
    pub fn expand(&self, seed: u64) -> Result<Vec<Scenario>, String> {
        self.validate()?;
        let mut scenarios = Vec::with_capacity(self.count());
        for &latitude in &self.latitudes_deg {
            for &cloudiness in &self.cloudiness {
                for &turbidity in &self.turbidity {
                    for node in &self.nodes {
                        for &mix in &self.fault_mixes {
                            let scenario = Scenario {
                                name: self
                                    .scenario_id(seed, latitude, cloudiness, turbidity, node, mix),
                                summary: format!(
                                    "generated {}: {} at {latitude}°, cloudiness ×{cloudiness}, \
                                     turbidity {turbidity}, {} node, {} faults",
                                    self.family,
                                    self.climate.as_str(),
                                    node.name(),
                                    mix.as_str()
                                ),
                                site: SiteSpec::Shaped {
                                    latitude_deg: latitude,
                                    resolution_minutes: self.resolution_minutes,
                                    climate: self.climate,
                                    cloudiness,
                                    turbidity,
                                    stream_version: self.stream_version,
                                },
                                days: self.days,
                                slots_per_day: self.slots_per_day,
                                node: node.clone(),
                                faults: mix.faults(self.days),
                            };
                            scenario
                                .validate()
                                .map_err(|e| format!("template {:?}: {e}", self.family))?;
                            scenarios.push(scenario);
                        }
                    }
                }
            }
        }
        Ok(scenarios)
    }
}

/// Deterministic expansion of a template set into a [`Catalog`]: one
/// seed in, hundreds of distinct regimes out, each with a stable id (a
/// pure function of seed, family, and axis values — never of axis
/// positions) and byte-exact JSON round-tripping, so generated catalogs
/// flow through the engine, cache, shards, and tuner unchanged.
#[derive(Clone, Debug)]
pub struct CatalogGenerator {
    seed: u64,
    templates: Vec<RegimeTemplate>,
}

impl CatalogGenerator {
    /// A generator over the builtin climate families
    /// ([`CatalogGenerator::builtin_families`]).
    pub fn new(seed: u64) -> Self {
        CatalogGenerator {
            seed,
            templates: Self::builtin_families(),
        }
    }

    /// A generator over explicit templates (validated; families must be
    /// unique).
    pub fn with_templates(seed: u64, templates: Vec<RegimeTemplate>) -> Result<Self, String> {
        if templates.is_empty() {
            return Err("catalog generator needs at least one template".to_string());
        }
        for template in &templates {
            template.validate()?;
        }
        check_unique("families", &templates, |t| t.family.clone())?;
        Ok(CatalogGenerator { seed, templates })
    }

    /// The builtin climate-family templates: five families spanning
    /// both hemispheres, the equatorial band, continuous
    /// cloudiness/turbidity shaping, three hardware tiers, and the
    /// fault-mix presets — just under 300 regimes in total.
    pub fn builtin_families() -> Vec<RegimeTemplate> {
        let belt = |family: &str,
                    climate: Climate,
                    latitudes: Vec<f64>,
                    cloudiness: Vec<f64>,
                    turbidity: Vec<f64>,
                    nodes: Vec<NodeProfile>,
                    mixes: Vec<FaultMix>| RegimeTemplate {
            family: family.to_string(),
            climate,
            latitudes_deg: latitudes,
            cloudiness,
            turbidity,
            nodes,
            fault_mixes: mixes,
            days: 30,
            slots_per_day: 48,
            resolution_minutes: 5,
            stream_version: StreamVersion::V1,
        };
        vec![
            belt(
                "desert-belt",
                Climate::Desert,
                vec![18.0, 26.0, 34.0, 42.0],
                vec![0.5, 1.0, 2.0],
                vec![0.0, 0.3],
                vec![NodeProfile::Mote, NodeProfile::TinyMote],
                vec![FaultMix::Clean, FaultMix::Gappy],
            ),
            belt(
                "temperate-belt",
                Climate::Temperate,
                vec![-52.0, -38.0, 38.0, 52.0],
                vec![0.5, 1.0, 2.0],
                vec![0.0, 0.2],
                vec![NodeProfile::Mote, NodeProfile::Gateway],
                vec![FaultMix::Clean, FaultMix::Aging],
            ),
            belt(
                "marine-coast",
                Climate::Marine,
                vec![-45.0, 35.0, 48.0],
                vec![0.75, 1.5],
                vec![0.0, 0.25],
                vec![NodeProfile::Mote],
                vec![FaultMix::Clean, FaultMix::Aging],
            ),
            belt(
                "monsoon-band",
                Climate::Monsoon,
                vec![-18.0, -6.0, 8.0, 21.0],
                vec![0.75, 1.25],
                vec![0.0, 0.2],
                vec![NodeProfile::Mote, NodeProfile::TinyMote],
                vec![FaultMix::Clean, FaultMix::Dimmed],
            ),
            belt(
                "arctic-rim",
                Climate::Arctic,
                vec![-68.0, 62.0, 70.0],
                vec![1.0, 1.5],
                vec![0.0],
                vec![NodeProfile::TinyMote],
                vec![FaultMix::Clean, FaultMix::Aging],
            ),
        ]
    }

    /// Switches every template to `version`. V2 changes both the
    /// generated trace streams and every id (a `-v2` segment), so a
    /// v2 catalog can never be mistaken for — or collide with — its
    /// v1 twin in caches, shards, or reports.
    pub fn with_stream_version(mut self, version: StreamVersion) -> Self {
        for template in &mut self.templates {
            template.stream_version = version;
        }
        self
    }

    /// The generator seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The templates, in expansion order.
    pub fn templates(&self) -> &[RegimeTemplate] {
        &self.templates
    }

    /// Total number of scenarios the templates expand into.
    pub fn total(&self) -> usize {
        self.templates.iter().map(RegimeTemplate::count).sum()
    }

    /// Expands every template combination into a catalog.
    ///
    /// # Errors
    ///
    /// Returns the first validation error.
    pub fn expand_all(&self) -> Result<Catalog, String> {
        self.generate(self.total())
    }

    /// The first `count` scenarios in deterministic round-robin order
    /// across templates, so a small count still spans every climate
    /// family. Ids are unaffected by `count` (they derive from axis
    /// values, not positions): growing a fleet from 64 to 200 keeps the
    /// first 64 scenarios — names, JSON, traces — bit-identical.
    ///
    /// # Errors
    ///
    /// Rejects a zero count or one past [`CatalogGenerator::total`],
    /// and propagates validation errors.
    pub fn generate(&self, count: usize) -> Result<Catalog, String> {
        if count == 0 {
            return Err("generated catalog count must be at least 1".to_string());
        }
        let total = self.total();
        if count > total {
            return Err(format!(
                "generated catalog count {count} exceeds the {total} scenarios \
                 the templates expand into"
            ));
        }
        let mut lanes: Vec<std::vec::IntoIter<Scenario>> = Vec::with_capacity(self.templates.len());
        for template in &self.templates {
            lanes.push(template.expand(self.seed)?.into_iter());
        }
        let mut catalog = Catalog::new();
        let mut taken = 0;
        while taken < count {
            let mut progressed = false;
            for lane in &mut lanes {
                if taken == count {
                    break;
                }
                if let Some(scenario) = lane.next() {
                    catalog.push(scenario)?;
                    taken += 1;
                    progressed = true;
                }
            }
            if !progressed {
                return Err("template expansion ran dry before count".to_string());
            }
        }
        Ok(catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_families_expand_past_two_hundred_validated_regimes() {
        let generator = CatalogGenerator::new(42);
        assert!(
            generator.total() >= 200,
            "builtin templates must expand to ≥200 regimes, got {}",
            generator.total()
        );
        let catalog = generator.expand_all().unwrap();
        assert_eq!(catalog.len(), generator.total());
        // Names are unique (Catalog::push enforces it; double-check).
        let mut names = catalog.names();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), catalog.len());
        // Every climate family is represented.
        for climate in Climate::ALL {
            assert!(
                catalog.scenarios().iter().any(|s| matches!(
                    s.site,
                    SiteSpec::Shaped { climate: c, .. } if c == climate
                )),
                "{climate:?} missing from the generated catalog"
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed_and_differs_across_seeds() {
        let a = CatalogGenerator::new(7).generate(40).unwrap();
        let b = CatalogGenerator::new(7).generate(40).unwrap();
        let c = CatalogGenerator::new(8).generate(40).unwrap();
        let render = |catalog: &Catalog| -> Vec<String> {
            catalog
                .scenarios()
                .iter()
                .map(|s| s.to_json().render())
                .collect()
        };
        assert_eq!(render(&a), render(&b));
        // A different seed renames every scenario (and hence re-seeds
        // every trace stream) while keeping the structure.
        assert_eq!(a.len(), c.len());
        for (x, y) in a.scenarios().iter().zip(c.scenarios()) {
            assert_ne!(x.name, y.name);
            assert_eq!(x.site, y.site);
        }
    }

    #[test]
    fn small_counts_interleave_across_families() {
        let catalog = CatalogGenerator::new(3).generate(5).unwrap();
        let climates: std::collections::BTreeSet<&str> = catalog
            .scenarios()
            .iter()
            .map(|s| match s.site {
                SiteSpec::Shaped { climate, .. } => climate.as_str(),
                _ => panic!("generated scenarios are Shaped"),
            })
            .collect();
        assert_eq!(climates.len(), 5, "5 scenarios must span 5 families");
    }

    #[test]
    fn ids_are_stable_under_axis_growth() {
        let narrow = RegimeTemplate {
            latitudes_deg: vec![10.0, 30.0],
            ..CatalogGenerator::builtin_families()[0].clone()
        };
        let wide = RegimeTemplate {
            latitudes_deg: vec![10.0, 20.0, 30.0],
            ..narrow.clone()
        };
        let narrow_set = narrow.expand(11).unwrap();
        let wide_set = wide.expand(11).unwrap();
        assert!(wide_set.len() > narrow_set.len());
        // Every narrow scenario survives in the wide expansion with an
        // identical id and identical JSON: adding an axis value never
        // renames (or re-seeds) existing regimes.
        for scenario in &narrow_set {
            let twin = wide_set
                .iter()
                .find(|s| s.name == scenario.name)
                .unwrap_or_else(|| panic!("{} missing from the wide expansion", scenario.name));
            assert_eq!(twin.to_json().render(), scenario.to_json().render());
        }
    }

    #[test]
    fn v2_catalogs_rename_and_round_trip() {
        let v1 = CatalogGenerator::new(7).generate(40).unwrap();
        let v2 = CatalogGenerator::new(7)
            .with_stream_version(StreamVersion::V2)
            .generate(40)
            .unwrap();
        assert_eq!(v1.len(), v2.len());
        for (a, b) in v1.scenarios().iter().zip(v2.scenarios()) {
            // Ids must differ (the -v2 segment) so the two streams can
            // never collide in caches or reports.
            assert_eq!(format!("{}-v2", a.name), b.name);
            match (&a.site, &b.site) {
                (
                    SiteSpec::Shaped {
                        stream_version: va, ..
                    },
                    SiteSpec::Shaped {
                        stream_version: vb, ..
                    },
                ) => {
                    assert_eq!(*va, StreamVersion::V1);
                    assert_eq!(*vb, StreamVersion::V2);
                }
                other => panic!("generated scenarios are Shaped: {other:?}"),
            }
            // v1 JSON carries no stream key (byte-compat with catalogs
            // minted before versioning); v2 JSON round-trips.
            let v1_text = a.to_json().render_pretty();
            assert!(!v1_text.contains("\"stream\""), "{v1_text}");
            let v2_text = b.to_json().render_pretty();
            assert!(v2_text.contains("\"stream\""), "{v2_text}");
            let back = Scenario::from_json_str(&v2_text).unwrap();
            assert_eq!(&back, b);
            assert_eq!(back.to_json().render_pretty(), v2_text);
        }
    }

    #[test]
    fn fault_mixes_materialize_their_presets() {
        assert!(FaultMix::Clean.faults(30).is_empty());
        for mix in [FaultMix::Aging, FaultMix::Gappy, FaultMix::Dimmed] {
            let faults = mix.faults(30);
            assert!(!faults.is_empty(), "{mix:?}");
            for fault in &faults {
                fault.validate().unwrap();
            }
        }
        // The dimmed span sits inside the horizon for any valid length.
        for days in [25, 30, 365] {
            match FaultMix::Dimmed.faults(days)[..] {
                [FaultSpec::ClimateDimming { start_day, .. }] => assert!(start_day < days),
                ref other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn invalid_templates_and_counts_are_rejected() {
        let base = CatalogGenerator::builtin_families()[0].clone();
        for breakage in [
            RegimeTemplate {
                family: String::new(),
                ..base.clone()
            },
            RegimeTemplate {
                latitudes_deg: vec![],
                ..base.clone()
            },
            RegimeTemplate {
                latitudes_deg: vec![10.0, 10.0],
                ..base.clone()
            },
            RegimeTemplate {
                latitudes_deg: vec![88.0],
                ..base.clone()
            },
            RegimeTemplate {
                cloudiness: vec![50.0],
                ..base.clone()
            },
            RegimeTemplate {
                turbidity: vec![0.95],
                ..base.clone()
            },
            RegimeTemplate {
                days: 10,
                ..base.clone()
            },
            // Custom hardware has no stable id segment.
            RegimeTemplate {
                nodes: vec![NodeProfile::Custom {
                    panel_m2: 0.01,
                    panel_efficiency: 0.15,
                    capacity_j: 2000.0,
                    initial_soc: 0.5,
                    charge_efficiency: 0.9,
                    discharge_efficiency: 0.9,
                    leakage_w: 0.001,
                    active_w: 0.05,
                    sleep_w: 0.0005,
                }],
                ..base.clone()
            },
        ] {
            assert!(breakage.validate().is_err(), "{breakage:?}");
        }
        // Duplicate families collide at generator assembly.
        assert!(CatalogGenerator::with_templates(1, vec![base.clone(), base.clone()]).is_err());
        assert!(CatalogGenerator::with_templates(1, vec![]).is_err());
        let generator = CatalogGenerator::new(1);
        assert!(generator.generate(0).is_err());
        assert!(generator.generate(generator.total() + 1).is_err());
    }
}
