//! Fault and perturbation injectors.
//!
//! Faults come in two flavours that the engine treats differently:
//!
//! * **physical** faults change what actually happens to the node —
//!   [`FaultSpec::PanelOutage`] and [`FaultSpec::TraceGap`] zero the
//!   harvested energy, [`FaultSpec::StorageFade`] shrinks the store.
//! * **measurement** faults corrupt only what the predictor observes —
//!   [`FaultSpec::SensorDropout`] makes the sensor read zero while the
//!   panel keeps producing.
//!
//! The realization of stochastic faults (dropout draws, gap placement)
//! is a pure function of the injector seed, so every job evaluating the
//! same scenario — and both the prediction-metrics and the simulation
//! pass within one job — sees the *same* fault sequence.

use crate::json::Json;
use harvest_sim::SlotHook;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One declarative fault in a scenario.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultSpec {
    /// The panel produces nothing for `duration_days` starting at
    /// `start_day` (0-based) — a blown fuse, deep snow cover.
    PanelOutage {
        /// First affected day.
        start_day: usize,
        /// Number of affected days.
        duration_days: usize,
    },
    /// Storage capacity (and initial level) scaled by `capacity_factor`
    /// in `(0, 1]` — an aged supercap bank.
    StorageFade {
        /// Remaining fraction of nameplate capacity.
        capacity_factor: f64,
    },
    /// Each slot's measured sample independently reads 0 with
    /// probability `rate` — a flaky sensor or ADC brownout.
    SensorDropout {
        /// Per-slot dropout probability in `[0, 1]`.
        rate: f64,
    },
    /// Randomly placed spans where both harvest and measurement are zero
    /// — node resets, data-logger gaps.
    TraceGap {
        /// Expected gap count per 100 days.
        gaps_per_100_days: f64,
        /// Mean gap length in slots (exponential).
        mean_slots: f64,
    },
    /// The sky itself dims for a span of days: harvest *and* measurement
    /// scale by `factor` — a persistent storm system or a year-over-year
    /// climate anomaly (la-niña-style cloudier year). Unlike the sensor
    /// faults, this is physical ground truth, so the engine also scales
    /// the metrics-pass references by the same factor (see
    /// [`FaultInjector::sky_factor`]): accuracy is judged against the
    /// dimmed sky, not the counterfactual clean one. Deterministic (no
    /// RNG), so a fleet-wide event projected into many scenarios hits
    /// them all on the same days — the correlation the independent fault
    /// kinds cannot express.
    ClimateDimming {
        /// First affected day (0-based).
        start_day: usize,
        /// Number of affected days.
        duration_days: usize,
        /// Remaining light fraction in `(0, 1]`.
        factor: f64,
    },
    /// Dust/pollen accumulates on the panel, linearly ramping harvest
    /// loss to `max_loss` over the span, then the panel is cleaned (rain
    /// or maintenance). The pyranometer is mounted separately and stays
    /// clean, so the predictor never sees the loss — the adversarial
    /// gap between observed irradiance and harvested energy.
    PanelSoiling {
        /// First affected day (0-based).
        start_day: usize,
        /// Days over which the loss ramps to `max_loss`.
        duration_days: usize,
        /// Peak harvest fraction lost, in `(0, 1]`.
        max_loss: f64,
    },
}

impl FaultSpec {
    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            FaultSpec::PanelOutage { duration_days, .. } => {
                if duration_days == 0 {
                    return Err("panel_outage duration_days must be at least 1".to_string());
                }
            }
            FaultSpec::StorageFade { capacity_factor } => {
                if !(capacity_factor.is_finite() && 0.0 < capacity_factor && capacity_factor <= 1.0)
                {
                    return Err(format!(
                        "storage_fade capacity_factor {capacity_factor} must be in (0, 1]"
                    ));
                }
            }
            FaultSpec::SensorDropout { rate } => {
                if !(rate.is_finite() && (0.0..=1.0).contains(&rate)) {
                    return Err(format!("sensor_dropout rate {rate} must be in [0, 1]"));
                }
            }
            FaultSpec::TraceGap {
                gaps_per_100_days,
                mean_slots,
            } => {
                if !(gaps_per_100_days.is_finite() && gaps_per_100_days >= 0.0) {
                    return Err("trace_gap gaps_per_100_days must be non-negative".to_string());
                }
                if !(mean_slots.is_finite() && mean_slots >= 1.0) {
                    return Err("trace_gap mean_slots must be at least 1".to_string());
                }
            }
            FaultSpec::ClimateDimming {
                duration_days,
                factor,
                ..
            } => {
                if duration_days == 0 {
                    return Err("climate_dimming duration_days must be at least 1".to_string());
                }
                if !(factor.is_finite() && 0.0 < factor && factor <= 1.0) {
                    return Err(format!("climate_dimming factor {factor} must be in (0, 1]"));
                }
            }
            FaultSpec::PanelSoiling {
                duration_days,
                max_loss,
                ..
            } => {
                if duration_days == 0 {
                    return Err("panel_soiling duration_days must be at least 1".to_string());
                }
                if !(max_loss.is_finite() && 0.0 < max_loss && max_loss <= 1.0) {
                    return Err(format!(
                        "panel_soiling max_loss {max_loss} must be in (0, 1]"
                    ));
                }
            }
        }
        Ok(())
    }

    /// JSON form (`{"kind": ..., ...}`).
    pub fn to_json(&self) -> Json {
        match *self {
            FaultSpec::PanelOutage {
                start_day,
                duration_days,
            } => Json::obj([
                ("kind", Json::Str("panel_outage".into())),
                ("start_day", Json::Num(start_day as f64)),
                ("duration_days", Json::Num(duration_days as f64)),
            ]),
            FaultSpec::StorageFade { capacity_factor } => Json::obj([
                ("kind", Json::Str("storage_fade".into())),
                ("capacity_factor", Json::Num(capacity_factor)),
            ]),
            FaultSpec::SensorDropout { rate } => Json::obj([
                ("kind", Json::Str("sensor_dropout".into())),
                ("rate", Json::Num(rate)),
            ]),
            FaultSpec::TraceGap {
                gaps_per_100_days,
                mean_slots,
            } => Json::obj([
                ("kind", Json::Str("trace_gap".into())),
                ("gaps_per_100_days", Json::Num(gaps_per_100_days)),
                ("mean_slots", Json::Num(mean_slots)),
            ]),
            FaultSpec::ClimateDimming {
                start_day,
                duration_days,
                factor,
            } => Json::obj([
                ("kind", Json::Str("climate_dimming".into())),
                ("start_day", Json::Num(start_day as f64)),
                ("duration_days", Json::Num(duration_days as f64)),
                ("factor", Json::Num(factor)),
            ]),
            FaultSpec::PanelSoiling {
                start_day,
                duration_days,
                max_loss,
            } => Json::obj([
                ("kind", Json::Str("panel_soiling".into())),
                ("start_day", Json::Num(start_day as f64)),
                ("duration_days", Json::Num(duration_days as f64)),
                ("max_loss", Json::Num(max_loss)),
            ]),
        }
    }

    /// Parses the JSON form.
    pub fn from_json(value: &Json) -> Result<FaultSpec, String> {
        let spec = match value.req_str("kind")? {
            "panel_outage" => FaultSpec::PanelOutage {
                start_day: value.req_index("start_day")? as usize,
                duration_days: value.req_index("duration_days")? as usize,
            },
            "storage_fade" => FaultSpec::StorageFade {
                capacity_factor: value.req_num("capacity_factor")?,
            },
            "sensor_dropout" => FaultSpec::SensorDropout {
                rate: value.req_num("rate")?,
            },
            "trace_gap" => FaultSpec::TraceGap {
                gaps_per_100_days: value.req_num("gaps_per_100_days")?,
                mean_slots: value.req_num("mean_slots")?,
            },
            "climate_dimming" => FaultSpec::ClimateDimming {
                start_day: value.req_index("start_day")? as usize,
                duration_days: value.req_index("duration_days")? as usize,
                factor: value.req_num("factor")?,
            },
            "panel_soiling" => FaultSpec::PanelSoiling {
                start_day: value.req_index("start_day")? as usize,
                duration_days: value.req_index("duration_days")? as usize,
                max_loss: value.req_num("max_loss")?,
            },
            other => return Err(format!("unknown fault kind {other:?}")),
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// Combined storage-capacity factor of a fault list (fades multiply).
pub fn storage_capacity_factor(faults: &[FaultSpec]) -> f64 {
    faults
        .iter()
        .map(|f| match *f {
            FaultSpec::StorageFade { capacity_factor } => capacity_factor,
            _ => 1.0,
        })
        .product()
}

/// The runtime realization of a scenario's fault list: a
/// [`SlotHook`] driving outages, gaps, and dropouts.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    /// Day ranges `[start, end)` with zero harvest.
    outage_days: Vec<(usize, usize)>,
    /// Absolute slot ranges `[start, end)` with zero harvest and zero
    /// measurement.
    gap_slots: Vec<(usize, usize)>,
    /// Day ranges `[start, end)` where harvest and measurement scale by
    /// a factor (dimming factors of overlapping spans multiply).
    dimming_days: Vec<(usize, usize, f64)>,
    /// Soiling ramps `(start, end, max_loss)` scaling harvest only.
    soiling_days: Vec<(usize, usize, f64)>,
    /// Per-slot measurement dropout probability (probabilities of
    /// multiple dropout faults combine as independent events).
    dropout_rate: f64,
    slots_per_day: usize,
    rng: ChaCha8Rng,
}

impl FaultInjector {
    /// Realizes `faults` over a `days × slots_per_day` horizon, with all
    /// randomness derived from `seed`.
    pub fn new(faults: &[FaultSpec], seed: u64, days: usize, slots_per_day: usize) -> Self {
        let mut placement_rng = ChaCha8Rng::seed_from_u64(seed ^ 0x6761_7073); // "gaps"
        let total_slots = days * slots_per_day;
        let mut outage_days = Vec::new();
        let mut gap_slots = Vec::new();
        let mut dimming_days = Vec::new();
        let mut soiling_days = Vec::new();
        let mut keep_rate = 1.0; // probability a sample survives all dropout faults
        for fault in faults {
            match *fault {
                FaultSpec::PanelOutage {
                    start_day,
                    duration_days,
                } => outage_days.push((start_day, start_day.saturating_add(duration_days))),
                FaultSpec::StorageFade { .. } => {} // applied to hardware, not slots
                FaultSpec::ClimateDimming {
                    start_day,
                    duration_days,
                    factor,
                } => {
                    dimming_days.push((start_day, start_day.saturating_add(duration_days), factor))
                }
                FaultSpec::PanelSoiling {
                    start_day,
                    duration_days,
                    max_loss,
                } => soiling_days.push((
                    start_day,
                    start_day.saturating_add(duration_days),
                    max_loss,
                )),
                FaultSpec::SensorDropout { rate } => keep_rate *= 1.0 - rate,
                FaultSpec::TraceGap {
                    gaps_per_100_days,
                    mean_slots,
                } => {
                    let expected = gaps_per_100_days * days as f64 / 100.0;
                    let count = solar_synth::sampling::poisson(expected, &mut placement_rng);
                    for _ in 0..count {
                        let start = (placement_rng.gen::<f64>() * total_slots as f64) as usize;
                        let len = (-mean_slots * placement_rng.gen::<f64>().max(1e-12).ln())
                            .ceil()
                            .max(1.0) as usize;
                        gap_slots.push((start, (start + len).min(total_slots)));
                    }
                }
            }
        }
        gap_slots.sort_unstable();
        FaultInjector {
            outage_days,
            gap_slots,
            dimming_days,
            soiling_days,
            dropout_rate: 1.0 - keep_rate,
            slots_per_day,
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x6472_6f70), // "drop"
        }
    }

    /// The realized gap spans (absolute slot ranges), for diagnostics.
    pub fn gap_slots(&self) -> &[(usize, usize)] {
        &self.gap_slots
    }

    /// The sky's brightness factor on `day`: the product of every
    /// active [`FaultSpec::ClimateDimming`] span (1.0 outside them).
    /// Dimming is *physical sky state* — the engine scales the
    /// metrics-pass ground-truth references by this factor so accuracy
    /// is judged against the sky that actually existed, not the
    /// counterfactual clean one. Sensor faults and panel soiling do
    /// not contribute: they corrupt observation or harvest, not truth.
    pub fn sky_factor(&self, day: usize) -> f64 {
        let mut factor = 1.0;
        for &(start, end, f) in &self.dimming_days {
            if (start..end).contains(&day) {
                factor *= f;
            }
        }
        factor
    }

    /// The harvest fraction a soiling ramp leaves at `day`: loss ramps
    /// linearly from 0 at `start` to `max_loss` at `end`, then the panel
    /// is cleaned.
    fn soiling_factor(day: usize, start: usize, end: usize, max_loss: f64) -> f64 {
        if !(start..end).contains(&day) {
            return 1.0;
        }
        let span = (end - start) as f64;
        let progress = (day - start + 1) as f64 / span;
        1.0 - max_loss * progress
    }
}

impl SlotHook for FaultInjector {
    fn on_slot(&mut self, day: usize, slot: usize, harvest_j: &mut f64, measured: &mut f64) {
        // Unconditional draw: keeps the RNG stream aligned between the
        // metrics pass and the simulation pass of the same job.
        let dropout_draw: f64 = self.rng.gen();
        if self
            .outage_days
            .iter()
            .any(|&(start, end)| (start..end).contains(&day))
        {
            *harvest_j = 0.0;
        }
        let abs_slot = day * self.slots_per_day + slot;
        if self
            .gap_slots
            .iter()
            .any(|&(start, end)| (start..end).contains(&abs_slot))
        {
            *harvest_j = 0.0;
            *measured = 0.0;
        }
        for &(start, end, factor) in &self.dimming_days {
            if (start..end).contains(&day) {
                *harvest_j *= factor;
                *measured *= factor;
            }
        }
        for &(start, end, max_loss) in &self.soiling_days {
            *harvest_j *= Self::soiling_factor(day, start, end, max_loss);
        }
        if self.dropout_rate > 0.0 && dropout_draw < self.dropout_rate {
            *measured = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(FaultSpec::PanelOutage {
            start_day: 0,
            duration_days: 0
        }
        .validate()
        .is_err());
        assert!(FaultSpec::StorageFade {
            capacity_factor: 0.0
        }
        .validate()
        .is_err());
        assert!(FaultSpec::SensorDropout { rate: 1.5 }.validate().is_err());
        assert!(FaultSpec::TraceGap {
            gaps_per_100_days: -1.0,
            mean_slots: 4.0
        }
        .validate()
        .is_err());
        assert!(FaultSpec::TraceGap {
            gaps_per_100_days: 1.0,
            mean_slots: 0.5
        }
        .validate()
        .is_err());
        assert!(FaultSpec::ClimateDimming {
            start_day: 0,
            duration_days: 0,
            factor: 0.8
        }
        .validate()
        .is_err());
        assert!(FaultSpec::ClimateDimming {
            start_day: 0,
            duration_days: 10,
            factor: 1.5
        }
        .validate()
        .is_err());
        assert!(FaultSpec::PanelSoiling {
            start_day: 0,
            duration_days: 10,
            max_loss: 0.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn measured_corruption_is_independent_of_the_harvest_argument() {
        // The single-pass engine realizes one corruption per slot and
        // shares the corrupted `measured` between the metrics pass
        // (which historically passed a dummy zero harvest) and the
        // simulation pass (which passes the physical harvest). That is
        // sound only while no fault's measured-mutation *reads* the
        // harvest argument — this test pins the invariant for every
        // fault kind at once. Extending `FaultInjector::on_slot` with a
        // measured-mutation that depends on harvest requires giving the
        // engine's pass halves separate injectors again.
        let faults = vec![
            FaultSpec::PanelOutage {
                start_day: 1,
                duration_days: 3,
            },
            FaultSpec::SensorDropout { rate: 0.4 },
            FaultSpec::TraceGap {
                gaps_per_100_days: 40.0,
                mean_slots: 6.0,
            },
            FaultSpec::ClimateDimming {
                start_day: 2,
                duration_days: 5,
                factor: 0.6,
            },
            FaultSpec::PanelSoiling {
                start_day: 0,
                duration_days: 8,
                max_loss: 0.5,
            },
            FaultSpec::StorageFade {
                capacity_factor: 0.5,
            },
        ];
        let (days, n) = (10usize, 24usize);
        let mut with_zero_harvest = FaultInjector::new(&faults, 99, days, n);
        let mut with_real_harvest = FaultInjector::new(&faults, 99, days, n);
        for day in 0..days {
            for slot in 0..n {
                let sample = (day * n + slot) as f64 * 3.5;
                let mut harvest_a = 0.0;
                let mut measured_a = sample;
                with_zero_harvest.on_slot(day, slot, &mut harvest_a, &mut measured_a);
                let mut harvest_b = 1.0e6 + slot as f64;
                let mut measured_b = sample;
                with_real_harvest.on_slot(day, slot, &mut harvest_b, &mut measured_b);
                assert_eq!(
                    measured_a.to_bits(),
                    measured_b.to_bits(),
                    "day {day} slot {slot}: measured depends on harvest"
                );
            }
        }
    }

    #[test]
    fn sky_factor_is_the_dimming_product_and_ignores_other_faults() {
        let faults = [
            FaultSpec::ClimateDimming {
                start_day: 2,
                duration_days: 4,
                factor: 0.5,
            },
            FaultSpec::ClimateDimming {
                start_day: 4,
                duration_days: 2,
                factor: 0.8,
            },
            FaultSpec::PanelSoiling {
                start_day: 0,
                duration_days: 10,
                max_loss: 0.9,
            },
            FaultSpec::SensorDropout { rate: 0.5 },
        ];
        let injector = FaultInjector::new(&faults, 1, 10, 24);
        assert_eq!(injector.sky_factor(0), 1.0);
        assert_eq!(injector.sky_factor(2), 0.5);
        assert!((injector.sky_factor(4) - 0.4).abs() < 1e-12);
        assert_eq!(injector.sky_factor(6), 1.0);
    }

    #[test]
    fn dimming_scales_both_harvest_and_measurement() {
        let faults = [FaultSpec::ClimateDimming {
            start_day: 2,
            duration_days: 3,
            factor: 0.5,
        }];
        let mut injector = FaultInjector::new(&faults, 1, 10, 24);
        let (mut h, mut m) = (10.0, 600.0);
        injector.on_slot(3, 0, &mut h, &mut m);
        assert_eq!((h, m), (5.0, 300.0));
        let (mut h, mut m) = (10.0, 600.0);
        injector.on_slot(6, 0, &mut h, &mut m);
        assert_eq!((h, m), (10.0, 600.0));
    }

    #[test]
    fn soiling_ramps_harvest_only_then_cleans() {
        let faults = [FaultSpec::PanelSoiling {
            start_day: 0,
            duration_days: 10,
            max_loss: 0.5,
        }];
        let mut injector = FaultInjector::new(&faults, 1, 20, 24);
        // Day 9 is fully soiled: loss = max_loss.
        let (mut h, mut m) = (10.0, 600.0);
        injector.on_slot(9, 0, &mut h, &mut m);
        assert!((h - 5.0).abs() < 1e-12, "h {h}");
        assert_eq!(m, 600.0, "sensor stays clean");
        // Day 4 is half-way: loss = 0.25.
        let (mut h, mut m) = (10.0, 600.0);
        injector.on_slot(4, 0, &mut h, &mut m);
        assert!((h - 7.5).abs() < 1e-12, "h {h}");
        let _ = m;
        // Day 10: cleaned.
        let (mut h, mut m) = (10.0, 600.0);
        injector.on_slot(10, 0, &mut h, &mut m);
        assert_eq!(h, 10.0);
        let _ = m;
    }

    #[test]
    fn json_round_trips_every_kind() {
        let specs = [
            FaultSpec::PanelOutage {
                start_day: 25,
                duration_days: 5,
            },
            FaultSpec::StorageFade {
                capacity_factor: 0.5,
            },
            FaultSpec::SensorDropout { rate: 0.05 },
            FaultSpec::TraceGap {
                gaps_per_100_days: 3.0,
                mean_slots: 4.0,
            },
            FaultSpec::ClimateDimming {
                start_day: 365,
                duration_days: 365,
                factor: 0.82,
            },
            FaultSpec::PanelSoiling {
                start_day: 30,
                duration_days: 60,
                max_loss: 0.4,
            },
        ];
        for spec in specs {
            let back = FaultSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(back, spec);
        }
        assert!(FaultSpec::from_json(&Json::obj([("kind", Json::Str("meteor".into()))])).is_err());
    }

    #[test]
    fn outage_zeroes_harvest_not_measurement() {
        let faults = [FaultSpec::PanelOutage {
            start_day: 2,
            duration_days: 1,
        }];
        let mut injector = FaultInjector::new(&faults, 1, 5, 24);
        let mut harvest = 10.0;
        let mut measured = 700.0;
        injector.on_slot(2, 5, &mut harvest, &mut measured);
        assert_eq!(harvest, 0.0);
        assert_eq!(measured, 700.0);
        let mut harvest = 10.0;
        injector.on_slot(3, 5, &mut harvest, &mut measured);
        assert_eq!(harvest, 10.0);
    }

    #[test]
    fn injectors_with_equal_seeds_realize_identical_faults() {
        let faults = [
            FaultSpec::SensorDropout { rate: 0.2 },
            FaultSpec::TraceGap {
                gaps_per_100_days: 50.0,
                mean_slots: 6.0,
            },
        ];
        let mut a = FaultInjector::new(&faults, 99, 30, 48);
        let mut b = FaultInjector::new(&faults, 99, 30, 48);
        assert_eq!(a.gap_slots(), b.gap_slots());
        for day in 0..30 {
            for slot in 0..48 {
                let (mut ha, mut ma) = (5.0, 400.0);
                let (mut hb, mut mb) = (5.0, 400.0);
                a.on_slot(day, slot, &mut ha, &mut ma);
                b.on_slot(day, slot, &mut hb, &mut mb);
                assert_eq!((ha, ma), (hb, mb));
            }
        }
    }

    #[test]
    fn dropout_rate_is_roughly_respected() {
        let faults = [FaultSpec::SensorDropout { rate: 0.25 }];
        let mut injector = FaultInjector::new(&faults, 7, 100, 48);
        let mut dropped = 0;
        let total = 100 * 48;
        for day in 0..100 {
            for slot in 0..48 {
                let mut h = 1.0;
                let mut m = 500.0;
                injector.on_slot(day, slot, &mut h, &mut m);
                if m == 0.0 {
                    dropped += 1;
                }
            }
        }
        let rate = dropped as f64 / total as f64;
        assert!((rate - 0.25).abs() < 0.03, "observed dropout {rate}");
    }

    #[test]
    fn fade_factors_multiply() {
        let faults = [
            FaultSpec::StorageFade {
                capacity_factor: 0.5,
            },
            FaultSpec::StorageFade {
                capacity_factor: 0.8,
            },
            FaultSpec::SensorDropout { rate: 0.1 },
        ];
        assert!((storage_capacity_factor(&faults) - 0.4).abs() < 1e-12);
        assert_eq!(storage_capacity_factor(&[]), 1.0);
    }
}
