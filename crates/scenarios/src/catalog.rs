//! The scenario catalog: named, serializable evaluation worlds.
//!
//! A [`Scenario`] composes three orthogonal axes — *where* the node
//! lives ([`SiteSpec`]: a paper site preset or a custom latitude ×
//! climate), *what* the node is ([`NodeProfile`]: hardware tiers from a
//! coin-cell mote to a mains-class gateway), and *what goes wrong*
//! ([`FaultSpec`] perturbations) — plus the evaluation horizon. The
//! built-in [`Catalog`] spans the regimes the DATE'10 paper never
//! reached: polar night, monsoon onset, hardware faults.

use crate::faults::FaultSpec;
use crate::fleet_faults::{FalloffProfile, FleetFault, SpatialFalloff};
use crate::json::Json;
use harvest_sim::{EnergyStorage, Load, NodeConfig, SolarPanel};
use solar_synth::{Site, SiteConfig, SiteConfigBuilder, StreamVersion, WeatherModel};
use solar_trace::Resolution;

/// Climate family for custom sites.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Climate {
    /// Stable desert ([`WeatherModel::desert`]).
    Desert,
    /// Continental/temperate ([`WeatherModel::temperate`]).
    Temperate,
    /// Marine/foggy coast ([`WeatherModel::marine`]).
    Marine,
    /// Wet/dry subtropical ([`WeatherModel::monsoon`]).
    Monsoon,
    /// High-latitude maritime ([`WeatherModel::arctic`]).
    Arctic,
}

impl Climate {
    /// All climates.
    pub const ALL: [Climate; 5] = [
        Climate::Desert,
        Climate::Temperate,
        Climate::Marine,
        Climate::Monsoon,
        Climate::Arctic,
    ];

    /// The weather model of this climate.
    pub fn weather(self) -> WeatherModel {
        match self {
            Climate::Desert => WeatherModel::desert(),
            Climate::Temperate => WeatherModel::temperate(),
            Climate::Marine => WeatherModel::marine(),
            Climate::Monsoon => WeatherModel::monsoon(),
            Climate::Arctic => WeatherModel::arctic(),
        }
    }

    /// Stable identifier used in JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Climate::Desert => "desert",
            Climate::Temperate => "temperate",
            Climate::Marine => "marine",
            Climate::Monsoon => "monsoon",
            Climate::Arctic => "arctic",
        }
    }

    /// Parses the JSON identifier.
    pub fn from_code(s: &str) -> Result<Climate, String> {
        Climate::ALL
            .into_iter()
            .find(|c| c.as_str() == s)
            .ok_or_else(|| format!("unknown climate {s:?}"))
    }
}

/// Where a scenario's node lives.
#[derive(Clone, Debug, PartialEq)]
pub enum SiteSpec {
    /// One of the six DATE'10 measurement sites.
    Paper(Site),
    /// A custom site assembled from latitude, resolution, and climate.
    Custom {
        /// Geographic latitude in degrees (north positive).
        latitude_deg: f64,
        /// Sample period in minutes (must divide a day).
        resolution_minutes: u32,
        /// Climate family.
        climate: Climate,
    },
    /// A custom site with continuous weather-shaping axes — the form
    /// the parameterized catalog generators emit. Extends
    /// [`SiteSpec::Custom`] with a cloudiness tilt on the climate's
    /// weather model and a deterministic clear-sky turbidity loss, so
    /// hundreds of distinct regimes fit between two climate presets.
    Shaped {
        /// Geographic latitude in degrees (north positive).
        latitude_deg: f64,
        /// Sample period in minutes (must divide a day).
        resolution_minutes: u32,
        /// Climate family.
        climate: Climate,
        /// Weather tilt in `[1/8, 8]`: `1.0` = the climate preset,
        /// `> 1` cloudier, `< 1` clearer.
        cloudiness: f64,
        /// Clear-sky fraction removed by haze, in `[0, 0.8]`.
        turbidity: f64,
        /// RNG stream version of the generated trace. V1 (the
        /// default) is the original scalar draw order; V2 is the
        /// lane-batched order. Serialized as `"stream": 2` only when
        /// V2, so existing catalogs stay byte-identical.
        stream_version: StreamVersion,
    },
}

impl SiteSpec {
    /// Builds the generator configuration; `name` seeds the custom
    /// site's RNG stream.
    pub fn config(&self, name: &str) -> Result<SiteConfig, String> {
        match *self {
            SiteSpec::Paper(site) => Ok(site.config()),
            SiteSpec::Custom {
                latitude_deg,
                resolution_minutes,
                climate,
            } => SiteConfigBuilder::new(name)
                .latitude_deg(latitude_deg)
                .resolution(
                    Resolution::from_minutes(resolution_minutes).map_err(|e| e.to_string())?,
                )
                .weather(climate.weather())
                .build(),
            SiteSpec::Shaped {
                latitude_deg,
                resolution_minutes,
                climate,
                cloudiness,
                turbidity,
                stream_version,
            } => SiteConfigBuilder::new(name)
                .latitude_deg(latitude_deg)
                .resolution(
                    Resolution::from_minutes(resolution_minutes).map_err(|e| e.to_string())?,
                )
                .weather(climate.weather())
                .cloudiness(cloudiness)
                .turbidity(turbidity)
                .stream_version(stream_version)
                .build(),
        }
    }

    fn to_json(&self) -> Json {
        match *self {
            SiteSpec::Paper(site) => Json::obj([("preset", Json::Str(site.code().into()))]),
            SiteSpec::Custom {
                latitude_deg,
                resolution_minutes,
                climate,
            } => Json::obj([
                ("latitude_deg", Json::Num(latitude_deg)),
                ("resolution_minutes", Json::Num(resolution_minutes as f64)),
                ("climate", Json::Str(climate.as_str().into())),
            ]),
            SiteSpec::Shaped {
                latitude_deg,
                resolution_minutes,
                climate,
                cloudiness,
                turbidity,
                stream_version,
            } => {
                let mut fields = vec![
                    ("latitude_deg", Json::Num(latitude_deg)),
                    ("resolution_minutes", Json::Num(resolution_minutes as f64)),
                    ("climate", Json::Str(climate.as_str().into())),
                    ("cloudiness", Json::Num(cloudiness)),
                    ("turbidity", Json::Num(turbidity)),
                ];
                // V1 stays implicit so pre-version catalogs round-trip
                // byte-exactly.
                if stream_version == StreamVersion::V2 {
                    fields.push(("stream", Json::Num(2.0)));
                }
                Json::obj(fields)
            }
        }
    }

    fn from_json(value: &Json) -> Result<SiteSpec, String> {
        if let Some(preset) = value.get("preset") {
            let code = preset.as_str().ok_or("site preset must be a string")?;
            let site = Site::ALL
                .into_iter()
                .find(|s| s.code() == code)
                .ok_or_else(|| format!("unknown site preset {code:?}"))?;
            return Ok(SiteSpec::Paper(site));
        }
        let latitude_deg = value.req_num("latitude_deg")?;
        let resolution_minutes =
            u32::try_from(value.req_index("resolution_minutes")?).map_err(|e| e.to_string())?;
        let climate = Climate::from_code(value.req_str("climate")?)?;
        // The shaping axes travel together: a site carrying either is
        // the generated form and must round-trip byte-exactly.
        if value.get("cloudiness").is_some() || value.get("turbidity").is_some() {
            let stream_version = match value.get("stream") {
                None => StreamVersion::V1,
                Some(v) => match v.as_num().map(|n| n as i64) {
                    Some(1) => StreamVersion::V1,
                    Some(2) => StreamVersion::V2,
                    _ => return Err(format!("unknown stream version {v:?}")),
                },
            };
            return Ok(SiteSpec::Shaped {
                latitude_deg,
                resolution_minutes,
                climate,
                cloudiness: value.req_num("cloudiness")?,
                turbidity: value.req_num("turbidity")?,
                stream_version,
            });
        }
        Ok(SiteSpec::Custom {
            latitude_deg,
            resolution_minutes,
            climate,
        })
    }
}

/// Node hardware tier.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeProfile {
    /// Coin-cell-class sensing mote: 4 cm² panel, 60 J store, 5 mW
    /// active.
    TinyMote,
    /// The workhorse mote of the paper's framing: 100 cm² panel, 2 kJ
    /// supercap bank with realistic losses, 50 mW active.
    Mote,
    /// A mains-class gateway/edge node: 0.1 m² panel, 50 kJ battery,
    /// 1.2 W active.
    Gateway,
    /// Explicit hardware.
    Custom {
        /// Panel area in m².
        panel_m2: f64,
        /// Panel conversion efficiency in `(0, 1]`.
        panel_efficiency: f64,
        /// Storage capacity in joules.
        capacity_j: f64,
        /// Initial state of charge in `[0, 1]`.
        initial_soc: f64,
        /// Charge efficiency in `(0, 1]`.
        charge_efficiency: f64,
        /// Discharge efficiency in `(0, 1]`.
        discharge_efficiency: f64,
        /// Storage leakage in watts.
        leakage_w: f64,
        /// Load active power in watts.
        active_w: f64,
        /// Load sleep power in watts.
        sleep_w: f64,
    },
}

impl NodeProfile {
    /// Stable identifier used in JSON and reports.
    pub fn name(&self) -> &'static str {
        match self {
            NodeProfile::TinyMote => "tiny-mote",
            NodeProfile::Mote => "mote",
            NodeProfile::Gateway => "gateway",
            NodeProfile::Custom { .. } => "custom",
        }
    }

    /// Builds the simulator hardware; `capacity_factor` applies storage
    /// fade (1.0 = nameplate).
    pub fn node_config(&self, capacity_factor: f64) -> Result<NodeConfig, String> {
        let build = |panel_m2: f64,
                     panel_eff: f64,
                     capacity_j: f64,
                     initial_soc: f64,
                     charge_eff: f64,
                     discharge_eff: f64,
                     leakage_w: f64,
                     active_w: f64,
                     sleep_w: f64|
         -> Result<NodeConfig, String> {
            let capacity = capacity_j * capacity_factor;
            Ok(NodeConfig {
                panel: SolarPanel::new(panel_m2, panel_eff).map_err(|e| e.to_string())?,
                storage: EnergyStorage::with_losses(
                    capacity,
                    capacity * initial_soc,
                    charge_eff,
                    discharge_eff,
                    leakage_w,
                )
                .map_err(|e| e.to_string())?,
                load: Load::new(active_w, sleep_w).map_err(|e| e.to_string())?,
            })
        };
        match *self {
            NodeProfile::TinyMote => {
                build(0.0004, 0.15, 60.0, 0.5, 0.95, 0.95, 0.00002, 0.005, 0.00002)
            }
            NodeProfile::Mote => build(0.01, 0.15, 2000.0, 0.5, 0.9, 0.9, 0.001, 0.05, 0.0005),
            NodeProfile::Gateway => build(0.1, 0.18, 50_000.0, 0.5, 0.92, 0.92, 0.01, 1.2, 0.02),
            NodeProfile::Custom {
                panel_m2,
                panel_efficiency,
                capacity_j,
                initial_soc,
                charge_efficiency,
                discharge_efficiency,
                leakage_w,
                active_w,
                sleep_w,
            } => build(
                panel_m2,
                panel_efficiency,
                capacity_j,
                initial_soc,
                charge_efficiency,
                discharge_efficiency,
                leakage_w,
                active_w,
                sleep_w,
            ),
        }
    }

    fn to_json(&self) -> Json {
        match *self {
            NodeProfile::Custom {
                panel_m2,
                panel_efficiency,
                capacity_j,
                initial_soc,
                charge_efficiency,
                discharge_efficiency,
                leakage_w,
                active_w,
                sleep_w,
            } => Json::obj([
                ("profile", Json::Str("custom".into())),
                ("panel_m2", Json::Num(panel_m2)),
                ("panel_efficiency", Json::Num(panel_efficiency)),
                ("capacity_j", Json::Num(capacity_j)),
                ("initial_soc", Json::Num(initial_soc)),
                ("charge_efficiency", Json::Num(charge_efficiency)),
                ("discharge_efficiency", Json::Num(discharge_efficiency)),
                ("leakage_w", Json::Num(leakage_w)),
                ("active_w", Json::Num(active_w)),
                ("sleep_w", Json::Num(sleep_w)),
            ]),
            _ => Json::obj([("profile", Json::Str(self.name().into()))]),
        }
    }

    fn from_json(value: &Json) -> Result<NodeProfile, String> {
        match value.req_str("profile")? {
            "tiny-mote" => Ok(NodeProfile::TinyMote),
            "mote" => Ok(NodeProfile::Mote),
            "gateway" => Ok(NodeProfile::Gateway),
            "custom" => Ok(NodeProfile::Custom {
                panel_m2: value.req_num("panel_m2")?,
                panel_efficiency: value.req_num("panel_efficiency")?,
                capacity_j: value.req_num("capacity_j")?,
                initial_soc: value.req_num("initial_soc")?,
                charge_efficiency: value.req_num("charge_efficiency")?,
                discharge_efficiency: value.req_num("discharge_efficiency")?,
                leakage_w: value.req_num("leakage_w")?,
                active_w: value.req_num("active_w")?,
                sleep_w: value.req_num("sleep_w")?,
            }),
            other => Err(format!("unknown node profile {other:?}")),
        }
    }
}

/// One named evaluation world.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Unique catalog key (kebab-case).
    pub name: String,
    /// One-line human description.
    pub summary: String,
    /// Where the node lives.
    pub site: SiteSpec,
    /// Evaluation horizon in days.
    pub days: usize,
    /// Prediction discretization `N`.
    pub slots_per_day: u32,
    /// Node hardware tier.
    pub node: NodeProfile,
    /// Fault/perturbation list (may be empty).
    pub faults: Vec<FaultSpec>,
}

impl Scenario {
    /// Validates the scenario: buildable site, valid faults, and a
    /// horizon long enough for the paper's 20-day warm-up to leave
    /// evaluation points.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("scenario name must be non-empty".to_string());
        }
        if self.days < 25 {
            return Err(format!(
                "scenario {:?}: days {} leaves no room after the 20-day warm-up",
                self.name, self.days
            ));
        }
        let config = self.site.config(&self.name)?;
        let samples_per_day = config.resolution.samples_per_day();
        if self.slots_per_day == 0 || samples_per_day % self.slots_per_day as usize != 0 {
            return Err(format!(
                "scenario {:?}: N={} does not divide {} samples/day",
                self.name, self.slots_per_day, samples_per_day
            ));
        }
        for fault in &self.faults {
            fault
                .validate()
                .map_err(|e| format!("scenario {:?}: {e}", self.name))?;
            if let FaultSpec::PanelOutage { start_day, .. }
            | FaultSpec::ClimateDimming { start_day, .. }
            | FaultSpec::PanelSoiling { start_day, .. } = fault
            {
                if *start_day >= self.days {
                    return Err(format!(
                        "scenario {:?}: day-ranged fault starts at day {start_day}, \
                         past the {}-day horizon (it would silently never fire)",
                        self.name, self.days
                    ));
                }
            }
        }
        self.node.node_config(1.0)?;
        Ok(())
    }

    /// The generator configuration for this scenario.
    pub fn site_config(&self) -> Result<SiteConfig, String> {
        self.site.config(&self.name)
    }

    /// JSON form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("summary", Json::Str(self.summary.clone())),
            ("site", self.site.to_json()),
            ("days", Json::Num(self.days as f64)),
            ("slots_per_day", Json::Num(self.slots_per_day as f64)),
            ("node", self.node.to_json()),
            (
                "faults",
                Json::Arr(self.faults.iter().map(FaultSpec::to_json).collect()),
            ),
        ])
    }

    /// Parses and validates the JSON form.
    pub fn from_json(value: &Json) -> Result<Scenario, String> {
        let faults = value
            .req("faults")?
            .as_arr()
            .ok_or("faults must be an array")?
            .iter()
            .map(FaultSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let scenario = Scenario {
            name: value.req_str("name")?.to_string(),
            summary: value.req_str("summary")?.to_string(),
            site: SiteSpec::from_json(value.req("site")?)?,
            days: value.req_index("days")? as usize,
            slots_per_day: u32::try_from(value.req_index("slots_per_day")?)
                .map_err(|e| e.to_string())?,
            node: NodeProfile::from_json(value.req("node")?)?,
            faults,
        };
        scenario.validate()?;
        Ok(scenario)
    }

    /// Parses a scenario from JSON text.
    pub fn from_json_str(text: &str) -> Result<Scenario, String> {
        Scenario::from_json(&Json::parse(text)?)
    }
}

/// A named collection of scenarios.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    scenarios: Vec<Scenario>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// The built-in catalog: thirteen regimes spanning geography (both
    /// hemispheres and the equator), climate, hardware tier, fault
    /// mode, and horizon — including multi-year entries (a two-year
    /// temperate run and a three-year monsoon run with a la-niña-style
    /// year-over-year anomaly) sized for the engine's streamed path.
    /// Every entry validates; a unit test enforces it stays that way.
    pub fn builtin() -> Self {
        let mut catalog = Catalog::new();
        let entries = vec![
            Scenario {
                name: "desert-clear-sky".into(),
                summary: "Phoenix-like desert, the paper's easiest regime".into(),
                site: SiteSpec::Paper(Site::Pfci),
                days: 40,
                slots_per_day: 48,
                node: NodeProfile::Mote,
                faults: vec![],
            },
            Scenario {
                name: "marine-fog".into(),
                summary: "Foggy Pacific coast, persistent morning attenuation".into(),
                site: SiteSpec::Paper(Site::Hsu),
                days: 45,
                slots_per_day: 48,
                node: NodeProfile::Mote,
                faults: vec![],
            },
            Scenario {
                name: "continental-storms".into(),
                summary: "Oak-Ridge-like broken-cloud churn on a gateway node".into(),
                site: SiteSpec::Paper(Site::Ornl),
                days: 40,
                slots_per_day: 96,
                node: NodeProfile::Gateway,
                faults: vec![],
            },
            Scenario {
                name: "four-seasons".into(),
                summary: "Mid-latitude continental site through winter into spring".into(),
                site: SiteSpec::Custom {
                    latitude_deg: 45.0,
                    resolution_minutes: 5,
                    climate: Climate::Temperate,
                },
                days: 150,
                slots_per_day: 48,
                node: NodeProfile::Mote,
                faults: vec![],
            },
            Scenario {
                name: "monsoon-plateau".into(),
                summary: "Subtropical wet/dry year: clear winter, monsoon summer".into(),
                site: SiteSpec::Custom {
                    latitude_deg: 20.0,
                    resolution_minutes: 5,
                    climate: Climate::Monsoon,
                },
                days: 365,
                slots_per_day: 48,
                node: NodeProfile::Mote,
                faults: vec![],
            },
            Scenario {
                name: "southern-four-seasons".into(),
                summary: "Patagonian mid-latitude site: seasons phase-inverted vs the north".into(),
                site: SiteSpec::Custom {
                    latitude_deg: -43.0,
                    resolution_minutes: 5,
                    climate: Climate::Temperate,
                },
                days: 150,
                slots_per_day: 48,
                node: NodeProfile::Mote,
                faults: vec![],
            },
            Scenario {
                name: "equatorial-rainband".into(),
                summary: "Near-equator site: flat day length, afternoon convective storms".into(),
                site: SiteSpec::Custom {
                    latitude_deg: 1.5,
                    resolution_minutes: 5,
                    climate: Climate::Monsoon,
                },
                days: 90,
                slots_per_day: 48,
                node: NodeProfile::TinyMote,
                faults: vec![],
            },
            Scenario {
                name: "biennial-temperate".into(),
                summary: "Two full years at a mid-latitude continental site — the \
                          multi-year horizon the streamed engine path evaluates \
                          without materializing the trace"
                    .into(),
                site: SiteSpec::Custom {
                    latitude_deg: 45.0,
                    resolution_minutes: 5,
                    climate: Climate::Temperate,
                },
                days: 730,
                slots_per_day: 48,
                node: NodeProfile::Mote,
                faults: vec![],
            },
            Scenario {
                name: "la-nina-triennium".into(),
                summary: "Three monsoon years with a la-niña-style anomaly: the \
                          middle year runs 18% dimmer, so day-of-year history \
                          from year one misleads year two"
                    .into(),
                site: SiteSpec::Custom {
                    latitude_deg: -8.0,
                    resolution_minutes: 5,
                    climate: Climate::Monsoon,
                },
                days: 1095,
                slots_per_day: 48,
                node: NodeProfile::Mote,
                faults: vec![FaultSpec::ClimateDimming {
                    start_day: 365,
                    duration_days: 365,
                    factor: 0.82,
                }],
            },
            Scenario {
                name: "arctic-winter".into(),
                summary: "68°N polar night tail on a coin-cell mote".into(),
                site: SiteSpec::Custom {
                    latitude_deg: 68.0,
                    resolution_minutes: 5,
                    climate: Climate::Arctic,
                },
                days: 80,
                slots_per_day: 24,
                node: NodeProfile::TinyMote,
                faults: vec![],
            },
            Scenario {
                name: "dead-panel-outage".into(),
                summary: "Continental site with a five-day total panel outage".into(),
                site: SiteSpec::Paper(Site::Spmd),
                days: 40,
                slots_per_day: 48,
                node: NodeProfile::Mote,
                faults: vec![FaultSpec::PanelOutage {
                    start_day: 25,
                    duration_days: 5,
                }],
            },
            Scenario {
                name: "aging-node".into(),
                summary: "Humid subtropical site, faded storage and a flaky sensor".into(),
                site: SiteSpec::Paper(Site::Ecsu),
                days: 40,
                slots_per_day: 48,
                node: NodeProfile::Mote,
                faults: vec![
                    FaultSpec::StorageFade {
                        capacity_factor: 0.5,
                    },
                    FaultSpec::SensorDropout { rate: 0.02 },
                ],
            },
            Scenario {
                name: "gappy-telemetry-desert".into(),
                summary: "Las-Vegas-like desert with logger gaps and dropouts".into(),
                site: SiteSpec::Paper(Site::Npcs),
                days: 40,
                slots_per_day: 48,
                node: NodeProfile::Mote,
                faults: vec![
                    FaultSpec::TraceGap {
                        gaps_per_100_days: 12.0,
                        mean_slots: 6.0,
                    },
                    FaultSpec::SensorDropout { rate: 0.05 },
                ],
            },
        ];
        for scenario in entries {
            catalog
                .push(scenario)
                .expect("builtin catalog must validate");
        }
        catalog
    }

    /// The built-in correlated fleet-wide events: a mid-latitude storm
    /// belt (one shared onset darkens every 30–52°N scenario for the
    /// same six days, expressed as a flat-profile [`SpatialFalloff`]
    /// band) and a fleet-wide pollen season (every panel soils on the
    /// same ramp while pyranometers stay clean). Attach to a matrix
    /// with [`crate::FleetMatrix::with_fleet_faults`]; the engine
    /// realizes each event from one shared seed and projects it into
    /// every affected scenario — the correlation that independent
    /// per-scenario faults cannot express.
    pub fn builtin_fleet_events() -> Vec<FleetFault> {
        vec![
            FleetFault::RegionalStorm {
                window_start_day: 21,
                window_end_day: 35,
                duration_days: 6,
                depth: 0.75,
                region: SpatialFalloff::band(30.0, 52.0),
            },
            FleetFault::SeasonalSoiling {
                window_start_day: 25,
                window_end_day: 32,
                duration_days: 10,
                max_loss: 0.3,
                region: SpatialFalloff::global(),
            },
        ]
    }

    /// Graded variants of the built-in fleet events for spread-out
    /// generated fleets: the same storm/soiling energy, but severity
    /// decays with geodesic distance from an epicenter (cosine-tapered
    /// storm centred on the 41°N belt, linear soiling plume from the
    /// subtropics) instead of switching hard at a band edge — nearby
    /// scenarios are hit hardest, distant ones shrug.
    pub fn builtin_graded_fleet_events() -> Vec<FleetFault> {
        vec![
            FleetFault::RegionalStorm {
                window_start_day: 21,
                window_end_day: 35,
                duration_days: 6,
                depth: 0.75,
                region: SpatialFalloff::new(41.0, 2600.0, FalloffProfile::Cosine),
            },
            FleetFault::SeasonalSoiling {
                window_start_day: 25,
                window_end_day: 32,
                duration_days: 10,
                max_loss: 0.3,
                region: SpatialFalloff::new(28.0, 5500.0, FalloffProfile::Linear),
            },
        ]
    }

    /// Adds a scenario after validating it; names must be unique.
    pub fn push(&mut self, scenario: Scenario) -> Result<(), String> {
        scenario.validate()?;
        if self.get(&scenario.name).is_some() {
            return Err(format!("duplicate scenario name {:?}", scenario.name));
        }
        self.scenarios.push(scenario);
        Ok(())
    }

    /// Looks a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// All scenarios, in insertion order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Scenario names, in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.scenarios.iter().map(|s| s.name.as_str()).collect()
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_catalog_validates_and_is_diverse() {
        let catalog = Catalog::builtin();
        assert!(
            catalog.len() >= 6,
            "need ≥6 scenarios, got {}",
            catalog.len()
        );
        for scenario in catalog.scenarios() {
            scenario.validate().unwrap();
        }
        // At least one faulted, one custom-site, one southern-hemisphere,
        // one near-equator, and one non-Mote entry.
        assert!(catalog.scenarios().iter().any(|s| !s.faults.is_empty()));
        assert!(catalog.scenarios().iter().any(|s| matches!(
            s.site,
            SiteSpec::Custom { latitude_deg, .. } if latitude_deg < 0.0
        )));
        assert!(catalog.scenarios().iter().any(|s| matches!(
            s.site,
            SiteSpec::Custom { latitude_deg, .. } if latitude_deg.abs() < 10.0
        )));
        assert!(catalog
            .scenarios()
            .iter()
            .any(|s| matches!(s.site, SiteSpec::Custom { .. })));
        assert!(catalog
            .scenarios()
            .iter()
            .any(|s| s.node != NodeProfile::Mote));
        // Multi-year coverage: at least a 2-year and a 3-year horizon,
        // and one with a year-over-year climate anomaly.
        assert!(catalog.scenarios().iter().any(|s| s.days >= 730));
        assert!(catalog.scenarios().iter().any(|s| s.days >= 1095));
        assert!(catalog.scenarios().iter().any(|s| s.faults.iter().any(
            |f| matches!(f, FaultSpec::ClimateDimming { start_day, .. } if *start_day >= 365)
        )));
    }

    #[test]
    fn builtin_names_are_unique() {
        let catalog = Catalog::builtin();
        let mut names = catalog.names();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), catalog.len());
    }

    #[test]
    fn every_builtin_scenario_round_trips_through_json() {
        for scenario in Catalog::builtin().scenarios() {
            let text = scenario.to_json().render_pretty();
            let back = Scenario::from_json_str(&text).unwrap();
            assert_eq!(&back, scenario, "{}", scenario.name);
        }
    }

    #[test]
    fn validation_rejects_bad_scenarios() {
        let mut s = Catalog::builtin().get("desert-clear-sky").unwrap().clone();
        s.days = 10;
        assert!(s.validate().is_err());

        let mut s = Catalog::builtin().get("desert-clear-sky").unwrap().clone();
        s.slots_per_day = 7; // does not divide 1440
        assert!(s.validate().is_err());

        let mut s = Catalog::builtin().get("aging-node").unwrap().clone();
        s.faults.push(FaultSpec::SensorDropout { rate: 2.0 });
        assert!(s.validate().is_err());
    }

    #[test]
    fn catalog_rejects_duplicates() {
        let mut catalog = Catalog::builtin();
        let first = catalog.scenarios()[0].clone();
        assert!(catalog.push(first).is_err());
    }

    #[test]
    fn node_profiles_build_hardware() {
        for profile in [
            NodeProfile::TinyMote,
            NodeProfile::Mote,
            NodeProfile::Gateway,
        ] {
            let config = profile.node_config(1.0).unwrap();
            assert!(config.storage.capacity_j() > 0.0);
            let faded = profile.node_config(0.5).unwrap();
            assert!((faded.storage.capacity_j() - config.storage.capacity_j() * 0.5).abs() < 1e-9);
        }
        assert!(NodeProfile::Mote.node_config(0.0).is_err());
    }

    #[test]
    fn builtin_fleet_events_validate_and_touch_the_catalog() {
        let catalog = Catalog::builtin();
        for events in [
            Catalog::builtin_fleet_events(),
            Catalog::builtin_graded_fleet_events(),
        ] {
            assert!(!events.is_empty());
            for event in &events {
                event.validate().unwrap();
                assert!(
                    catalog
                        .scenarios()
                        .iter()
                        .any(|s| event.affects(s).unwrap()),
                    "{event:?} affects no builtin scenario"
                );
            }
        }
        // The graded storm really grades: mid-falloff severity sits
        // strictly between the epicentral value and zero.
        let graded_storm = &Catalog::builtin_graded_fleet_events()[0];
        let peak = graded_storm.severity_at(41.0);
        let edgeward = graded_storm.severity_at(55.0);
        assert!(peak > 0.0 && edgeward > 0.0 && edgeward < peak);
    }

    #[test]
    fn shaped_sites_build_and_round_trip() {
        let scenario = Scenario {
            name: "shaped-coast".into(),
            summary: "a hazier, cloudier marine coast".into(),
            site: SiteSpec::Shaped {
                latitude_deg: 38.5,
                resolution_minutes: 5,
                climate: Climate::Marine,
                cloudiness: 1.5,
                turbidity: 0.2,
                stream_version: StreamVersion::V1,
            },
            days: 40,
            slots_per_day: 48,
            node: NodeProfile::Mote,
            faults: vec![],
        };
        scenario.validate().unwrap();
        let config = scenario.site_config().unwrap();
        assert!((config.turbidity - 0.2).abs() < 1e-12);
        // JSON round-trips byte-exactly and re-parses to equality.
        let text = scenario.to_json().render_pretty();
        let back = Scenario::from_json_str(&text).unwrap();
        assert_eq!(back, scenario);
        assert_eq!(back.to_json().render_pretty(), text);
        // Out-of-range axes are rejected at validation.
        let mut bad = scenario.clone();
        if let SiteSpec::Shaped { cloudiness, .. } = &mut bad.site {
            *cloudiness = 20.0;
        }
        assert!(bad.validate().is_err());
    }

    #[test]
    fn custom_site_configs_build() {
        for climate in Climate::ALL {
            let spec = SiteSpec::Custom {
                latitude_deg: 35.0,
                resolution_minutes: 5,
                climate,
            };
            let config = spec.config("test-site").unwrap();
            assert_eq!(config.name, "test-site");
            assert_eq!(Climate::from_code(climate.as_str()).unwrap(), climate);
        }
        assert!(Climate::from_code("lunar").is_err());
    }
}
