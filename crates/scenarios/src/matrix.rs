//! The predictor × manager × scenario evaluation matrix.
//!
//! Specs are declarative (buildable, comparable, serialisable-by-label)
//! so a matrix can be expanded into jobs on any thread and each job can
//! construct its own fresh predictor/manager state — predictors are
//! stateful stream processors and must never be shared between runs.

use crate::catalog::Scenario;
use crate::fleet_faults::FleetFault;
use harvest_sim::{EnergyNeutralManager, FixedDutyManager, GreedyManager, PowerManager};
use param_explore::ParamGrid;
use solar_predict::{
    CausalDynamicWcma, EwmaPredictor, FixedWcmaPredictor, MovingAveragePredictor,
    PersistencePredictor, Predictor, WcmaParams, WcmaPredictor,
};

/// A buildable predictor configuration.
#[derive(Clone, Debug, PartialEq)]
pub enum PredictorSpec {
    /// The paper's WCMA at fixed (α, D, K).
    Wcma {
        /// Persistence weight α ∈ [0, 1].
        alpha: f64,
        /// History depth D (days).
        days: usize,
        /// Conditioning window K (slots).
        k: usize,
    },
    /// The Q16.16 fixed-point WCMA kernel at fixed (α, D, K) — what a
    /// deployed MCU runs; lets tuned integer parameters be ranked under
    /// faults next to the float kernel.
    WcmaQ16 {
        /// Persistence weight α ∈ [0, 1].
        alpha: f64,
        /// History depth D (days).
        days: usize,
        /// Conditioning window K (slots).
        k: usize,
    },
    /// The causal dynamic-(α, K) selector: scores every (α, K) candidate
    /// by discounted recent error and predicts with the current best.
    DynamicCausal {
        /// History depth D (days).
        days: usize,
        /// Candidates use `K = 1 ..= k_max`.
        k_max: usize,
        /// Candidate α values (all in [0, 1]).
        alphas: Vec<f64>,
        /// Per-slot error-score discount in `(0, 1)` — the selector's
        /// memory-length threshold.
        score_decay: f64,
        /// Time-of-day score buckets: `None` keeps the kernel's default
        /// (six, clamped to N); `Some(b)` pins an explicit count — 1
        /// collapses to a single global score table.
        buckets: Option<usize>,
    },
    /// The Kansal et al. EWMA baseline.
    Ewma {
        /// Smoothing factor γ ∈ [0, 1].
        gamma: f64,
    },
    /// Per-slot moving average over `days` days.
    MovingAverage {
        /// Window in days.
        days: usize,
    },
    /// Last-sample persistence.
    Persistence,
}

impl PredictorSpec {
    /// Short stable label for reports and JSON.
    ///
    /// Labels are **injective over specs** (every parameter appears):
    /// the incremental re-scoring cache keys job outcomes by label, so
    /// two distinct specs must never share one.
    pub fn label(&self) -> String {
        match self {
            PredictorSpec::Wcma { alpha, days, k } => {
                format!("wcma(a={alpha},D={days},K={k})")
            }
            PredictorSpec::WcmaQ16 { alpha, days, k } => {
                format!("wcma-q16(a={alpha},D={days},K={k})")
            }
            PredictorSpec::DynamicCausal {
                days,
                k_max,
                alphas,
                score_decay,
                buckets,
            } => {
                let alphas = alphas
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                // Default buckets keep the historical label so tuned
                // artifacts stay comparable across versions.
                let buckets = buckets.map(|b| format!(",b={b}")).unwrap_or_default();
                format!("dyn(D={days},Kmax={k_max},a=[{alphas}],decay={score_decay}{buckets})")
            }
            PredictorSpec::Ewma { gamma } => format!("ewma(g={gamma})"),
            PredictorSpec::MovingAverage { days } => format!("ma(D={days})"),
            PredictorSpec::Persistence => "persistence".to_string(),
        }
    }

    /// Number of candidate configurations the predictor weighs per slot
    /// — 1 for fixed predictors, `|α| · K_max` for the dynamic selector.
    /// Deterministic (spec-derived), so it may appear in byte-pinned
    /// scorecard JSON, unlike wall time.
    pub fn candidate_count(&self) -> usize {
        match self {
            PredictorSpec::DynamicCausal { k_max, alphas, .. } => alphas.len() * k_max,
            _ => 1,
        }
    }

    /// Builds a fresh predictor for discretization `n`.
    pub fn build(&self, n: usize) -> Result<Box<dyn Predictor>, String> {
        match self {
            &PredictorSpec::Wcma { alpha, days, k } => Ok(Box::new(WcmaPredictor::new(
                WcmaParams::new(alpha, days, k, n).map_err(|e| e.to_string())?,
            ))),
            &PredictorSpec::WcmaQ16 { alpha, days, k } => Ok(Box::new(FixedWcmaPredictor::new(
                WcmaParams::new(alpha, days, k, n).map_err(|e| e.to_string())?,
            ))),
            PredictorSpec::DynamicCausal {
                days,
                k_max,
                alphas,
                score_decay,
                buckets,
            } => Ok(Box::new(match buckets {
                None => CausalDynamicWcma::new(*days, *k_max, alphas.clone(), *score_decay, n)
                    .map_err(|e| e.to_string())?,
                Some(b) => CausalDynamicWcma::with_buckets(
                    *days,
                    *k_max,
                    alphas.clone(),
                    *score_decay,
                    n,
                    *b,
                )
                .map_err(|e| e.to_string())?,
            })),
            &PredictorSpec::Ewma { gamma } => Ok(Box::new(
                EwmaPredictor::new(gamma, n).map_err(|e| e.to_string())?,
            )),
            &PredictorSpec::MovingAverage { days } => Ok(Box::new(
                MovingAveragePredictor::new(days, n).map_err(|e| e.to_string())?,
            )),
            PredictorSpec::Persistence => Ok(Box::new(PersistencePredictor::new(n))),
        }
    }

    /// The default comparison family: the paper's guideline WCMA, both
    /// ensemble corners, and the two classical baselines.
    pub fn guideline_family() -> Vec<PredictorSpec> {
        vec![
            PredictorSpec::Wcma {
                alpha: 0.7,
                days: 10,
                k: 2,
            },
            PredictorSpec::Wcma {
                alpha: 0.3,
                days: 5,
                k: 1,
            },
            PredictorSpec::Ewma { gamma: 0.5 },
            PredictorSpec::MovingAverage { days: 5 },
            PredictorSpec::Persistence,
        ]
    }

    /// The guideline family plus the deployment-grade citizens at
    /// guideline parameters — the Q16.16 fixed-point kernel and the
    /// causal dynamic-(α, K) selector in both its default (six-bucket)
    /// and single-global-score-table forms — so all rank under faults
    /// next to the float predictors.
    pub fn extended_family() -> Vec<PredictorSpec> {
        let mut family = Self::guideline_family();
        family.push(PredictorSpec::WcmaQ16 {
            alpha: 0.7,
            days: 10,
            k: 2,
        });
        family.push(PredictorSpec::DynamicCausal {
            days: 10,
            k_max: 6,
            alphas: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            score_decay: 0.85,
            buckets: None,
        });
        // The non-default bucket count: one global score table, so the
        // ranking measures what per-time-of-day selection buys.
        family.push(PredictorSpec::DynamicCausal {
            days: 10,
            k_max: 6,
            alphas: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            score_decay: 0.85,
            buckets: Some(1),
        });
        family
    }

    /// Expands a [`ParamGrid`] into a WCMA predictor family — the bridge
    /// between the paper's design-space exploration and fleet
    /// evaluation. Use small grids: the fleet cost is
    /// `configs × managers × scenarios` full runs.
    pub fn family_from_grid(grid: &ParamGrid) -> Vec<PredictorSpec> {
        let mut family = Vec::with_capacity(grid.configs());
        for &alpha in grid.alphas() {
            for &days in grid.days() {
                for &k in grid.ks() {
                    family.push(PredictorSpec::Wcma { alpha, days, k });
                }
            }
        }
        family
    }
}

/// A buildable power-manager configuration.
#[derive(Clone, Debug, PartialEq)]
pub enum ManagerSpec {
    /// Prediction-driven energy-neutral control.
    EnergyNeutral {
        /// Target state of charge in `[0, 1]`.
        target_soc: f64,
        /// Proportional correction gain per slot.
        gain: f64,
    },
    /// Run flat out (no management).
    Greedy,
    /// Constant duty cycle.
    FixedDuty {
        /// Duty in `[0, 1]`.
        duty: f64,
    },
}

impl ManagerSpec {
    /// Short stable label for reports and JSON.
    pub fn label(&self) -> String {
        match *self {
            ManagerSpec::EnergyNeutral { target_soc, gain } => {
                format!("neutral(soc={target_soc},g={gain})")
            }
            ManagerSpec::Greedy => "greedy".to_string(),
            ManagerSpec::FixedDuty { duty } => format!("fixed(d={duty})"),
        }
    }

    /// Validates parameter ranges, so a bad spec fails at matrix
    /// assembly instead of panicking inside a fleet worker.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            ManagerSpec::EnergyNeutral { target_soc, gain } => {
                if !(target_soc.is_finite() && (0.0..=1.0).contains(&target_soc)) {
                    return Err(format!(
                        "energy-neutral target_soc {target_soc} not in [0, 1]"
                    ));
                }
                if !(gain.is_finite() && gain >= 0.0) {
                    return Err(format!("energy-neutral gain {gain} must be non-negative"));
                }
            }
            ManagerSpec::Greedy => {}
            ManagerSpec::FixedDuty { duty } => {
                if !(duty.is_finite() && (0.0..=1.0).contains(&duty)) {
                    return Err(format!("fixed duty {duty} not in [0, 1]"));
                }
            }
        }
        Ok(())
    }

    /// Builds a fresh manager.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid; call [`ManagerSpec::validate`]
    /// first (the fleet matrix does).
    pub fn build(&self) -> Box<dyn PowerManager> {
        match *self {
            ManagerSpec::EnergyNeutral { target_soc, gain } => Box::new(EnergyNeutralManager {
                target_soc,
                gain,
                ..Default::default()
            }),
            ManagerSpec::Greedy => Box::new(GreedyManager),
            ManagerSpec::FixedDuty { duty } => Box::new(FixedDutyManager::new(duty)),
        }
    }

    /// The default policy set: tuned energy-neutral plus both baselines.
    pub fn default_set() -> Vec<ManagerSpec> {
        vec![
            ManagerSpec::EnergyNeutral {
                target_soc: 0.5,
                gain: 0.25,
            },
            ManagerSpec::Greedy,
            ManagerSpec::FixedDuty { duty: 0.3 },
        ]
    }
}

/// Coordinates of one job in the matrix.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Index into [`FleetMatrix::scenarios`].
    pub scenario_idx: usize,
    /// Index into [`FleetMatrix::predictors`].
    pub predictor_idx: usize,
    /// Index into [`FleetMatrix::managers`].
    pub manager_idx: usize,
}

/// The full evaluation matrix.
#[derive(Clone, Debug)]
pub struct FleetMatrix {
    /// Predictor family.
    pub predictors: Vec<PredictorSpec>,
    /// Manager set.
    pub managers: Vec<ManagerSpec>,
    /// Scenario list.
    pub scenarios: Vec<Scenario>,
    /// Correlated fleet-wide events, projected into every affected
    /// scenario's fault list by the engine (empty = independent faults
    /// only). Attach with [`FleetMatrix::with_fleet_faults`].
    pub fleet_faults: Vec<FleetFault>,
}

impl FleetMatrix {
    /// Assembles a matrix; every axis must be non-empty and every
    /// scenario valid.
    pub fn new(
        predictors: Vec<PredictorSpec>,
        managers: Vec<ManagerSpec>,
        scenarios: Vec<Scenario>,
    ) -> Result<Self, String> {
        if predictors.is_empty() || managers.is_empty() || scenarios.is_empty() {
            return Err("fleet matrix axes must all be non-empty".to_string());
        }
        for manager in &managers {
            manager.validate()?;
        }
        for scenario in &scenarios {
            scenario.validate()?;
            for predictor in &predictors {
                // Fail at assembly, not mid-fleet: every predictor must
                // build at every scenario's discretization.
                predictor
                    .build(scenario.slots_per_day as usize)
                    .map_err(|e| format!("scenario {:?}: {e}", scenario.name))?;
            }
        }
        Ok(FleetMatrix {
            predictors,
            managers,
            scenarios,
            fleet_faults: Vec::new(),
        })
    }

    /// Attaches correlated fleet-wide events after validating them.
    pub fn with_fleet_faults(mut self, fleet_faults: Vec<FleetFault>) -> Result<Self, String> {
        for fault in &fleet_faults {
            fault.validate()?;
        }
        self.fleet_faults = fleet_faults;
        Ok(self)
    }

    /// Total number of jobs.
    pub fn job_count(&self) -> usize {
        self.predictors.len() * self.managers.len() * self.scenarios.len()
    }

    /// Expands the matrix into jobs, scenario-major (all combos of one
    /// scenario are adjacent, maximising trace-cache locality).
    pub fn jobs(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::with_capacity(self.job_count());
        for scenario_idx in 0..self.scenarios.len() {
            for predictor_idx in 0..self.predictors.len() {
                for manager_idx in 0..self.managers.len() {
                    jobs.push(JobSpec {
                        scenario_idx,
                        predictor_idx,
                        manager_idx,
                    });
                }
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    #[test]
    fn specs_build_and_label() {
        for spec in PredictorSpec::guideline_family() {
            let predictor = spec.build(48).unwrap();
            assert_eq!(predictor.slots_per_day(), 48);
            assert!(!spec.label().is_empty());
        }
        for spec in ManagerSpec::default_set() {
            let _ = spec.build();
            assert!(!spec.label().is_empty());
        }
    }

    #[test]
    fn bad_specs_fail_to_build() {
        assert!(PredictorSpec::Wcma {
            alpha: 1.5,
            days: 10,
            k: 2
        }
        .build(48)
        .is_err());
        assert!(PredictorSpec::Ewma { gamma: -0.1 }.build(48).is_err());
        assert!(PredictorSpec::WcmaQ16 {
            alpha: -0.5,
            days: 10,
            k: 2
        }
        .build(48)
        .is_err());
        assert!(PredictorSpec::DynamicCausal {
            days: 10,
            k_max: 48,
            alphas: vec![0.5],
            score_decay: 0.85,
            buckets: None
        }
        .build(48)
        .is_err());
        assert!(PredictorSpec::DynamicCausal {
            days: 10,
            k_max: 6,
            alphas: vec![0.5],
            score_decay: 1.0,
            buckets: None
        }
        .build(48)
        .is_err());
        // Bucket counts above the discretization are rejected too.
        assert!(PredictorSpec::DynamicCausal {
            days: 10,
            k_max: 6,
            alphas: vec![0.5],
            score_decay: 0.85,
            buckets: Some(49)
        }
        .build(48)
        .is_err());
    }

    #[test]
    fn extended_family_builds_and_has_unique_labels() {
        let family = PredictorSpec::extended_family();
        assert_eq!(family.len(), 8);
        // The bucket-count variant is present and distinguishable.
        assert!(family.iter().any(|s| matches!(
            s,
            PredictorSpec::DynamicCausal {
                buckets: Some(1),
                ..
            }
        )));
        let mut labels: Vec<String> = family.iter().map(PredictorSpec::label).collect();
        for spec in &family {
            spec.build(48).unwrap();
        }
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), family.len(), "labels must be injective");
    }

    #[test]
    fn candidate_counts_reflect_per_slot_work() {
        assert_eq!(PredictorSpec::Persistence.candidate_count(), 1);
        assert_eq!(
            PredictorSpec::WcmaQ16 {
                alpha: 0.7,
                days: 10,
                k: 2
            }
            .candidate_count(),
            1
        );
        assert_eq!(
            PredictorSpec::DynamicCausal {
                days: 10,
                k_max: 6,
                alphas: vec![0.0, 0.5, 1.0],
                score_decay: 0.85,
                buckets: None
            }
            .candidate_count(),
            18
        );
    }

    #[test]
    fn invalid_managers_fail_at_matrix_assembly_not_mid_fleet() {
        let scenarios = Catalog::builtin().scenarios()[..1].to_vec();
        for bad in [
            ManagerSpec::FixedDuty { duty: 1.5 },
            ManagerSpec::FixedDuty { duty: f64::NAN },
            ManagerSpec::EnergyNeutral {
                target_soc: 2.0,
                gain: 0.25,
            },
            ManagerSpec::EnergyNeutral {
                target_soc: 0.5,
                gain: -1.0,
            },
        ] {
            assert!(
                FleetMatrix::new(
                    PredictorSpec::guideline_family(),
                    vec![bad.clone()],
                    scenarios.clone()
                )
                .is_err(),
                "{bad:?} should be rejected at assembly"
            );
        }
    }

    #[test]
    fn grid_family_covers_the_grid() {
        let grid = ParamGrid::builder()
            .alphas(vec![0.0, 0.5])
            .days(vec![5, 10])
            .ks(vec![1, 2])
            .build()
            .unwrap();
        let family = PredictorSpec::family_from_grid(&grid);
        assert_eq!(family.len(), 8);
        assert!(family.contains(&PredictorSpec::Wcma {
            alpha: 0.5,
            days: 10,
            k: 2
        }));
    }

    #[test]
    fn matrix_expansion_is_scenario_major() {
        let scenarios = Catalog::builtin().scenarios()[..2].to_vec();
        let matrix = FleetMatrix::new(
            PredictorSpec::guideline_family(),
            ManagerSpec::default_set(),
            scenarios,
        )
        .unwrap();
        let jobs = matrix.jobs();
        assert_eq!(jobs.len(), matrix.job_count());
        assert_eq!(jobs.len(), 5 * 3 * 2);
        // Scenario-major: the first predictors×managers block is scenario 0.
        assert!(jobs[..15].iter().all(|j| j.scenario_idx == 0));
        assert!(jobs[15..].iter().all(|j| j.scenario_idx == 1));
    }

    #[test]
    fn empty_axes_are_rejected() {
        let scenarios = Catalog::builtin().scenarios()[..1].to_vec();
        assert!(FleetMatrix::new(vec![], ManagerSpec::default_set(), scenarios.clone()).is_err());
        assert!(
            FleetMatrix::new(PredictorSpec::guideline_family(), vec![], scenarios.clone()).is_err()
        );
        assert!(FleetMatrix::new(
            PredictorSpec::guideline_family(),
            ManagerSpec::default_set(),
            vec![]
        )
        .is_err());
    }
}
