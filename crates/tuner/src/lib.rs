//! Per-regime parameter tuning — the closed scorecard → parameter-search
//! → re-score loop.
//!
//! The DATE'10 paper chooses its predictor parameters (α, D, K) once,
//! globally, from measured error (Table III). Fleet-scale related work
//! (Basha et al.'s in-network prediction, universal-predictor studies)
//! shows one-size-fits-all solar predictors degrade across sites — so
//! this crate searches parameters **per climate regime** instead:
//!
//! ```text
//! Catalog ──► group_by_regime ──► per-regime FleetEngine scorecards
//!                  ▲                         │
//!                  │            coarse-to-fine (α, D, K) search
//!                  │            (ParamGrid::refined_around)
//!                  └── TuningReport ◄────────┘
//!         (winner table — the fleet Table III)
//! ```
//!
//! Every candidate is scored by a full fleet evaluation (accuracy under
//! measurement faults *and* managed-node outcome under physical
//! faults), re-scored incrementally through one shared
//! [`scenario_fleet::FleetCache`], and the winners are re-ranked
//! through the deployable kernels: the Q16.16 fixed-point port and the
//! causal dynamic-(α, K) selector with a per-regime tuned decay
//! threshold. The output [`TuningReport`] is deterministic for a given
//! seed — byte-identical JSON across runs and thread counts (pinned by
//! `tests/tuning.rs`).
//!
//! # Example
//!
//! ```
//! use fleet_tuner::{FleetTuner, TunerConfig};
//! use scenario_fleet::Catalog;
//!
//! let catalog = Catalog::builtin();
//! let scenarios = vec![
//!     catalog.get("desert-clear-sky").unwrap().clone(),
//!     catalog.get("marine-fog").unwrap().clone(),
//! ];
//! let tuner = FleetTuner::new(TunerConfig::smoke(42)).unwrap();
//! let report = tuner.tune(&scenarios).unwrap();
//! assert_eq!(report.regimes.len(), 2); // desert + marine
//! for row in &report.regimes {
//!     assert!(row.tuned_score <= row.global_score + 1e-12);
//! }
//! ```

mod regime;
mod report;
mod search;
mod tuner;

pub use regime::{group_by_regime, Regime};
pub use report::{RegimeRow, TunedParams, TuningReport};
pub use search::{search_wcma, SearchBudget, SearchResult};
pub use tuner::{FleetTuner, TunerConfig, GUIDELINE};
