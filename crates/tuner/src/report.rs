//! The tuning report — the fleet analogue of the paper's Table III.
//!
//! Table III reports, per data set, the (α, D, K) minimizing prediction
//! error. [`TuningReport`] reports, per *climate regime*, the
//! parameters minimizing the fleet service score, next to what the
//! global optimum would have scored on that regime — the measured value
//! of tuning per regime instead of once. Rows also carry the tuned
//! parameters' Q16.16 fixed-point score (the deployable integer kernel
//! under the same faults) and the best causal dynamic-(α, K) selector
//! configuration found for the regime.
//!
//! JSON rendering follows the workspace determinism contract:
//! insertion-ordered keys, shortest-round-trip floats, and **no wall
//! time** (cost wall-clock figures appear only in
//! [`TuningReport::render_text`]).

use pred_metrics::CostAggregate;
use scenario_fleet::json::Json;
use scenario_fleet::PredictorSpec;

/// A tuned WCMA parameter triple.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TunedParams {
    /// Persistence weight α.
    pub alpha: f64,
    /// History depth D (days).
    pub days: usize,
    /// Conditioning window K (slots).
    pub k: usize,
}

impl TunedParams {
    /// The float-kernel spec of these parameters.
    pub fn spec(&self) -> PredictorSpec {
        PredictorSpec::Wcma {
            alpha: self.alpha,
            days: self.days,
            k: self.k,
        }
    }

    /// The Q16.16 fixed-point spec of these parameters.
    pub fn q16_spec(&self) -> PredictorSpec {
        PredictorSpec::WcmaQ16 {
            alpha: self.alpha,
            days: self.days,
            k: self.k,
        }
    }

    fn to_json(self) -> Json {
        Json::obj([
            ("alpha", Json::Num(self.alpha)),
            ("days", Json::Num(self.days as f64)),
            ("k", Json::Num(self.k as f64)),
        ])
    }
}

impl std::fmt::Display for TunedParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(α={}, D={}, K={})", self.alpha, self.days, self.k)
    }
}

/// One regime's row in the winner table.
#[derive(Clone, Debug, PartialEq)]
pub struct RegimeRow {
    /// Regime identifier.
    pub regime: String,
    /// Training scenarios (catalog order).
    pub scenarios: Vec<String>,
    /// The regime's tuned parameters.
    pub tuned: TunedParams,
    /// Service score of the tuned parameters on this regime.
    pub tuned_score: f64,
    /// Service score of the *global* optimum on this regime.
    pub global_score: f64,
    /// Whether the regime simply re-selected the global optimum.
    pub matches_global: bool,
    /// Service score of the tuned parameters through the Q16.16 kernel
    /// on this regime (the deployable integer port, same faults).
    pub q16_score: f64,
    /// Best dynamic-selector score decay found for this regime.
    pub dynamic_decay: f64,
    /// Service score of that dynamic selector on this regime.
    pub dynamic_score: f64,
    /// Refinement rounds the search ran.
    pub rounds: usize,
    /// Distinct (α, D, K) candidates scored for this regime.
    pub candidates: usize,
}

impl RegimeRow {
    /// Score the global optimum loses on this regime by not being tuned
    /// for it (≥ 0 whenever the candidate pool contained the global
    /// optimum, which the tuner guarantees).
    pub fn improvement(&self) -> f64 {
        self.global_score - self.tuned_score
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("regime", Json::Str(self.regime.clone())),
            (
                "scenarios",
                Json::Arr(
                    self.scenarios
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
            ("tuned", self.tuned.to_json()),
            ("tuned_score", Json::Num(self.tuned_score)),
            ("global_score", Json::Num(self.global_score)),
            ("improvement", Json::Num(self.improvement())),
            ("matches_global", Json::Bool(self.matches_global)),
            ("q16_score", Json::Num(self.q16_score)),
            ("dynamic_decay", Json::Num(self.dynamic_decay)),
            ("dynamic_score", Json::Num(self.dynamic_score)),
            ("rounds", Json::Num(self.rounds as f64)),
            ("candidates", Json::Num(self.candidates as f64)),
        ])
    }
}

/// The full tuning-loop output.
#[derive(Clone, Debug, PartialEq)]
pub struct TuningReport {
    /// Master seed of every engine evaluation (exact replay).
    pub master_seed: u64,
    /// The globally tuned parameters (all scenarios at once — the
    /// paper's one-size-fits-all analogue).
    pub global: TunedParams,
    /// The global optimum's overall service score.
    pub global_overall_score: f64,
    /// Per-regime winner rows, in stable regime order.
    pub regimes: Vec<RegimeRow>,
    /// Aggregate evaluation cost of the whole loop. Wall time is
    /// non-deterministic: text rendering only, never JSON.
    pub cost: CostAggregate,
}

impl TuningReport {
    /// Regimes whose tuned parameters differ from the global optimum.
    pub fn divergent_regimes(&self) -> Vec<&RegimeRow> {
        self.regimes.iter().filter(|r| !r.matches_global).collect()
    }

    /// JSON form (deterministic; see module docs). The master seed is a
    /// decimal string for the same reason as the scorecard's: JSON
    /// numbers are doubles and would corrupt seeds ≥ 2⁵³.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("master_seed", Json::Str(self.master_seed.to_string())),
            ("global", self.global.to_json()),
            ("global_overall_score", Json::Num(self.global_overall_score)),
            (
                "regimes",
                Json::Arr(self.regimes.iter().map(RegimeRow::to_json).collect()),
            ),
            (
                "evaluations",
                Json::Num(self.cost.jobs as f64), // deterministic job count
            ),
        ])
    }

    /// Pretty-printed deterministic JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().render_pretty()
    }

    /// The per-regime winner table for terminals.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "global optimum {} (overall score {:.4})",
            self.global, self.global_overall_score
        );
        let _ = writeln!(
            out,
            "{:<12}{:<22}{:>9}{:>9}{:>9}{:>9}{:>8}{:>7}{:>6}",
            "regime", "tuned (α, D, K)", "score", "global", "gain", "q16", "dyn", "evals", "rnds"
        );
        for row in &self.regimes {
            let _ = writeln!(
                out,
                "{:<12}{:<22}{:>9.4}{:>9.4}{:>9.4}{:>9.4}{:>8.4}{:>7}{:>6}{}",
                row.regime,
                row.tuned.to_string(),
                row.tuned_score,
                row.global_score,
                row.improvement(),
                row.q16_score,
                row.dynamic_score,
                row.candidates,
                row.rounds,
                if row.matches_global { "  =global" } else { "" },
            );
        }
        let _ = writeln!(out, "cost: {}", self.cost);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pred_metrics::RunCost;

    fn sample_report() -> TuningReport {
        TuningReport {
            master_seed: u64::MAX - 1,
            global: TunedParams {
                alpha: 0.7,
                days: 10,
                k: 2,
            },
            global_overall_score: 0.5,
            regimes: vec![RegimeRow {
                regime: "desert".into(),
                scenarios: vec!["desert-clear-sky".into()],
                tuned: TunedParams {
                    alpha: 1.0,
                    days: 5,
                    k: 1,
                },
                tuned_score: 0.25,
                global_score: 0.30,
                matches_global: false,
                q16_score: 0.26,
                dynamic_decay: 0.85,
                dynamic_score: 0.27,
                rounds: 2,
                candidates: 31,
            }],
            cost: CostAggregate::of([RunCost {
                wall_nanos: 1234,
                peak_candidates: 30,
                peak_trace_bytes: 11_520,
            }]),
        }
    }

    #[test]
    fn json_is_deterministic_and_wall_free() {
        let report = sample_report();
        let a = report.to_json_string();
        let b = report.to_json_string();
        assert_eq!(a, b);
        assert!(!a.contains("wall"), "wall time must stay out of JSON");
        let parsed = Json::parse(&a).unwrap();
        assert_eq!(
            parsed
                .req_str("master_seed")
                .unwrap()
                .parse::<u64>()
                .unwrap(),
            u64::MAX - 1
        );
        assert_eq!(parsed.req("regimes").unwrap().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn divergence_and_improvement_read_from_rows() {
        let report = sample_report();
        assert_eq!(report.divergent_regimes().len(), 1);
        let row = &report.regimes[0];
        assert!((row.improvement() - 0.05).abs() < 1e-12);
        let text = report.render_text();
        assert!(text.contains("desert"));
        assert!(text.contains("cost:"));
    }

    #[test]
    fn tuned_params_build_both_kernels() {
        let params = TunedParams {
            alpha: 0.7,
            days: 10,
            k: 2,
        };
        assert_eq!(params.spec().label(), "wcma(a=0.7,D=10,K=2)");
        assert_eq!(params.q16_spec().label(), "wcma-q16(a=0.7,D=10,K=2)");
        assert_eq!(params.to_string(), "(α=0.7, D=10, K=2)");
    }
}
