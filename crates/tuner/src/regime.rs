//! Climate-regime classification of scenarios.
//!
//! The tuner searches parameters *per regime*, not per scenario: a
//! regime groups every scenario whose weather statistics come from the
//! same climate family, so the tuned parameters have more than one
//! training world and the per-regime winner table stays readable. Paper
//! measurement sites map onto the same five families the custom-site
//! builder exposes (desert, temperate, marine, monsoon, arctic), using
//! the climates the DATE'10 paper's Table I describes for each site.

use scenario_fleet::{Climate, Scenario, SiteSpec};
use solar_synth::Site;

/// The climate regime of a scenario — the tuner's grouping key.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Regime {
    /// Stable high-insolation regimes (PFCI, NPCS, `Climate::Desert`).
    Desert,
    /// Continental/humid mid-latitude regimes (SPMD, ECSU, ORNL,
    /// `Climate::Temperate`).
    Temperate,
    /// Foggy coastal regimes (HSU, `Climate::Marine`).
    Marine,
    /// Wet/dry monsoon regimes, including the near-equator rainband.
    Monsoon,
    /// High-latitude regimes with polar-night tails.
    Arctic,
}

impl Regime {
    /// All regimes, in stable report order.
    pub const ALL: [Regime; 5] = [
        Regime::Desert,
        Regime::Temperate,
        Regime::Marine,
        Regime::Monsoon,
        Regime::Arctic,
    ];

    /// Stable identifier used in reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Regime::Desert => "desert",
            Regime::Temperate => "temperate",
            Regime::Marine => "marine",
            Regime::Monsoon => "monsoon",
            Regime::Arctic => "arctic",
        }
    }

    /// Classifies a scenario by its site's climate family. Generated
    /// ([`SiteSpec::Shaped`]) sites classify by their climate preset —
    /// the cloudiness/turbidity shaping tilts the weather *within* a
    /// family, it never crosses one — so every scenario, hand-written
    /// or generated, lands in exactly one regime.
    pub fn of(scenario: &Scenario) -> Regime {
        match &scenario.site {
            SiteSpec::Paper(site) => match site {
                // Table I: PFCI (Phoenix) and NPCS (Las Vegas) are the
                // paper's desert sites; HSU is the foggy coast; the
                // rest are continental/humid.
                Site::Pfci | Site::Npcs => Regime::Desert,
                Site::Hsu => Regime::Marine,
                Site::Spmd | Site::Ecsu | Site::Ornl => Regime::Temperate,
            },
            SiteSpec::Custom { climate, .. } | SiteSpec::Shaped { climate, .. } => match climate {
                Climate::Desert => Regime::Desert,
                Climate::Temperate => Regime::Temperate,
                Climate::Marine => Regime::Marine,
                Climate::Monsoon => Regime::Monsoon,
                Climate::Arctic => Regime::Arctic,
            },
        }
    }
}

impl std::fmt::Display for Regime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Scenarios grouped by regime, in [`Regime::ALL`] order; regimes with
/// no scenarios are omitted. Within a group, catalog order is kept.
pub fn group_by_regime(scenarios: &[Scenario]) -> Vec<(Regime, Vec<Scenario>)> {
    Regime::ALL
        .into_iter()
        .filter_map(|regime| {
            let members: Vec<Scenario> = scenarios
                .iter()
                .filter(|s| Regime::of(s) == regime)
                .cloned()
                .collect();
            if members.is_empty() {
                None
            } else {
                Some((regime, members))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scenario_fleet::Catalog;

    #[test]
    fn every_builtin_scenario_classifies() {
        let catalog = Catalog::builtin();
        let groups = group_by_regime(catalog.scenarios());
        let total: usize = groups.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, catalog.len(), "grouping must partition");
        // The builtin catalog covers every regime family.
        assert_eq!(groups.len(), Regime::ALL.len());
    }

    #[test]
    fn paper_sites_follow_table_one() {
        let catalog = Catalog::builtin();
        assert_eq!(
            Regime::of(catalog.get("desert-clear-sky").unwrap()),
            Regime::Desert
        );
        assert_eq!(
            Regime::of(catalog.get("marine-fog").unwrap()),
            Regime::Marine
        );
        assert_eq!(
            Regime::of(catalog.get("continental-storms").unwrap()),
            Regime::Temperate
        );
        assert_eq!(
            Regime::of(catalog.get("southern-four-seasons").unwrap()),
            Regime::Temperate
        );
        assert_eq!(
            Regime::of(catalog.get("equatorial-rainband").unwrap()),
            Regime::Monsoon
        );
        assert_eq!(
            Regime::of(catalog.get("arctic-winter").unwrap()),
            Regime::Arctic
        );
    }

    #[test]
    fn generated_scenarios_classify_into_exactly_one_family_each() {
        use scenario_fleet::CatalogGenerator;
        let catalog = CatalogGenerator::new(17).generate(60).unwrap();
        let groups = group_by_regime(catalog.scenarios());
        let total: usize = groups.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, catalog.len(), "grouping must partition");
        assert_eq!(
            groups.len(),
            Regime::ALL.len(),
            "an interleaved generated catalog covers every family"
        );
    }

    #[test]
    fn regime_identifiers_are_stable_and_displayable() {
        for regime in Regime::ALL {
            assert!(!regime.as_str().is_empty());
            assert_eq!(regime.to_string(), regime.as_str());
        }
    }
}
