//! The closed tuning loop: scorecard → parameter search → re-score.
//!
//! One [`FleetTuner::tune`] call runs:
//!
//! 1. a **global pass** — coarse-to-fine (α, D, K) search over *all*
//!    scenarios at once, the paper's one-size-fits-all analogue;
//! 2. a **per-regime pass** — the same search repeated on each climate
//!    regime's scenarios, with the global winner and the paper's
//!    guideline always in the candidate pool (so a regime can never
//!    tune itself *worse* than the global default — a property test
//!    pins this);
//! 3. a **deployment pass** per regime — the tuned parameters re-scored
//!    through the Q16.16 fixed-point kernel, and the causal
//!    dynamic-(α, K) selector's score-decay threshold searched over the
//!    configured candidates.
//!
//! Every score is a full [`FleetEngine`] evaluation (metrics pass +
//! managed-simulation pass, faults included), and **one shared
//! [`FleetCache`]** carries the whole loop: a (scenario, predictor,
//! manager) job is evaluated exactly once no matter how many rounds or
//! passes ask for it, and a cached answer is byte-identical to a fresh
//! one. That incremental re-scoring is what makes the loop affordable —
//! the `fleet_tuner` bench measures the difference.

use crate::regime::{group_by_regime, Regime};
use crate::report::{RegimeRow, TunedParams, TuningReport};
use crate::search::{search_wcma, SearchBudget, SearchResult};
use fleet_obs::Collector;
use param_explore::ParamGrid;
use scenario_fleet::{
    FleetCache, FleetEngine, FleetMatrix, ManagerSpec, PredictorSpec, Scenario, TraceCachePolicy,
};

/// Everything a tuning loop needs to know.
#[derive(Clone, Debug)]
pub struct TunerConfig {
    /// Master seed of every engine evaluation.
    pub master_seed: u64,
    /// Worker-thread pin (`None` = all cores).
    pub threads: Option<usize>,
    /// The coarse (α, D, K) grid each search starts from.
    pub grid: ParamGrid,
    /// Convergence budget of each search (global and per regime).
    pub budget: SearchBudget,
    /// Power managers to rank under; a predictor's score is its best
    /// manager pairing.
    pub managers: Vec<ManagerSpec>,
    /// Candidate score-decay thresholds for the dynamic selector.
    pub dynamic_decays: Vec<f64>,
    /// The dynamic selector's candidate α set.
    pub dynamic_alphas: Vec<f64>,
    /// The dynamic selector's K ceiling (clamped to the regime's
    /// discretization).
    pub dynamic_k_max: usize,
    /// Route every engine evaluation through the sharded scorecard
    /// reduction with this many shards (clamped to each pass's scenario
    /// count). Sharded reduction is byte-identical to monolithic, so
    /// the tuner consumes the results unchanged — `None` keeps the
    /// monolithic path.
    pub shards: Option<usize>,
    /// Trace-cache policy of every engine evaluation (bounded budgets
    /// stream the overflow; results are byte-identical either way).
    pub cache_policy: TraceCachePolicy,
}

impl TunerConfig {
    /// The default loop: a 3 × 3 × 3 coarse grid with two refinement
    /// rounds, the tuned energy-neutral manager, and three decay
    /// candidates.
    pub fn new(master_seed: u64) -> Self {
        TunerConfig {
            master_seed,
            threads: None,
            grid: ParamGrid::builder()
                .alphas(vec![0.0, 0.5, 1.0])
                .days(vec![2, 10, 20])
                .ks(vec![1, 2, 4])
                .build()
                .expect("default grid is valid"),
            budget: SearchBudget::default(),
            managers: vec![ManagerSpec::EnergyNeutral {
                target_soc: 0.5,
                gain: 0.25,
            }],
            dynamic_decays: vec![0.7, 0.85, 0.95],
            dynamic_alphas: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            dynamic_k_max: 6,
            shards: None,
            cache_policy: TraceCachePolicy::default(),
        }
    }

    /// A minimal configuration for CI smoke runs and tests: a 2 × 2 × 2
    /// grid, one refinement round, one decay candidate.
    pub fn smoke(master_seed: u64) -> Self {
        TunerConfig {
            grid: ParamGrid::builder()
                .alphas(vec![0.0, 1.0])
                .days(vec![5, 20])
                .ks(vec![1, 2])
                .build()
                .expect("smoke grid is valid"),
            budget: SearchBudget {
                max_rounds: 1,
                max_candidates: 24,
            },
            dynamic_decays: vec![0.85],
            dynamic_alphas: vec![0.0, 0.5, 1.0],
            ..TunerConfig::new(master_seed)
        }
    }

    fn validate(&self) -> Result<(), String> {
        if self.managers.is_empty() {
            return Err("tuner needs at least one manager".to_string());
        }
        if self.dynamic_decays.is_empty() {
            return Err("tuner needs at least one dynamic decay candidate".to_string());
        }
        if self.dynamic_alphas.is_empty() {
            return Err("tuner needs at least one dynamic alpha candidate".to_string());
        }
        if self.dynamic_k_max == 0 {
            return Err("dynamic k_max must be at least 1".to_string());
        }
        if self.budget.max_candidates == 0 {
            return Err("search budget must allow at least one candidate".to_string());
        }
        Ok(())
    }
}

/// The paper's guideline parameters — always in every candidate pool.
pub const GUIDELINE: TunedParams = TunedParams {
    alpha: 0.7,
    days: 10,
    k: 2,
};

/// The per-regime tuning loop.
#[derive(Clone, Debug)]
pub struct FleetTuner {
    config: TunerConfig,
    engine: FleetEngine,
    collector: Collector,
}

/// Scores predictor specs on one scenario set through the shared cache.
/// The spec axis only ever grows, so every `run_cached` call re-ranks
/// everything seen so far while evaluating only the newcomers.
struct Evaluator<'a> {
    engine: &'a FleetEngine,
    cache: &'a mut FleetCache,
    managers: &'a [ManagerSpec],
    scenarios: Vec<Scenario>,
    /// Built on the first `score` call; later calls validate and append
    /// only newly seen specs — `FleetMatrix::new` would re-build every
    /// predictor at every discretization each round, which on warm
    /// (fully cached) rounds would dominate the loop's cost.
    matrix: Option<FleetMatrix>,
}

impl<'a> Evaluator<'a> {
    fn new(
        engine: &'a FleetEngine,
        cache: &'a mut FleetCache,
        managers: &'a [ManagerSpec],
        scenarios: Vec<Scenario>,
    ) -> Self {
        Evaluator {
            engine,
            cache,
            managers,
            scenarios,
            matrix: None,
        }
    }

    /// Scores `specs` (lower is better), in input order: each spec's
    /// best service score over the manager axis, aggregated across this
    /// evaluator's scenarios.
    fn score(&mut self, specs: &[PredictorSpec]) -> Result<Vec<f64>, String> {
        match &mut self.matrix {
            None => {
                let mut axis: Vec<PredictorSpec> = Vec::new();
                for spec in specs {
                    if !axis.contains(spec) {
                        axis.push(spec.clone());
                    }
                }
                self.matrix = Some(FleetMatrix::new(
                    axis,
                    self.managers.to_vec(),
                    self.scenarios.clone(),
                )?);
            }
            Some(matrix) => {
                for spec in specs {
                    if !matrix.predictors.contains(spec) {
                        // The per-spec half of FleetMatrix::new's
                        // validation: buildable at every discretization.
                        for scenario in &matrix.scenarios {
                            spec.build(scenario.slots_per_day as usize)
                                .map_err(|e| format!("scenario {:?}: {e}", scenario.name))?;
                        }
                        matrix.predictors.push(spec.clone());
                    }
                }
            }
        }
        let matrix = self.matrix.as_ref().expect("built above");
        let result = self.engine.run_cached(matrix, self.cache)?;
        specs
            .iter()
            .map(|spec| {
                let label = spec.label();
                result
                    .scorecard
                    .overall
                    .iter()
                    .filter(|e| e.predictor == label)
                    .map(|e| e.score)
                    .min_by(f64::total_cmp)
                    .ok_or_else(|| format!("spec {label:?} missing from scorecard"))
            })
            .collect()
    }
}

impl FleetTuner {
    /// Builds a tuner.
    ///
    /// # Errors
    ///
    /// Rejects configurations with empty manager or decay axes.
    pub fn new(config: TunerConfig) -> Result<Self, String> {
        config.validate()?;
        let mut engine = FleetEngine::new(config.master_seed).with_trace_cache(config.cache_policy);
        if let Some(threads) = config.threads {
            engine = engine.with_threads(threads);
        }
        if let Some(shards) = config.shards {
            engine = engine.with_shards(shards);
        }
        Ok(FleetTuner {
            config,
            engine,
            collector: Collector::noop(),
        })
    }

    /// Attaches an observability collector: the loop records tuner
    /// spans (`tuner/global`, one `tuner/regime` per regime) and search
    /// telemetry counters, and the inner engine records its evaluation
    /// phases into the same collector. No-op by default.
    pub fn with_collector(mut self, collector: Collector) -> Self {
        self.engine = self.engine.with_collector(collector.clone());
        self.collector = collector;
        self
    }

    /// The engine every evaluation runs through.
    pub fn engine(&self) -> &FleetEngine {
        &self.engine
    }

    /// Runs the whole loop over a scenario set.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (invalid scenario/predictor pairings,
    /// trace-generation failures) and rejects an empty scenario set.
    pub fn tune(&self, scenarios: &[Scenario]) -> Result<TuningReport, String> {
        if scenarios.is_empty() {
            return Err("tuner needs at least one scenario".to_string());
        }
        let config = &self.config;
        let mut cache = self.engine.new_cache();

        // Pass 1: the global optimum (all scenarios at once).
        let global_span = self.collector.span("tuner/global");
        let mut global_eval = Evaluator::new(
            &self.engine,
            &mut cache,
            &config.managers,
            scenarios.to_vec(),
        );
        let ((global, global_overall_score), _, global_searched) =
            Self::search_pool(&mut global_eval, config, &[GUIDELINE])?;
        self.record_search("global", &global_searched);
        drop(global_span);

        // Pass 2 + 3: per-regime search and deployment scoring. A
        // finished regime's cache entries are dead weight for every
        // later pass (regimes partition the scenario set), so the loop
        // prunes the cache down to the still-pending regimes after each
        // one — peak cache footprint tracks the *largest* regime, not
        // the whole fleet. Evicted cost is folded back into the report
        // so the ledger still covers the whole loop.
        let mut rows = Vec::new();
        let mut evicted_cost = pred_metrics::CostAggregate::default();
        let regimes = group_by_regime(scenarios);
        for (index, (regime, members)) in regimes.iter().enumerate() {
            let row = self.tune_regime(*regime, members.clone(), global, &mut cache)?;
            rows.push(row);
            let pending: Vec<Scenario> = regimes[index + 1..]
                .iter()
                .flat_map(|(_, members)| members.iter().cloned())
                .collect();
            if !pending.is_empty() {
                let keep =
                    FleetMatrix::new(vec![GUIDELINE.spec()], config.managers.clone(), pending)?;
                let stats = cache.prune_to(&keep)?;
                evicted_cost.merge(&stats.evicted_cost);
                if self.collector.is_enabled() && stats.evicted_outcomes > 0 {
                    self.collector.count_scenario(
                        regime.as_str(),
                        "tuner/evicted_outcomes",
                        stats.evicted_outcomes as u64,
                    );
                    self.collector.count_scenario(
                        regime.as_str(),
                        "tuner/evicted_trace_bytes",
                        stats.evicted_trace_bytes as u64,
                    );
                }
            }
        }
        self.collector.count("tuner/regimes", rows.len() as u64);

        // Every distinct job the loop evaluated, counted once: what the
        // cache still holds plus what the round pruning evicted.
        let mut cost = cache.cost();
        cost.merge(&evicted_cost);
        Ok(TuningReport {
            master_seed: config.master_seed,
            global,
            global_overall_score,
            regimes: rows,
            cost,
        })
    }

    fn tune_regime(
        &self,
        regime: Regime,
        members: Vec<Scenario>,
        global: TunedParams,
        cache: &mut FleetCache,
    ) -> Result<RegimeRow, String> {
        let config = &self.config;
        let _regime_span = self
            .collector
            .span_scenario("tuner/regime", regime.as_str());
        let scenario_names: Vec<String> = members.iter().map(|s| s.name.clone()).collect();
        let min_slots = members
            .iter()
            .map(|s| s.slots_per_day as usize)
            .min()
            .expect("regime groups are non-empty");

        let mut eval = Evaluator::new(&self.engine, cache, &config.managers, members);
        // Baselines in tie-priority order: the global winner, then the
        // paper guideline — so a regime only diverges when it strictly
        // pays, and never scores worse than either.
        let ((tuned, tuned_score), baseline_scores, searched) =
            Self::search_pool(&mut eval, config, &[global, GUIDELINE])?;
        self.record_search(regime.as_str(), &searched);
        let global_score = baseline_scores[0];

        // Deployment pass: the tuned integers through the Q16 kernel …
        let q16_score = eval.score(&[tuned.q16_spec()])?[0];
        // … and the dynamic selector's threshold search, its K ceiling
        // clamped to the regime's coarsest discretization.
        let k_max = config.dynamic_k_max.min(min_slots - 1).max(1);
        let dynamic_specs: Vec<PredictorSpec> = config
            .dynamic_decays
            .iter()
            .map(|&score_decay| PredictorSpec::DynamicCausal {
                days: tuned.days,
                k_max,
                alphas: config.dynamic_alphas.clone(),
                score_decay,
                buckets: None,
            })
            .collect();
        let dynamic_scores = eval.score(&dynamic_specs)?;
        let (dynamic_decay, dynamic_score) = config
            .dynamic_decays
            .iter()
            .zip(&dynamic_scores)
            .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.total_cmp(b.0)))
            .map(|(&decay, &score)| (decay, score))
            .expect("decay axis validated non-empty");

        Ok(RegimeRow {
            regime: regime.as_str().to_string(),
            scenarios: scenario_names,
            tuned,
            tuned_score,
            global_score,
            matches_global: tuned == global,
            q16_score,
            dynamic_decay,
            dynamic_score,
            rounds: searched.rounds,
            candidates: searched.evaluated,
        })
    }

    /// Ledger telemetry of one search pass, keyed by pass name (the
    /// regime, or `global`) — how many refinement rounds and candidate
    /// evaluations the search spent.
    fn record_search(&self, pass: &str, searched: &SearchResult) {
        if self.collector.is_enabled() {
            self.collector
                .count_scenario(pass, "tuner/search_rounds", searched.rounds as u64);
            self.collector.count_scenario(
                pass,
                "tuner/search_candidates",
                searched.evaluated as u64,
            );
            // One distribution sample per search pass: how many
            // candidates this pass evaluated (deterministic, so the
            // histogram plane stays byte-pinned).
            self.collector
                .observe("tuner/round_candidates", searched.evaluated as f64);
        }
    }

    /// Searches one evaluator with the given baselines always in the
    /// pool; returns the winner with its score, plus the baseline
    /// scores (in input order) and the raw search telemetry.
    #[allow(clippy::type_complexity)]
    fn search_pool(
        eval: &mut Evaluator<'_>,
        config: &TunerConfig,
        baselines: &[TunedParams],
    ) -> Result<((TunedParams, f64), Vec<f64>, SearchResult), String> {
        let baseline_specs: Vec<PredictorSpec> = baselines.iter().map(|p| p.spec()).collect();
        let baseline_scores = eval.score(&baseline_specs)?;
        let searched = search_wcma(&config.grid, &config.budget, |batch| eval.score(batch))?;
        let winner = Self::pick_winner(baselines, &baseline_scores, &searched);
        Ok((winner, baseline_scores, searched))
    }

    /// The best of the baselines and the search result. Baselines win
    /// ties in listed order (the global winner first), so a regime only
    /// diverges from the global optimum when it strictly pays.
    fn pick_winner(
        baselines: &[TunedParams],
        baseline_scores: &[f64],
        searched: &SearchResult,
    ) -> (TunedParams, f64) {
        let mut winner = (
            TunedParams {
                alpha: searched.alpha,
                days: searched.days,
                k: searched.k,
            },
            searched.score,
        );
        for (&params, &score) in baselines.iter().zip(baseline_scores).rev() {
            if score <= winner.1 {
                winner = (params, score);
            }
        }
        winner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scenario_fleet::Catalog;

    fn tiny_config(seed: u64) -> TunerConfig {
        TunerConfig {
            grid: ParamGrid::builder()
                .alphas(vec![0.0, 1.0])
                .days(vec![5])
                .ks(vec![1])
                .build()
                .unwrap(),
            budget: SearchBudget {
                max_rounds: 0,
                max_candidates: 8,
            },
            dynamic_decays: vec![0.85],
            dynamic_alphas: vec![0.0, 1.0],
            threads: Some(2),
            ..TunerConfig::new(seed)
        }
    }

    fn tiny_scenarios() -> Vec<Scenario> {
        let catalog = Catalog::builtin();
        vec![
            catalog.get("desert-clear-sky").unwrap().clone(),
            catalog.get("marine-fog").unwrap().clone(),
        ]
    }

    #[test]
    fn collector_observes_the_loop_without_perturbing_the_report() {
        let plain = FleetTuner::new(tiny_config(5))
            .unwrap()
            .tune(&tiny_scenarios())
            .unwrap();
        let collector = Collector::recording();
        let observed = FleetTuner::new(tiny_config(5))
            .unwrap()
            .with_collector(collector.clone())
            .tune(&tiny_scenarios())
            .unwrap();
        // Collection must not move a byte of the pinned report.
        assert_eq!(plain.to_json_string(), observed.to_json_string());
        let ledger = collector.ledger();
        assert_eq!(ledger.counter("tuner/regimes"), 2);
        assert!(ledger.counter("tuner/search_candidates") > 0);
        assert!(ledger.scenario_counter("global", "tuner/search_candidates") > 0);
        // One histogram sample per search pass: global + per-regime.
        let rounds = ledger.histogram("tuner/round_candidates").unwrap();
        assert_eq!(rounds.count(), 1 + 2);
        // The inner engine recorded into the same collector, including
        // its distribution plane.
        assert!(ledger.counter("jobs/evaluated") > 0);
        // Round pruning evicted the finished first regime (desert) once
        // the loop moved on to marine; the report above proved the
        // fold-back kept the cost ledger whole.
        assert!(ledger.scenario_counter("desert", "tuner/evicted_outcomes") > 0);
        assert!(ledger.histogram("score/mape").unwrap().count() > 0);
        assert!(ledger.histogram("fleet/unit_slots").unwrap().count() > 0);
        let report = collector.report();
        let tuner_node = report
            .spans
            .children
            .iter()
            .find(|c| c.name == "tuner")
            .expect("tuner spans recorded");
        assert!(tuner_node.children.iter().any(|c| c.name == "regime"));
    }

    #[test]
    fn tune_produces_a_row_per_regime_present() {
        let tuner = FleetTuner::new(tiny_config(5)).unwrap();
        let report = tuner.tune(&tiny_scenarios()).unwrap();
        assert_eq!(report.regimes.len(), 2); // desert + marine
        assert_eq!(report.regimes[0].regime, "desert");
        assert_eq!(report.regimes[1].regime, "marine");
        for row in &report.regimes {
            assert!(
                row.tuned_score <= row.global_score + 1e-12,
                "{}: tuned {} must not lose to global {}",
                row.regime,
                row.tuned_score,
                row.global_score
            );
            assert!(row.q16_score.is_finite());
            assert!(row.dynamic_score.is_finite());
            assert_eq!(row.dynamic_decay, 0.85);
        }
        assert!(report.cost.jobs > 0);
        assert!(report.cost.total_wall_nanos > 0);
    }

    #[test]
    fn guideline_is_always_in_the_pool() {
        // With a grid this bad (α ∈ {0, 1}, D = 5, K = 1) the guideline
        // can win; either way the winner must score no worse than it.
        let tuner = FleetTuner::new(tiny_config(5)).unwrap();
        let mut cache = tuner.engine().new_cache();
        let managers = tuner.config.managers.clone();
        let mut eval = Evaluator::new(tuner.engine(), &mut cache, &managers, tiny_scenarios());
        let guideline_score = eval.score(&[GUIDELINE.spec()]).unwrap()[0];
        let report = FleetTuner::new(tiny_config(5))
            .unwrap()
            .tune(&tiny_scenarios())
            .unwrap();
        assert!(report.global_overall_score <= guideline_score + 1e-12);
    }

    #[test]
    fn empty_inputs_are_rejected() {
        assert!(FleetTuner::new(tiny_config(1)).unwrap().tune(&[]).is_err());
        let mut config = tiny_config(1);
        config.managers.clear();
        assert!(FleetTuner::new(config).is_err());
        let mut config = tiny_config(1);
        config.dynamic_decays.clear();
        assert!(FleetTuner::new(config).is_err());
        let mut config = tiny_config(1);
        config.dynamic_alphas.clear();
        assert!(FleetTuner::new(config).is_err());
        let mut config = tiny_config(1);
        config.dynamic_k_max = 0;
        assert!(FleetTuner::new(config).is_err());
        let mut config = tiny_config(1);
        config.budget.max_candidates = 0;
        assert!(FleetTuner::new(config).is_err());
    }

    #[test]
    fn sharded_and_streamed_engines_reproduce_the_monolithic_report() {
        // The tuner consumes sharded results unchanged: routing every
        // evaluation through the sharded reduction — or a streaming
        // trace-cache policy — must reproduce the monolithic report
        // byte-for-byte.
        let monolithic = FleetTuner::new(tiny_config(13))
            .unwrap()
            .tune(&tiny_scenarios())
            .unwrap();
        let mut sharded_config = tiny_config(13);
        sharded_config.shards = Some(2);
        sharded_config.cache_policy = TraceCachePolicy::streaming_only();
        let sharded = FleetTuner::new(sharded_config)
            .unwrap()
            .tune(&tiny_scenarios())
            .unwrap();
        assert_eq!(monolithic.to_json_string(), sharded.to_json_string());
    }

    #[test]
    fn report_is_reproducible_for_a_seed() {
        let a = FleetTuner::new(tiny_config(9))
            .unwrap()
            .tune(&tiny_scenarios())
            .unwrap();
        let b = FleetTuner::new(tiny_config(9))
            .unwrap()
            .tune(&tiny_scenarios())
            .unwrap();
        assert_eq!(a.to_json_string(), b.to_json_string());
    }
}
