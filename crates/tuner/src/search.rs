//! Coarse-to-fine (α, D, K) search over a fleet evaluator.
//!
//! The paper's §IV exploration scores every grid point of a fixed grid
//! once. A fleet search cannot afford that (every candidate is a full
//! multi-scenario engine evaluation), so the loop here spends a
//! *convergence budget* instead: score a coarse [`ParamGrid`], refine
//! around the incumbent with [`ParamGrid::refined_around`] (axis
//! spacing roughly halves per round), and re-score until the budget —
//! rounds or distinct candidates — is exhausted or a round stops
//! producing unseen candidates. The incumbent is always a member of the
//! current grid, so refinement is always possible and the best score is
//! monotone non-increasing over rounds.
//!
//! The evaluator is a callback so the loop stays engine-agnostic and
//! unit-testable against analytic score surfaces.

use param_explore::ParamGrid;
use scenario_fleet::PredictorSpec;

/// Convergence budget of one search.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SearchBudget {
    /// Refinement rounds after the initial grid pass.
    pub max_rounds: usize,
    /// Ceiling on distinct candidates scored. A coarse grid larger than
    /// the ceiling is truncated in deterministic grid order; refinement
    /// stops once the ceiling is reached.
    pub max_candidates: usize,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget {
            max_rounds: 2,
            max_candidates: 96,
        }
    }
}

/// Outcome of one coarse-to-fine search.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchResult {
    /// Winning α.
    pub alpha: f64,
    /// Winning D.
    pub days: usize,
    /// Winning K.
    pub k: usize,
    /// The winner's score (lower is better).
    pub score: f64,
    /// Refinement rounds actually run (0 = the coarse pass sufficed).
    pub rounds: usize,
    /// Distinct (α, D, K) candidates scored.
    pub evaluated: usize,
}

fn specs_of(grid: &ParamGrid) -> Vec<(f64, usize, usize)> {
    let mut specs = Vec::with_capacity(grid.configs());
    for &alpha in grid.alphas() {
        for &days in grid.days() {
            for &k in grid.ks() {
                specs.push((alpha, days, k));
            }
        }
    }
    specs
}

/// Runs the search. `score` receives a batch of WCMA specs and returns
/// one score per spec, in order (lower is better); it is called once
/// per round with only the candidates not scored in earlier rounds.
///
/// # Errors
///
/// Propagates the first evaluator error.
pub fn search_wcma(
    grid: &ParamGrid,
    budget: &SearchBudget,
    mut score: impl FnMut(&[PredictorSpec]) -> Result<Vec<f64>, String>,
) -> Result<SearchResult, String> {
    let mut seen: Vec<(f64, usize, usize)> = Vec::new();
    let mut best: Option<((f64, usize, usize), f64)> = None;
    let mut rounds = 0;
    let mut current = grid.clone();

    loop {
        let fresh: Vec<(f64, usize, usize)> = specs_of(&current)
            .into_iter()
            .filter(|c| !seen.contains(c))
            .take(budget.max_candidates.saturating_sub(seen.len()))
            .collect();
        if !fresh.is_empty() {
            let batch: Vec<PredictorSpec> = fresh
                .iter()
                .map(|&(alpha, days, k)| PredictorSpec::Wcma { alpha, days, k })
                .collect();
            let scores = score(&batch)?;
            if scores.len() != batch.len() {
                return Err(format!(
                    "evaluator returned {} scores for {} candidates",
                    scores.len(),
                    batch.len()
                ));
            }
            for (&candidate, &value) in fresh.iter().zip(&scores) {
                seen.push(candidate);
                // Strict improvement plus deterministic tie-break on the
                // parameter triple, so the winner never depends on
                // evaluation order.
                let better = match best {
                    None => true,
                    Some((incumbent, incumbent_score)) => {
                        value < incumbent_score
                            || (value == incumbent_score && tie_break(candidate, incumbent))
                    }
                };
                if better {
                    best = Some((candidate, value));
                }
            }
        }

        let Some(((alpha, days, k), _)) = best else {
            return Err("candidate budget exhausted before any candidate was scored".to_string());
        };
        if rounds >= budget.max_rounds || seen.len() >= budget.max_candidates {
            break;
        }
        let refined = current
            .refined_around(alpha, days, k)
            .expect("incumbent is on the current grid");
        // Converged: refinement produced nothing new to score.
        if specs_of(&refined).iter().all(|c| seen.contains(c)) {
            break;
        }
        current = refined;
        rounds += 1;
    }

    let ((alpha, days, k), score) = best.expect("loop exits early when nothing was scored");
    Ok(SearchResult {
        alpha,
        days,
        k,
        score,
        rounds,
        evaluated: seen.len(),
    })
}

/// `true` if `a` should win a score tie against `b`: smallest (D, K, α)
/// first — the cheapest configuration wins when accuracy is equal.
fn tie_break(a: (f64, usize, usize), b: (f64, usize, usize)) -> bool {
    (a.1, a.2).cmp(&(b.1, b.2)).then(a.0.total_cmp(&b.0)) == std::cmp::Ordering::Less
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_score(spec: &PredictorSpec) -> f64 {
        // Smooth bowl with minimum at (0.7, 10, 2): refinement should
        // close in on it from a coarse grid that misses it.
        match *spec {
            PredictorSpec::Wcma { alpha, days, k } => {
                (alpha - 0.7).powi(2)
                    + 0.01 * (days as f64 - 10.0).powi(2)
                    + 0.05 * (k as f64 - 2.0).powi(2)
            }
            _ => unreachable!("search only emits WCMA specs"),
        }
    }

    #[test]
    fn refinement_improves_on_the_coarse_grid() {
        let grid = ParamGrid::builder()
            .alphas(vec![0.0, 0.5, 1.0])
            .days(vec![2, 12, 20])
            .ks(vec![1, 4, 6])
            .build()
            .unwrap();
        let coarse_only = search_wcma(
            &grid,
            &SearchBudget {
                max_rounds: 0,
                max_candidates: 1000,
            },
            |batch| Ok(batch.iter().map(quadratic_score).collect()),
        )
        .unwrap();
        let refined = search_wcma(
            &grid,
            &SearchBudget {
                max_rounds: 3,
                max_candidates: 1000,
            },
            |batch| Ok(batch.iter().map(quadratic_score).collect()),
        )
        .unwrap();
        assert_eq!(coarse_only.rounds, 0);
        assert!(refined.rounds >= 1);
        assert!(
            refined.score < coarse_only.score,
            "refinement must improve the bowl: {} vs {}",
            refined.score,
            coarse_only.score
        );
        assert!((refined.alpha - 0.7).abs() <= 0.15);
    }

    #[test]
    fn candidate_budget_is_respected() {
        let grid = ParamGrid::paper(); // 1254 configs
        let result = search_wcma(
            &grid,
            &SearchBudget {
                max_rounds: 5,
                max_candidates: 40,
            },
            |batch| Ok(batch.iter().map(quadratic_score).collect()),
        )
        .unwrap();
        assert!(result.evaluated <= 40);
    }

    #[test]
    fn ties_break_toward_the_cheapest_config() {
        let grid = ParamGrid::builder()
            .alphas(vec![0.0, 1.0])
            .days(vec![5, 10])
            .ks(vec![1, 2])
            .build()
            .unwrap();
        let result = search_wcma(
            &grid,
            &SearchBudget {
                max_rounds: 0,
                max_candidates: 100,
            },
            |batch| Ok(vec![1.0; batch.len()]),
        )
        .unwrap();
        assert_eq!((result.days, result.k, result.alpha), (5, 1, 0.0));
    }

    #[test]
    fn evaluator_errors_propagate() {
        let grid = ParamGrid::builder()
            .alphas(vec![0.5])
            .days(vec![5])
            .ks(vec![1])
            .build()
            .unwrap();
        let err = search_wcma(&grid, &SearchBudget::default(), |_| {
            Err("engine exploded".to_string())
        });
        assert!(err.is_err());
    }
}
