//! Extension — where in the day the prediction error lives.
//!
//! Backs the paper's §III region-of-interest argument with data: errors
//! concentrate at the edges of the daylight window, mid-day is the most
//! predictable, and night never enters the average at all.

use crate::context::{Context, ExperimentOutput};
use param_explore::report::TextTable;
use pred_metrics::DiurnalProfile;
use solar_predict::{run_predictor, WcmaParams, WcmaPredictor};
use solar_synth::Site;
use solar_trace::{SlotView, SlotsPerDay};

/// The sampling rate of the profile.
pub const N: u32 = 48;

/// Per-slot-of-day MAPE of the guideline WCMA on every site, plus a
/// summary of coverage and the worst slot.
pub fn run(ctx: &Context) -> ExperimentOutput {
    let n = N as usize;
    let params = WcmaParams::new(0.7, 10, 2, n).expect("guideline parameters");
    let mut profiles: Vec<(Site, DiurnalProfile)> = Vec::new();
    for ds in ctx.datasets() {
        let view =
            SlotView::new(&ds.trace, SlotsPerDay::new(N).expect("paper N")).expect("compatible N");
        let log = run_predictor(&view, &mut WcmaPredictor::new(params));
        profiles.push((ds.site, DiurnalProfile::of(&log, ctx.protocol())));
    }

    let mut headers = vec!["slot".to_string(), "hour".to_string()];
    headers.extend(profiles.iter().map(|(s, _)| s.code().to_string()));
    let mut curves = TextTable::new(headers.iter().map(String::as_str).collect());
    for slot in 0..n {
        if profiles.iter().all(|(_, p)| p.mape(slot).is_none()) {
            continue; // night
        }
        let mut row = vec![
            slot.to_string(),
            format!("{:.1}", slot as f64 * 24.0 / n as f64),
        ];
        for (_, profile) in &profiles {
            row.push(
                profile
                    .mape(slot)
                    .map(|m| format!("{:.4}", m))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        curves.push_row(row);
    }

    let mut summary = TextTable::new(vec![
        "Data set",
        "daylight coverage %",
        "worst slot (hour)",
        "worst MAPE",
    ]);
    for (site, profile) in &profiles {
        let (slot, mape) = profile.worst_slot().expect("daylight data exists");
        summary.push_row(vec![
            site.code().to_string(),
            format!("{:.0}", profile.coverage() * 100.0),
            format!("{:.1}", slot as f64 * 24.0 / n as f64),
            format!("{:.2}%", mape * 100.0),
        ]);
    }

    ExperimentOutput {
        id: "diurnal",
        title: "Extension: diurnal error profile of the guideline WCMA (N = 48)",
        tables: vec![("summary".into(), summary), ("curves".into(), curves)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_covers_daylight_and_edges_are_hardest() {
        let ctx = Context::with_days(60);
        let out = run(&ctx);
        let summary = &out.tables[0].1;
        assert_eq!(summary.len(), 6);
        for row in summary.rows() {
            let coverage: f64 = row[1].parse().unwrap();
            // Daylight inside the ROI spans roughly a third to two thirds
            // of the day.
            assert!(
                (25.0..=75.0).contains(&coverage),
                "{}: coverage {coverage}%",
                row[0]
            );
            let worst_hour: f64 = row[2].parse().unwrap();
            // The worst slot lies within daylight (night never enters the
            // averages). Whether it sits at the ROI edge or in afternoon
            // convection depends on the site's weather.
            assert!(
                (5.0..=20.0).contains(&worst_hour),
                "{}: worst slot at {worst_hour}h",
                row[0]
            );
        }
    }
}
