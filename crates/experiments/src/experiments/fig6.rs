//! Fig. 6 — prediction-activity overhead at different N.

use crate::context::{Context, ExperimentOutput};
use msp430_energy::{AdcModel, CalibratedCycleModel, PredictionKernel, SamplingSchedule, Supply};
use param_explore::report::TextTable;
use solar_trace::SlotsPerDay;

/// Regenerates Fig. 6: the daily sampling+prediction energy as a
/// percentage of the daily sleep energy, for each paper N, using the
/// guideline kernel (K = 2, α = 0.7) whose per-wake cost is the paper's
/// "roughly 60 µJ".
pub fn run(_ctx: &Context) -> ExperimentOutput {
    let supply = Supply::msp430f1611();
    let adc = AdcModel::msp430_paper();
    let model = CalibratedCycleModel::paper();
    let kernel = PredictionKernel::new(2, 0.7);
    let mut table = TextTable::new(vec![
        "N",
        "per-wake uJ",
        "active mJ/day",
        "sleep mJ/day",
        "overhead %",
    ]);
    for n in SlotsPerDay::PAPER_VALUES {
        let budget = SamplingSchedule::new(n as usize).daily_budget(&supply, &adc, &model, &kernel);
        table.push_row(vec![
            n.to_string(),
            format!("{:.1}", budget.per_wake_j * 1e6),
            format!("{:.2}", budget.active_per_day_j * 1e3),
            format!("{:.1}", budget.sleep_per_day_j * 1e3),
            format!("{:.2}", budget.overhead_pct()),
        ]);
    }
    ExperimentOutput {
        id: "fig6",
        title: "Fig. 6: prediction algorithm overhead at different N",
        tables: vec![("main".into(), table)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_matches_paper_series() {
        let ctx = Context::with_days(25);
        let out = run(&ctx);
        let table = &out.tables[0].1;
        // Paper: 4.85, 1.62, 1.21, 0.81, 0.40 (with sleep rounded down);
        // our exact sleep energy lands within 6% of each.
        let paper = [4.85, 1.62, 1.21, 0.81, 0.40];
        assert_eq!(table.len(), paper.len());
        for (row, expect) in table.rows().iter().zip(paper) {
            let got: f64 = row[4].parse().unwrap();
            assert!(
                (got - expect).abs() / expect < 0.06,
                "N={}: {got} vs paper {expect}",
                row[0]
            );
        }
    }
}
