//! Table V — dynamic parameter selection (clairvoyant) vs static.

use crate::context::{Context, ExperimentOutput};
use crate::experiments::table3;
use param_explore::dynamic::clairvoyant_eval;
use param_explore::report::{pct, TextTable};
use solar_synth::Site;
use solar_trace::{SlotView, SlotsPerDay};

/// The sites of the paper's Table V.
pub const SITES: [Site; 4] = [Site::Spmd, Site::Ecsu, Site::Ornl, Site::Hsu];

/// Regenerates Table V: per site and N, the static optimum MAPE next to
/// the clairvoyant dynamic MAPE when adapting both α and K, only K (at
/// the best fixed α), and only α (at the best fixed K).
///
/// As in the paper, D is held at the static optimum for that (site, N),
/// and the dynamic numbers are lower bounds (ideal per-prediction
/// choice).
pub fn run(ctx: &Context) -> ExperimentOutput {
    let alphas: Vec<f64> = ctx.grid().alphas().to_vec();
    let k_max = ctx.grid().k_max();
    let rows = table3::rows(ctx);
    let mut table = TextTable::new(vec![
        "Data Set",
        "N",
        "Static MAPE",
        "K+a MAPE",
        "a (K only)",
        "K only MAPE",
        "K (a only)",
        "a only MAPE",
    ]);
    for site in SITES {
        let ds = ctx.dataset(site);
        for &n in &ds.paper_n_values() {
            let row = rows
                .iter()
                .find(|r| r.site == site && r.n == n)
                .expect("table3 covers every (site, N)");
            if row.degenerate {
                table.push_row(vec![
                    site.code().to_string(),
                    n.to_string(),
                    "0+".into(),
                    "0+".into(),
                    "1".into(),
                    "0+".into(),
                    "n/a".into(),
                    "0+".into(),
                ]);
                continue;
            }
            let view = SlotView::new(&ds.trace, SlotsPerDay::new(n).expect("paper N"))
                .expect("compatible N");
            let outcome = clairvoyant_eval(&view, row.best.days, &alphas, k_max, ctx.protocol());
            table.push_row(vec![
                site.code().to_string(),
                n.to_string(),
                pct(row.best.mape),
                pct(outcome.both_mape),
                format!("{:.1}", outcome.k_only.0),
                pct(outcome.k_only.1),
                outcome.alpha_only.0.to_string(),
                pct(outcome.alpha_only.1),
            ]);
        }
    }
    ExperimentOutput {
        id: "table5",
        title: "Table V: dynamic parameter selection vs static",
        tables: vec![("main".into(), table)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct_of(cell: &str) -> Option<f64> {
        cell.trim_end_matches('%').parse().ok()
    }

    #[test]
    fn dynamic_orderings_and_gains() {
        let ctx = Context::with_days(60);
        let out = run(&ctx);
        let table = &out.tables[0].1;
        assert_eq!(table.len(), 4 * 5);
        for row in table.rows() {
            let (Some(stat), Some(both), Some(k_only), Some(a_only)) = (
                pct_of(&row[2]),
                pct_of(&row[3]),
                pct_of(&row[5]),
                pct_of(&row[7]),
            ) else {
                continue; // degenerate rows
            };
            assert!(both <= k_only + 1e-9, "{row:?}");
            assert!(both <= a_only + 1e-9, "{row:?}");
            assert!(k_only <= stat + 1e-9, "{row:?}");
            assert!(a_only <= stat + 1e-9, "{row:?}");
        }
        // The paper's headline: adapting both at N = 48 beats static by a
        // wide margin on at least the variable sites.
        let n48: Vec<&Vec<String>> = table.rows().iter().filter(|r| r[1] == "48").collect();
        let big_gain = n48.iter().any(|r| {
            let stat = pct_of(&r[2]).unwrap();
            let both = pct_of(&r[3]).unwrap();
            stat - both > 0.4 * stat
        });
        assert!(
            big_gain,
            "dynamic should roughly halve MAPE somewhere at N=48"
        );
    }

    #[test]
    fn k_only_prefers_lower_alpha_than_static() {
        // The paper: "Lower values of alpha ... give better results when
        // the other parameter is dynamically set".
        let ctx = Context::with_days(60);
        let out = run(&ctx);
        let rows = table3::rows(&ctx);
        for row in out.tables[0].1.rows() {
            let Ok(n) = row[1].parse::<u32>() else {
                continue;
            };
            let Some(site) = SITES.iter().find(|s| s.code() == row[0]) else {
                continue;
            };
            let Ok(alpha_dyn) = row[4].parse::<f64>() else {
                continue;
            };
            let stat = rows.iter().find(|r| r.site == *site && r.n == n).unwrap();
            if stat.degenerate {
                continue;
            }
            assert!(
                alpha_dyn <= stat.best.alpha + 1e-9,
                "{} N={n}: dynamic-K alpha {alpha_dyn} vs static {}",
                row[0],
                stat.best.alpha
            );
        }
    }
}
