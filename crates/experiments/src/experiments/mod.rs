//! One module per paper artifact (see DESIGN.md §4 for the index).

pub mod baselines;
pub mod diurnal;
pub mod dynamic_causal;
pub mod fig2;
pub mod fig6;
pub mod fig7;
pub mod fixedpoint;
pub mod kpolicy;
pub mod memory;
pub mod sim_impact;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod tradeoff;

use crate::context::{Context, ExperimentOutput};

/// All experiment ids, in the order `repro all` runs them.
pub const ALL_IDS: [&str; 16] = [
    "table1",
    "fig2",
    "table2",
    "table3",
    "fig7",
    "table4",
    "fig6",
    "table5",
    "baselines",
    "fixedpoint",
    "dynamic-causal",
    "kpolicy",
    "memory",
    "diurnal",
    "tradeoff",
    "sim-impact",
];

/// Runs an experiment by id.
///
/// Returns `None` for an unknown id.
pub fn run_by_id(ctx: &Context, id: &str) -> Option<ExperimentOutput> {
    Some(match id {
        "table1" => table1::run(ctx),
        "fig2" => fig2::run(ctx),
        "table2" => table2::run(ctx),
        "table3" => table3::run(ctx),
        "fig7" => fig7::run(ctx),
        "table4" => table4::run(ctx),
        "fig6" => fig6::run(ctx),
        "table5" => table5::run(ctx),
        "baselines" => baselines::run(ctx),
        "fixedpoint" => fixedpoint::run(ctx),
        "dynamic-causal" => dynamic_causal::run(ctx),
        "kpolicy" => kpolicy::run(ctx),
        "memory" => memory::run(ctx),
        "diurnal" => diurnal::run(ctx),
        "tradeoff" => tradeoff::run(ctx),
        "sim-impact" => sim_impact::run(ctx),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_id_runs() {
        let ctx = Context::with_days(30);
        for id in ALL_IDS {
            let out = run_by_id(&ctx, id).expect("listed id must run");
            assert_eq!(out.id, id);
            assert!(!out.tables.is_empty(), "{id} produced no tables");
        }
        assert!(run_by_id(&ctx, "nope").is_none());
    }
}
