//! Table IV — energy consumption of power sampling and prediction.

use crate::context::{Context, ExperimentOutput};
use msp430_energy::{
    AdcModel, CalibratedCycleModel, OpCostModel, PredictionKernel, SamplingSchedule, Supply,
};
use param_explore::report::TextTable;

/// Regenerates Table IV: per-activity energies from the calibrated MSP430
/// model, in the paper's row order, plus an `opcount` table showing the
/// analytic operation-count model beside the calibration (the mechanistic
/// view the paper's measurement hides).
pub fn run(_ctx: &Context) -> ExperimentOutput {
    let supply = Supply::msp430f1611();
    let adc = AdcModel::msp430_paper();
    let model = CalibratedCycleModel::paper();
    let adc_j = adc.energy_j(&supply);
    let pred = |k: usize, alpha: f64| {
        model.cycles(&PredictionKernel::new(k, alpha)) * supply.energy_per_cycle_j()
    };

    let mut main = TextTable::new(vec!["Hardware Activity", "Energy/Cycle"]);
    main.push_row(vec![
        "A/D conversion".into(),
        format!("{:.1} uJ", adc_j * 1e6),
    ]);
    for (k, alpha) in [(1usize, 0.7), (7, 0.7), (7, 0.0)] {
        main.push_row(vec![
            format!("A/D conversion + Prediction (K={k}, alpha={alpha})"),
            format!("{:.1} uJ", (adc_j + pred(k, alpha)) * 1e6),
        ]);
    }
    main.push_row(vec![
        format!(
            "Low power (sleep) mode {:.1} uA@{:.0}V",
            supply.sleep_current_a * 1e6,
            supply.voltage_v
        ),
        format!("{:.0} mJ per day", supply.sleep_energy_per_day_j() * 1e3),
    ]);
    let b48 = SamplingSchedule::new(48).daily_budget(
        &supply,
        &adc,
        &model,
        &PredictionKernel::new(2, 0.7),
    );
    main.push_row(vec![
        "A/D conversion 48 samples per day".into(),
        format!("{:.0} uJ per day", b48.adc_j * 48.0 * 1e6),
    ]);
    main.push_row(vec![
        "A/D conversion + prediction 48 times per day".into(),
        format!("{:.0} uJ per day", b48.active_per_day_j * 1e6),
    ]);

    // The mechanistic companion: analytic op counts priced per arithmetic
    // style, next to the calibrated measurement stand-in.
    let mut ops = TextTable::new(vec![
        "Kernel",
        "adds",
        "muls",
        "divs",
        "softfloat cycles",
        "q16 cycles",
        "calibrated cycles",
    ]);
    for (k, alpha) in [(1usize, 0.7), (2, 0.7), (7, 0.7), (7, 0.0)] {
        let kernel = PredictionKernel::new(k, alpha);
        let counts = kernel.op_counts();
        ops.push_row(vec![
            format!("K={k}, alpha={alpha}"),
            counts.adds.to_string(),
            counts.muls.to_string(),
            counts.divs.to_string(),
            format!("{:.0}", OpCostModel::software_float().cycles(counts)),
            format!("{:.0}", OpCostModel::fixed_q16().cycles(counts)),
            format!("{:.0}", model.cycles(&kernel)),
        ]);
    }

    ExperimentOutput {
        id: "table4",
        title: "Table IV: energy consumption of power sampling and prediction",
        tables: vec![("main".into(), main), ("opcount".into(), ops)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_anchor_rows() {
        let ctx = Context::with_days(25);
        let out = run(&ctx);
        let main = &out.tables[0].1;
        assert_eq!(main.len(), 7);
        // The three K/alpha rows match the paper's 58.6 / 63.4 / 61.5 µJ
        // within a microjoule.
        let value = |row: usize| -> f64 {
            main.rows()[row][1]
                .split_whitespace()
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!((value(0) - 55.0).abs() < 1.0);
        assert!((value(1) - 58.6).abs() < 1.0);
        assert!((value(2) - 63.4).abs() < 1.0);
        assert!((value(3) - 61.5).abs() < 1.0);
        // Row 4 is sleep (≈363 mJ/day vs paper's rounded 356).
        assert!((value(4) - 363.0).abs() < 8.0);
        // Daily totals near 2640 / 2880 µJ.
        let daily_adc: f64 = value(5);
        let daily_all: f64 = value(6);
        assert!((daily_adc - 2640.0).abs() < 50.0);
        assert!((daily_all - 2880.0).abs() < 120.0);
    }

    #[test]
    fn opcount_table_orders_arithmetic_styles() {
        let ctx = Context::with_days(25);
        let out = run(&ctx);
        let ops = &out.tables[1].1;
        for row in ops.rows() {
            let float: f64 = row[4].parse().unwrap();
            let q16: f64 = row[5].parse().unwrap();
            assert!(q16 < float, "{}: q16 {q16} vs float {float}", row[0]);
        }
    }
}
