//! Ablation — the day-start K-window policy is immaterial.
//!
//! DESIGN.md calls out that the paper leaves the K window's behaviour at
//! the first slots of a day unspecified. This experiment runs both
//! readings and shows the MAPE difference is negligible inside the
//! region of interest (night surrounds midnight, so the wrapped ratios
//! are the neutral η = 1 either way).

use crate::context::{Context, ExperimentOutput};
use param_explore::report::{pct, TextTable};
use solar_predict::{run_predictor, KWindowPolicy, WcmaParamsBuilder, WcmaPredictor};
use solar_trace::{SlotView, SlotsPerDay};

/// The sampling rate of the comparison.
pub const N: u32 = 48;

/// Per site at N = 48 with guideline parameters: MAPE under
/// wrap-previous-day vs clamp-renormalize.
pub fn run(ctx: &Context) -> ExperimentOutput {
    let mut table = TextTable::new(vec!["Data set", "wrap", "clamp", "delta (points)"]);
    for ds in ctx.datasets() {
        let view =
            SlotView::new(&ds.trace, SlotsPerDay::new(N).expect("paper N")).expect("compatible N");
        let mape_for = |policy: KWindowPolicy| {
            let params = WcmaParamsBuilder::new()
                .alpha(0.7)
                .days(10)
                .k(6) // the widest window maximizes any boundary effect
                .slots_per_day(N as usize)
                .k_policy(policy)
                .build()
                .expect("valid parameters");
            ctx.protocol()
                .evaluate(&run_predictor(&view, &mut WcmaPredictor::new(params)))
                .mape
        };
        let wrap = mape_for(KWindowPolicy::WrapPreviousDay);
        let clamp = mape_for(KWindowPolicy::ClampRenormalize);
        table.push_row(vec![
            ds.site.code().to_string(),
            pct(wrap),
            pct(clamp),
            format!("{:.4}", (wrap - clamp).abs() * 100.0),
        ]);
    }
    ExperimentOutput {
        id: "kpolicy",
        title: "Ablation: K-window day-start policy (N = 48, K = 6)",
        tables: vec![("main".into(), table)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_agree_inside_roi() {
        let ctx = Context::with_days(60);
        let out = run(&ctx);
        for row in out.tables[0].1.rows() {
            let delta: f64 = row[3].parse().unwrap();
            assert!(delta < 0.1, "{}: policy delta {delta} points", row[0]);
        }
    }
}
