//! Fig. 7 — MAPE trends with increasing D for all data sets.

use crate::context::{Context, ExperimentOutput};
use param_explore::guidelines;
use param_explore::report::TextTable;

/// The sampling rate of Fig. 7.
pub const N: u32 = 48;

/// Regenerates Fig. 7: MAPE as a function of D ∈ [2, 20] at N = 48, per
/// site, holding (α, K) at that site's Table III optimum — plus a
/// `guideline` table reporting the smallest D within one MAPE point of
/// optimal (the paper's D ≈ 10–11 rule).
pub fn run(ctx: &Context) -> ExperimentOutput {
    let mut headers = vec!["D".to_string()];
    headers.extend(ctx.datasets().iter().map(|d| d.site.code().to_string()));
    let mut curves: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut guideline = TextTable::new(vec!["Data set", "smallest adequate D (<=1pt)", "best D"]);
    for ds in ctx.datasets() {
        let result = ctx.sweep_for(ds.site, N);
        let best = result.best_by_mape();
        let curve = result
            .mape_vs_days(best.alpha, best.k)
            .expect("optimum lies on the grid");
        curves.push(curve);
        guideline.push_row(vec![
            ds.site.code().to_string(),
            guidelines::smallest_adequate_d(&result, 0.01)
                .map(|d| d.to_string())
                .unwrap_or_else(|| "n/a".into()),
            best.days.to_string(),
        ]);
    }

    let mut table = TextTable::new(headers.iter().map(String::as_str).collect());
    let d_axis: Vec<usize> = curves[0].iter().map(|&(d, _)| d).collect();
    for (i, &d) in d_axis.iter().enumerate() {
        let mut row = vec![d.to_string()];
        for curve in &curves {
            row.push(format!("{:.4}", curve[i].1));
        }
        table.push_row(row);
    }

    ExperimentOutput {
        id: "fig7",
        title: "Fig. 7: MAPE trends with increasing D (N = 48)",
        tables: vec![("curves".into(), table), ("guideline".into(), guideline)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_flatten_after_small_d() {
        let ctx = Context::with_days(60);
        let out = run(&ctx);
        let table = &out.tables[0].1;
        assert_eq!(table.len(), 19); // D = 2..=20
                                     // For every site: the improvement from D=11 to D=20 is small
                                     // compared to the improvement from D=2 to D=11 (the paper's
                                     // diminishing-returns claim).
        for col in 1..=6 {
            let at = |row: usize| -> f64 { table.rows()[row][col].parse().unwrap() };
            let d2 = at(0);
            let d11 = at(9);
            let d20 = at(18);
            let early_gain = d2 - d11;
            let late_gain = (d11 - d20).max(0.0);
            assert!(
                late_gain <= early_gain.max(0.002),
                "col {col}: early {early_gain} late {late_gain}"
            );
        }
    }
}
