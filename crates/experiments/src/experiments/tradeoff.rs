//! The accuracy–cost trade-off (the paper's abstract and §IV-B/§IV-C
//! synthesis): what each sampling rate buys in MAPE and costs in energy,
//! and where dynamic selection moves the frontier.

use crate::context::{Context, ExperimentOutput};
use crate::experiments::table3;
use msp430_energy::{AdcModel, CalibratedCycleModel, PredictionKernel, SamplingSchedule, Supply};
use param_explore::dynamic::clairvoyant_eval;
use param_explore::report::{pct, TextTable};
use solar_synth::Site;
use solar_trace::{SlotView, SlotsPerDay};

/// The site used for the frontier (a variable one, as in Table V).
pub const SITE: Site = Site::Ornl;

/// Per N: static MAPE, clairvoyant-dynamic MAPE, and the daily energy
/// overhead — the frontier a designer actually chooses from. The paper's
/// headline crossover should appear: dynamic at N = 48 beats static at
/// N = 288 while spending a sixth of the sampling energy.
pub fn run(ctx: &Context) -> ExperimentOutput {
    let supply = Supply::msp430f1611();
    let adc = AdcModel::msp430_paper();
    let cycles = CalibratedCycleModel::paper();
    let rows = table3::rows(ctx);
    let ds = ctx.dataset(SITE);
    let alphas = ctx.grid().alphas().to_vec();
    let k_max = ctx.grid().k_max();

    let mut table = TextTable::new(vec![
        "N",
        "static MAPE",
        "dynamic MAPE (clairvoyant)",
        "overhead %/day",
        "uJ per MAPE point saved vs N=24",
    ]);
    let static24 = rows
        .iter()
        .find(|r| r.site == SITE && r.n == 24)
        .expect("table3 covers all N")
        .best
        .mape;
    for &n in &ds.paper_n_values() {
        let row = rows
            .iter()
            .find(|r| r.site == SITE && r.n == n)
            .expect("table3 covers all N");
        let kernel = PredictionKernel::new(row.best.k.min(6), row.best.alpha);
        let budget =
            SamplingSchedule::new(n as usize).daily_budget(&supply, &adc, &cycles, &kernel);
        let dynamic = if row.degenerate {
            0.0
        } else {
            let view = SlotView::new(&ds.trace, SlotsPerDay::new(n).expect("paper N"))
                .expect("compatible N");
            clairvoyant_eval(&view, row.best.days, &alphas, k_max, ctx.protocol()).both_mape
        };
        let gain_points = (static24 - row.best.mape) * 100.0;
        let marginal = if gain_points > 0.0 {
            format!("{:.0}", budget.active_per_day_j * 1e6 / gain_points)
        } else {
            "n/a".to_string()
        };
        table.push_row(vec![
            n.to_string(),
            pct(row.best.mape),
            pct(dynamic),
            format!("{:.2}", budget.overhead_pct()),
            marginal,
        ]);
    }

    ExperimentOutput {
        id: "tradeoff",
        title: "Synthesis: accuracy vs energy cost across N (ORNL)",
        tables: vec![("main".into(), table)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct_of(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().unwrap()
    }

    #[test]
    fn dynamic_at_48_beats_static_at_288_at_lower_cost() {
        let ctx = Context::with_days(60);
        let out = run(&ctx);
        let table = &out.tables[0].1;
        assert_eq!(table.len(), 5);
        let row = |n: &str| table.rows().iter().find(|r| r[0] == n).expect("row exists");
        let static288 = pct_of(&row("288")[1]);
        let dyn48 = pct_of(&row("48")[2]);
        let overhead288 = pct_of(&row("288")[3]);
        let overhead48 = pct_of(&row("48")[3]);
        assert!(
            dyn48 < static288,
            "dynamic@48 ({dyn48}%) must beat static@288 ({static288}%)"
        );
        assert!(
            overhead48 * 5.0 < overhead288,
            "N=48 overhead {overhead48}% vs N=288 {overhead288}%"
        );
    }

    #[test]
    fn overhead_decreases_with_n() {
        let ctx = Context::with_days(60);
        let out = run(&ctx);
        let overheads: Vec<f64> = out.tables[0]
            .1
            .rows()
            .iter()
            .map(|r| r[3].trim_end_matches('%').parse().unwrap())
            .collect();
        // Rows are N = 288, 96, 72, 48, 24: strictly decreasing cost.
        for pair in overheads.windows(2) {
            assert!(pair[0] > pair[1]);
        }
    }
}
