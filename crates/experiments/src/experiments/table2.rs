//! Table II — optimized parameters and errors under MAPE′ vs MAPE at
//! N = 48.

use crate::context::{Context, ExperimentOutput};
use param_explore::report::{pct, TextTable};

/// The sampling rate of Table II.
pub const N: u32 = 48;

/// Regenerates Table II: for each data set, the (α, D, K) minimizing
/// MAPE′ (slot-boundary-sample error, Eq. 6) with its achieved MAPE′,
/// next to the (α, D, K) minimizing MAPE (mean-slot-power error, Eq. 7)
/// with its achieved MAPE.
///
/// The paper's two observations should reproduce: MAPE optimization
/// yields much lower errors than MAPE′, and the chosen α differs
/// markedly (low α under MAPE′, ~0.6–0.7 under MAPE).
pub fn run(ctx: &Context) -> ExperimentOutput {
    let mut table = TextTable::new(vec![
        "Data set", "a'", "D'", "K'", "MAPE'", "a", "D", "K", "MAPE",
    ]);
    for ds in ctx.datasets() {
        let result = ctx.sweep_for(ds.site, N);
        let by_prime = result.best_by_mape_prime();
        let by_mape = result.best_by_mape();
        table.push_row(vec![
            ds.site.code().to_string(),
            format!("{:.1}", by_prime.alpha),
            by_prime.days.to_string(),
            by_prime.k.to_string(),
            pct(by_prime.mape_prime),
            format!("{:.1}", by_mape.alpha),
            by_mape.days.to_string(),
            by_mape.k.to_string(),
            pct(by_mape.mape),
        ]);
    }
    ExperimentOutput {
        id: "table2",
        title: "Table II: MAPE' vs MAPE optimization at N = 48",
        tables: vec![("main".into(), table)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mape_prime_optimization_is_worse_and_prefers_lower_alpha() {
        let ctx = Context::with_days(60);
        let out = run(&ctx);
        let table = &out.tables[0].1;
        assert_eq!(table.len(), 6);
        for row in table.rows() {
            let a_prime: f64 = row[1].parse().unwrap();
            let mape_prime: f64 = row[4].trim_end_matches('%').parse().unwrap();
            let a: f64 = row[5].parse().unwrap();
            let mape: f64 = row[8].trim_end_matches('%').parse().unwrap();
            assert!(
                mape < mape_prime,
                "{}: MAPE {mape} must undercut MAPE' {mape_prime}",
                row[0]
            );
            assert!(
                a_prime < a,
                "{}: MAPE'-optimal alpha {a_prime} below MAPE-optimal {a}",
                row[0]
            );
        }
    }
}
