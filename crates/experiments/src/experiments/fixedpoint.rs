//! Ablation — Q16.16 fixed-point WCMA vs the f64 reference.

use crate::context::{Context, ExperimentOutput};
use msp430_energy::{OpCostModel, PredictionKernel, Supply};
use param_explore::report::{pct, TextTable};
use solar_predict::fixed_point::FixedWcmaPredictor;
use solar_predict::{run_predictor, WcmaParams, WcmaPredictor};
use solar_trace::{SlotView, SlotsPerDay};

/// The sampling rate of the comparison.
pub const N: u32 = 48;

/// Compares, per site at N = 48 with the guideline parameters, the MAPE
/// of the f64 WCMA against the Q16.16 kernel an MCU would run, plus the
/// per-prediction cycle/energy cost of each arithmetic style.
///
/// Expected outcome (recorded in EXPERIMENTS.md): the accuracy penalty of
/// fixed point is orders of magnitude below the prediction error itself,
/// while the cycle cost drops several-fold — supporting fixed-point
/// deployment as the §IV-B cost discussion implies.
pub fn run(ctx: &Context) -> ExperimentOutput {
    let n = N as usize;
    let params = WcmaParams::new(0.7, 10, 2, n).expect("guideline parameters");
    let mut accuracy = TextTable::new(vec![
        "Data set",
        "MAPE f64",
        "MAPE Q16.16",
        "penalty (points)",
    ]);
    for ds in ctx.datasets() {
        let view =
            SlotView::new(&ds.trace, SlotsPerDay::new(N).expect("paper N")).expect("compatible N");
        let float = ctx
            .protocol()
            .evaluate(&run_predictor(&view, &mut WcmaPredictor::new(params)));
        let fixed = ctx
            .protocol()
            .evaluate(&run_predictor(&view, &mut FixedWcmaPredictor::new(params)));
        accuracy.push_row(vec![
            ds.site.code().to_string(),
            pct(float.mape),
            pct(fixed.mape),
            format!("{:.4}", (fixed.mape - float.mape) * 100.0),
        ]);
    }

    let supply = Supply::msp430f1611();
    let kernel = PredictionKernel::new(2, 0.7);
    let counts = kernel.op_counts();
    let mut cost = TextTable::new(vec!["Arithmetic", "cycles", "energy uJ"]);
    for (name, model) in [
        ("software float", OpCostModel::software_float()),
        ("Q16.16 fixed", OpCostModel::fixed_q16()),
    ] {
        let cycles = model.cycles(counts);
        cost.push_row(vec![
            name.to_string(),
            format!("{cycles:.0}"),
            format!("{:.2}", cycles * supply.energy_per_cycle_j() * 1e6),
        ]);
    }

    ExperimentOutput {
        id: "fixedpoint",
        title: "Ablation: Q16.16 fixed-point WCMA vs f64 (N = 48, guideline params)",
        tables: vec![("accuracy".into(), accuracy), ("cost".into(), cost)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_penalty_is_negligible() {
        let ctx = Context::with_days(60);
        let out = run(&ctx);
        for row in out.tables[0].1.rows() {
            let penalty: f64 = row[3].parse().unwrap();
            assert!(
                penalty.abs() < 0.05,
                "{}: quantization moved MAPE by {penalty} points",
                row[0]
            );
        }
    }

    #[test]
    fn fixed_point_is_cheaper() {
        let ctx = Context::with_days(25);
        let out = run(&ctx);
        let cost = &out.tables[1].1;
        let float: f64 = cost.rows()[0][1].parse().unwrap();
        let fixed: f64 = cost.rows()[1][1].parse().unwrap();
        assert!(fixed < 0.7 * float, "fixed {fixed} vs float {float}");
    }
}
