//! Context experiment — what prediction accuracy buys a harvesting node
//! (the paper's Fig. 1 motivation, closed-loop).

use crate::context::{Context, ExperimentOutput};
use harvest_sim::{
    simulate_node, EnergyNeutralManager, EnergyStorage, GreedyManager, Load, NodeConfig,
    PowerManager, SolarPanel,
};
use param_explore::report::TextTable;
use solar_predict::{
    EwmaPredictor, MovingAveragePredictor, PersistencePredictor, Predictor, WcmaParams,
    WcmaPredictor,
};
use solar_synth::Site;
use solar_trace::{SlotView, SlotsPerDay};

/// The sampling rate of the node loop.
pub const N: u32 = 48;
/// The site used (a variable one, where prediction quality matters).
pub const SITE: Site = Site::Hsu;

fn node_config() -> NodeConfig {
    NodeConfig {
        // 100 cm² panel at 15%: ~1.3 W peak under 900 W/m².
        panel: SolarPanel::new(0.01, 0.15).expect("valid panel"),
        // A small supercapacitor bank: ~25 minutes of full-duty autonomy,
        // so overnight survival requires honest daytime planning.
        storage: EnergyStorage::with_losses(4000.0, 2000.0, 0.9, 0.9, 0.001)
            .expect("valid storage"),
        load: Load::new(0.05, 0.0005).expect("valid load"),
    }
}

/// Runs the energy-neutral manager with four predictors (WCMA guideline,
/// EWMA, moving average, persistence) plus the greedy no-prediction
/// baseline, reporting brownout rate, mean duty and utilization.
pub fn run(ctx: &Context) -> ExperimentOutput {
    let ds = ctx.dataset(SITE);
    let view =
        SlotView::new(&ds.trace, SlotsPerDay::new(N).expect("paper N")).expect("compatible N");
    let n = N as usize;
    let mut table = TextTable::new(vec![
        "Predictor / policy",
        "brownout %",
        "mean duty",
        "utilization %",
    ]);

    type Run = (String, Box<dyn Predictor>, Box<dyn PowerManager>);
    let mut runs: Vec<Run> = vec![
        (
            "WCMA + energy-neutral".into(),
            Box::new(WcmaPredictor::new(
                WcmaParams::new(0.7, 10, 2, n).expect("guideline"),
            )),
            Box::new(EnergyNeutralManager::default()),
        ),
        (
            "EWMA + energy-neutral".into(),
            Box::new(EwmaPredictor::new(0.5, n).expect("valid gamma")),
            Box::new(EnergyNeutralManager::default()),
        ),
        (
            "MovAvg + energy-neutral".into(),
            Box::new(MovingAveragePredictor::new(10, n).expect("valid days")),
            Box::new(EnergyNeutralManager::default()),
        ),
        (
            "Persistence + energy-neutral".into(),
            Box::new(PersistencePredictor::new(n)),
            Box::new(EnergyNeutralManager::default()),
        ),
        (
            "Greedy (no prediction)".into(),
            Box::new(PersistencePredictor::new(n)),
            Box::new(GreedyManager),
        ),
    ];
    for (name, predictor, manager) in &mut runs {
        let report = simulate_node(&view, predictor.as_mut(), manager.as_mut(), &node_config());
        table.push_row(vec![
            name.clone(),
            format!("{:.2}", report.brownout_rate() * 100.0),
            format!("{:.3}", report.mean_duty),
            format!("{:.1}", report.utilization * 100.0),
        ]);
    }

    ExperimentOutput {
        id: "sim-impact",
        title: "Context: prediction quality in the harvested-energy management loop (HSU, N = 48)",
        tables: vec![("main".into(), table)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn managed_node_beats_greedy() {
        let ctx = Context::with_days(45);
        let out = run(&ctx);
        let table = &out.tables[0].1;
        assert_eq!(table.len(), 5);
        let brownout = |row: usize| -> f64 { table.rows()[row][1].parse().unwrap() };
        let wcma = brownout(0);
        let greedy = brownout(4);
        assert!(
            wcma < greedy,
            "prediction-managed node ({wcma}%) must brown out less than greedy ({greedy}%)"
        );
    }
}
