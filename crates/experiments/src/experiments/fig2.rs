//! Fig. 2 — solar energy measured on six days, showing variation within
//! and across days.

use crate::context::{Context, ExperimentOutput};
use param_explore::report::TextTable;
use solar_synth::Site;

/// First day (0-based) of the six-day window; early summer, where both
/// clear and convective days occur.
const FIRST_DAY: usize = 150;

/// Regenerates Fig. 2: the energy received during each 5-minute interval
/// over six consecutive days of the SPMD-like data set. The `series`
/// table is the figure's raw data (one row per interval); the `daily`
/// table summarizes what the figure shows — days differing by integer
/// factors in delivered energy.
pub fn run(ctx: &Context) -> ExperimentOutput {
    let ds = ctx.dataset(Site::Spmd);
    let days = 6.min(ctx.days().saturating_sub(FIRST_DAY).max(1));
    let first = FIRST_DAY.min(ctx.days() - days);
    let res_s = ds.trace.resolution().as_seconds_f64();

    let mut series = TextTable::new(vec!["day", "interval", "energy_j_per_interval"]);
    let mut daily = TextTable::new(vec!["day", "energy_kj_m2", "peak_w_m2"]);
    for d in 0..days {
        let day = ds.trace.day(first + d).expect("window inside trace");
        for (i, &p) in day.iter().enumerate() {
            series.push_row(vec![
                (first + d).to_string(),
                i.to_string(),
                format!("{:.1}", p * res_s),
            ]);
        }
        let energy: f64 = day.iter().sum::<f64>() * res_s;
        let peak = day.iter().copied().fold(0.0, f64::max);
        daily.push_row(vec![
            (first + d).to_string(),
            format!("{:.1}", energy / 1000.0),
            format!("{:.0}", peak),
        ]);
    }
    ExperimentOutput {
        id: "fig2",
        title: "Fig. 2: solar energy on six consecutive days (SPMD)",
        tables: vec![("daily".into(), daily), ("series".into(), series)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_days_of_intervals() {
        let ctx = Context::with_days(160);
        let out = run(&ctx);
        let daily = &out.tables[0].1;
        assert_eq!(daily.len(), 6);
        let series = &out.tables[1].1;
        assert_eq!(series.len(), 6 * 288);
        // Days differ: not all daily energies equal (the figure's point).
        let energies: Vec<&str> = daily.rows().iter().map(|r| r[1].as_str()).collect();
        assert!(energies.iter().any(|&e| e != energies[0]));
    }

    #[test]
    fn short_context_clamps_window() {
        let ctx = Context::with_days(30);
        let out = run(&ctx);
        assert!(!out.tables[0].1.is_empty());
    }
}
