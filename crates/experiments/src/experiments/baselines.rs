//! Ablation — WCMA against the predictors the paper's §I cites.

use crate::context::{Context, ExperimentOutput};
use param_explore::report::{pct, TextTable};
use pred_metrics::ErrorSummary;
use solar_predict::{
    run_predictor, EwmaPredictor, MovingAveragePredictor, PersistencePredictor, Predictor,
    WcmaParams, WcmaPredictor,
};
use solar_trace::{SlotView, SlotsPerDay};

/// The sampling rate of the comparison.
pub const N: u32 = 48;

fn evaluate(ctx: &Context, view: &SlotView<'_>, predictor: &mut dyn Predictor) -> ErrorSummary {
    let log = run_predictor(view, predictor);
    ctx.protocol().evaluate(&log)
}

/// Compares, per site at N = 48: the per-site-optimized WCMA, WCMA at the
/// paper's §IV-B guideline parameters (α = 0.7, D = 10, K = 2), Kansal's
/// EWMA (γ = 0.5), the D = 10 moving average, and persistence.
///
/// This reproduces the context of the paper's introduction: WCMA was
/// proposed as an improvement over EWMA-style predictors, and the
/// guideline configuration should stay close to the per-site optimum.
pub fn run(ctx: &Context) -> ExperimentOutput {
    let n = N as usize;
    let mut table = TextTable::new(vec![
        "Data set",
        "WCMA (opt)",
        "WCMA (guideline)",
        "EWMA g=0.5",
        "MovAvg D=10",
        "Persistence",
    ]);
    for ds in ctx.datasets() {
        let view =
            SlotView::new(&ds.trace, SlotsPerDay::new(N).expect("paper N")).expect("compatible N");
        let opt = ctx.sweep_for(ds.site, N).best_by_mape();
        let mut wcma_opt = WcmaPredictor::new(
            WcmaParams::new(opt.alpha, opt.days, opt.k, n).expect("grid values are valid"),
        );
        let mut wcma_guideline =
            WcmaPredictor::new(WcmaParams::new(0.7, 10, 2, n).expect("guideline values"));
        let mut ewma = EwmaPredictor::new(0.5, n).expect("valid gamma");
        let mut mavg = MovingAveragePredictor::new(10, n).expect("valid days");
        let mut pers = PersistencePredictor::new(n);
        table.push_row(vec![
            ds.site.code().to_string(),
            pct(evaluate(ctx, &view, &mut wcma_opt).mape),
            pct(evaluate(ctx, &view, &mut wcma_guideline).mape),
            pct(evaluate(ctx, &view, &mut ewma).mape),
            pct(evaluate(ctx, &view, &mut mavg).mape),
            pct(evaluate(ctx, &view, &mut pers).mape),
        ]);
    }
    ExperimentOutput {
        id: "baselines",
        title: "Ablation: WCMA vs EWMA / moving average / persistence (N = 48)",
        tables: vec![("main".into(), table)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct_of(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().unwrap()
    }

    #[test]
    fn wcma_beats_baselines_on_average() {
        let ctx = Context::with_days(60);
        let out = run(&ctx);
        let table = &out.tables[0].1;
        assert_eq!(table.len(), 6);
        let mean =
            |col: usize| -> f64 { table.rows().iter().map(|r| pct_of(&r[col])).sum::<f64>() / 6.0 };
        let opt = mean(1);
        let guideline = mean(2);
        let ewma = mean(3);
        let mavg = mean(4);
        assert!(opt <= guideline + 1e-9, "optimum cannot lose to guideline");
        assert!(
            guideline < ewma,
            "guideline WCMA ({guideline}) should beat EWMA ({ewma})"
        );
        assert!(
            opt < mavg,
            "WCMA ({opt}) should beat the moving average ({mavg})"
        );
        // The guideline stays close to the optimum (paper §IV-B).
        assert!(
            guideline - opt < 3.0,
            "guideline within ~3 points of optimal"
        );
    }
}
