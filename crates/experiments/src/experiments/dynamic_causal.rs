//! Ablation — a *causal* dynamic selector against the paper's clairvoyant
//! bound and the static optimum.
//!
//! The paper's §IV-C closes by motivating "dynamic parameters selection
//! algorithms"; this experiment implements one (score each (α, K) by
//! discounted recent error, use the current best) and measures how much
//! of the clairvoyant gain it actually captures.

use crate::context::{Context, ExperimentOutput};
use param_explore::dynamic::clairvoyant_eval;
use param_explore::report::{pct, TextTable};
use solar_predict::dynamic::CausalDynamicWcma;
use solar_predict::run_predictor;
use solar_trace::{SlotView, SlotsPerDay};

/// The sampling rate of the comparison.
pub const N: u32 = 48;

/// Per site at N = 48: static optimal MAPE, the causal dynamic selector's
/// MAPE, and the clairvoyant (α + K) lower bound, all at the static
/// optimum's D.
pub fn run(ctx: &Context) -> ExperimentOutput {
    let alphas = ctx.grid().alphas().to_vec();
    let k_max = ctx.grid().k_max();
    let mut table = TextTable::new(vec![
        "Data set",
        "Static MAPE",
        "Causal dynamic",
        "Clairvoyant K+a",
        "gain captured",
    ]);
    for ds in ctx.datasets() {
        let view =
            SlotView::new(&ds.trace, SlotsPerDay::new(N).expect("paper N")).expect("compatible N");
        let best = ctx.sweep_for(ds.site, N).best_by_mape();
        let mut causal = CausalDynamicWcma::new(best.days, k_max, alphas.clone(), 0.98, N as usize)
            .expect("valid configuration");
        let causal_mape = ctx
            .protocol()
            .evaluate(&run_predictor(&view, &mut causal))
            .mape;
        let oracle = clairvoyant_eval(&view, best.days, &alphas, k_max, ctx.protocol());
        let gain_total = best.mape - oracle.both_mape;
        let gain_causal = best.mape - causal_mape;
        let captured = if gain_total > 1e-12 {
            format!("{:.0}%", 100.0 * gain_causal / gain_total)
        } else {
            "n/a".to_string()
        };
        table.push_row(vec![
            ds.site.code().to_string(),
            pct(best.mape),
            pct(causal_mape),
            pct(oracle.both_mape),
            captured,
        ]);
    }
    ExperimentOutput {
        id: "dynamic-causal",
        title: "Ablation: causal dynamic selection vs clairvoyant bound (N = 48)",
        tables: vec![("main".into(), table)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct_of(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().unwrap()
    }

    #[test]
    fn causal_sits_between_static_and_clairvoyant() {
        let ctx = Context::with_days(60);
        let out = run(&ctx);
        for row in out.tables[0].1.rows() {
            let stat = pct_of(&row[1]);
            let causal = pct_of(&row[2]);
            let oracle = pct_of(&row[3]);
            assert!(oracle <= causal + 1e-9, "{row:?}");
            // The causal selector must not be much worse than static: it
            // converges to the best fixed configuration when adaptation
            // doesn't help.
            assert!(causal <= stat * 1.35 + 0.5, "{row:?}");
        }
    }
}
