//! Extension — memory footprint of the predictor state vs (D, N).
//!
//! The paper's D guideline is argued from accuracy *and* "samples storage
//! memory requirement"; this experiment makes the memory side concrete
//! against the MSP430F1611's 10 KiB RAM.

use crate::context::{Context, ExperimentOutput};
use msp430_energy::memory::{max_feasible_d, MemoryFootprint, SampleFormat, MSP430F1611_RAM_BYTES};
use param_explore::report::TextTable;
use solar_trace::SlotsPerDay;

/// Regenerates the memory analysis: per (N, format), the bytes of the
/// guideline configuration (D = 10, K = 2) and the largest D that still
/// leaves half the MSP430F1611 RAM to the application.
pub fn run(_ctx: &Context) -> ExperimentOutput {
    let mut table = TextTable::new(vec![
        "N",
        "format",
        "bytes @ D=10",
        "% of RAM",
        "max feasible D",
    ]);
    for n in SlotsPerDay::PAPER_VALUES {
        for format in [SampleFormat::F32, SampleFormat::Q16, SampleFormat::AdcU16] {
            let fp = MemoryFootprint::wcma(10, n as usize, 2, format);
            table.push_row(vec![
                n.to_string(),
                format.to_string(),
                fp.total_bytes().to_string(),
                format!("{:.1}", fp.msp430f1611_fraction() * 100.0),
                max_feasible_d(n as usize, 2, format)
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "none".into()),
            ]);
        }
    }
    let mut context = TextTable::new(vec!["quantity", "value"]);
    context.push_row(vec![
        "MSP430F1611 RAM".into(),
        format!("{MSP430F1611_RAM_BYTES} B"),
    ]);
    context.push_row(vec![
        "EWMA baseline state @ N=288".into(),
        format!("{} B", MemoryFootprint::ewma(288).total_bytes()),
    ]);
    ExperimentOutput {
        id: "memory",
        title: "Extension: predictor memory footprint vs (D, N) on MSP430F1611",
        tables: vec![("main".into(), table), ("context".into(), context)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guideline_fits_everywhere_except_fat_n288() {
        let ctx = Context::with_days(25);
        let out = run(&ctx);
        let table = &out.tables[0].1;
        assert_eq!(table.len(), 15);
        for row in table.rows() {
            let n: u32 = row[0].parse().unwrap();
            let pct: f64 = row[3].parse().unwrap();
            if n <= 96 {
                assert!(pct < 50.0, "N={n} {}: {pct}% of RAM", row[1]);
            }
        }
        // At N=288, even packed ADC storage only supports a modest D
        // under the half-RAM bar — the memory side of the N trade-off.
        let u16_row = table
            .rows()
            .iter()
            .find(|r| r[0] == "288" && r[1] == "u16 ADC")
            .unwrap();
        let max_d: usize = u16_row[4].parse().unwrap();
        assert!((3..10).contains(&max_d), "packed N=288 max D {max_d}");
        // At the paper's N=48 focus, the guideline D=10 fits in floats
        // with room to spare.
        let f32_48 = table
            .rows()
            .iter()
            .find(|r| r[0] == "48" && r[1] == "f32")
            .unwrap();
        let max_d48: usize = f32_48[4].parse().unwrap();
        assert!(max_d48 >= 20, "f32 N=48 max D {max_d48}");
    }
}
