//! Table III — optimized parameters and MAPE at every sampling rate N.

use crate::context::{Context, ExperimentOutput};
use param_explore::report::{pct, TextTable};
use param_explore::OptimalConfig;
use solar_synth::Site;

/// The optimized row of one (site, N) cell, exposed for reuse by Table V
/// and Fig. 7.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// The site.
    pub site: Site,
    /// Sampling rate.
    pub n: u32,
    /// Whether this is the degenerate one-sample-per-slot case (†).
    pub degenerate: bool,
    /// The MAPE-optimal configuration.
    pub best: OptimalConfig,
    /// MAPE at the best (α, D) with K fixed to 2, if 2 is on the grid.
    pub mape_at_k2: Option<f64>,
}

/// Computes the Table III rows for every data set and paper N.
pub fn rows(ctx: &Context) -> Vec<Table3Row> {
    let mut out = Vec::new();
    for ds in ctx.datasets() {
        for &n in &ds.paper_n_values() {
            let result = ctx.sweep_for(ds.site, n);
            let best = result.best_by_mape();
            out.push(Table3Row {
                site: ds.site,
                n,
                degenerate: ds.is_degenerate_n(n),
                mape_at_k2: result.best_at_k(2).map(|c| c.mape),
                best,
            });
        }
    }
    out
}

/// Regenerates Table III: per data set and per N ∈ {288, 96, 72, 48, 24},
/// the optimal (α, D, K), the achieved MAPE, and MAPE with K fixed at 2.
///
/// Degenerate one-sample-per-slot rows print the paper's dagger
/// convention (α = 1, D/K n/a, MAPE 0†).
pub fn run(ctx: &Context) -> ExperimentOutput {
    let mut table = TextTable::new(vec!["Data Set", "N", "a", "D", "K", "MAPE", "MAPE@K=2"]);
    for row in rows(ctx) {
        if row.degenerate {
            table.push_row(vec![
                row.site.code().to_string(),
                row.n.to_string(),
                "1".to_string(),
                "n/a".to_string(),
                "n/a".to_string(),
                "0+".to_string(),
                "0+".to_string(),
            ]);
        } else {
            table.push_row(vec![
                row.site.code().to_string(),
                row.n.to_string(),
                format!("{:.1}", row.best.alpha),
                row.best.days.to_string(),
                row.best.k.to_string(),
                pct(row.best.mape),
                row.mape_at_k2.map(pct).unwrap_or_else(|| "n/a".into()),
            ]);
        }
    }
    ExperimentOutput {
        id: "table3",
        title: "Table III: prediction results at different values of N",
        tables: vec![("main".into(), table)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trends_match_paper() {
        let ctx = Context::with_days(60);
        let all = rows(&ctx);
        assert_eq!(all.len(), 6 * 5);
        for ds in ctx.datasets() {
            let site_rows: Vec<&Table3Row> = all.iter().filter(|r| r.site == ds.site).collect();
            // MAPE decreases as N grows (non-degenerate rows).
            let real: Vec<&&Table3Row> = site_rows.iter().filter(|r| !r.degenerate).collect();
            for pair in real.windows(2) {
                // Rows are ordered by descending N.
                assert!(
                    pair[0].best.mape <= pair[1].best.mape + 0.02,
                    "{}: MAPE at N={} ({:.4}) should not exceed N={} ({:.4}) by much",
                    ds.site,
                    pair[0].n,
                    pair[0].best.mape,
                    pair[1].n,
                    pair[1].best.mape
                );
            }
            // MAPE@K=2 is close to the optimum (the paper's K guideline).
            // The bound is loose and restricted to N >= 48 here because
            // this unit test evaluates only ~38 days; the full-year run
            // lands well under 1 point at every N (recorded in
            // EXPERIMENTS.md).
            for r in real.iter().filter(|r| r.n >= 48) {
                if let Some(k2) = r.mape_at_k2 {
                    assert!(
                        k2 - r.best.mape < 0.02,
                        "{} N={}: K=2 penalty {:.4}",
                        r.site,
                        r.n,
                        k2 - r.best.mape
                    );
                }
            }
        }
        // Degenerate rows only for the 5-minute sites at N = 288.
        for r in &all {
            assert_eq!(
                r.degenerate,
                matches!(r.site, Site::Spmd | Site::Ecsu) && r.n == 288
            );
            if r.degenerate {
                assert_eq!(r.best.alpha, 1.0);
                assert!(r.best.mape < 1e-12);
            }
        }
    }

    #[test]
    fn alpha_grows_with_n() {
        let ctx = Context::with_days(60);
        let all = rows(&ctx);
        // Across sites, mean optimal alpha at the highest real N exceeds
        // the mean at N = 24 (the paper's persistence-dominates trend).
        let mean_alpha = |n: u32| {
            let v: Vec<f64> = all
                .iter()
                .filter(|r| r.n == n && !r.degenerate)
                .map(|r| r.best.alpha)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            mean_alpha(96) > mean_alpha(24),
            "alpha at N=96 ({}) should exceed alpha at N=24 ({})",
            mean_alpha(96),
            mean_alpha(24)
        );
    }
}
