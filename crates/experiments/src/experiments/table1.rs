//! Table I — details of the data sets used.

use crate::context::{Context, ExperimentOutput};
use param_explore::report::TextTable;
use solar_trace::stats::TraceStats;

/// Regenerates Table I: per-site observations, days and resolution, plus
/// the variability statistics that motivate the site selection ("variety
/// in solar energy profile variations").
pub fn run(ctx: &Context) -> ExperimentOutput {
    let mut table = TextTable::new(vec![
        "Data Set",
        "Location",
        "Observations",
        "Days",
        "Resolution",
        "Daily-energy CV",
    ]);
    for ds in ctx.datasets() {
        let stats = TraceStats::of(&ds.trace);
        table.push_row(vec![
            ds.site.code().to_string(),
            ds.site.state().to_string(),
            stats.observations.to_string(),
            stats.days.to_string(),
            ds.trace.resolution().to_string(),
            format!("{:.3}", stats.daily_energy_cv),
        ]);
    }
    ExperimentOutput {
        id: "table1",
        title: "Table I: details of the data sets used",
        tables: vec![("main".into(), table)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_six_rows_with_paper_columns() {
        let ctx = Context::with_days(25);
        let out = run(&ctx);
        let table = &out.tables[0].1;
        assert_eq!(table.len(), 6);
        assert_eq!(table.rows()[0][0], "SPMD");
        assert_eq!(table.rows()[5][0], "PFCI");
        assert_eq!(table.rows()[0][4], "5 min");
        assert_eq!(table.rows()[2][4], "1 min");
    }
}
