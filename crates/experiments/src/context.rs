//! Shared state of an experiment run: the data sets and memoized sweeps.

use crate::datasets::{all_datasets, Dataset};
use param_explore::report::TextTable;
use param_explore::{sweep, ParamGrid, SweepResult};
use pred_metrics::EvalProtocol;
use solar_synth::Site;
use solar_trace::{SlotView, SlotsPerDay};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// The rendered output of one experiment: an id matching DESIGN.md §4 and
/// one or more named tables.
#[derive(Clone, Debug)]
pub struct ExperimentOutput {
    /// Experiment id ("table3", "fig6", …).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Named tables, printed in order and saved as `<id>_<name>.csv`.
    pub tables: Vec<(String, TextTable)>,
}

impl ExperimentOutput {
    /// Saves every table as CSV under `dir` and returns the paths.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_csvs(&self, dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        let mut paths = Vec::new();
        for (name, table) in &self.tables {
            let path = dir.join(format!("{}_{}.csv", self.id, name));
            table.save_csv(&path)?;
            paths.push(path);
        }
        Ok(paths)
    }
}

/// Shared context: the generated data sets, the evaluation protocol and a
/// memo of grid sweeps keyed by (site, N), which several experiments
/// share (Table II, Table III, Fig. 7, Table V all reuse them).
pub struct Context {
    datasets: Vec<Dataset>,
    days: usize,
    protocol: EvalProtocol,
    grid: ParamGrid,
    sweeps: RefCell<HashMap<(Site, u32), Rc<SweepResult>>>,
}

impl Context {
    /// The paper's full setup: 365-day data sets, days 21–365 evaluated,
    /// 10% region of interest, full parameter grid.
    pub fn paper() -> Self {
        Context::with_days(365)
    }

    /// A reduced setup for tests and quick runs: `days` days of data
    /// (protocol warm-up unchanged at 20 days).
    pub fn with_days(days: usize) -> Self {
        Context {
            datasets: all_datasets(days),
            days,
            protocol: EvalProtocol::paper(),
            grid: ParamGrid::paper(),
            sweeps: RefCell::new(HashMap::new()),
        }
    }

    /// A small context (90 days) for integration tests.
    pub fn quick() -> Self {
        Context::with_days(90)
    }

    /// The generated data sets in Table I order.
    pub fn datasets(&self) -> &[Dataset] {
        &self.datasets
    }

    /// The data set for a site.
    ///
    /// # Panics
    ///
    /// Panics if the site is missing (cannot happen for contexts built by
    /// the constructors here).
    pub fn dataset(&self, site: Site) -> &Dataset {
        self.datasets
            .iter()
            .find(|d| d.site == site)
            .expect("all sites present")
    }

    /// Days of data per site.
    pub fn days(&self) -> usize {
        self.days
    }

    /// The evaluation protocol (paper §III/§IV-A).
    pub fn protocol(&self) -> &EvalProtocol {
        &self.protocol
    }

    /// The exploration grid (paper §IV-A).
    pub fn grid(&self) -> &ParamGrid {
        &self.grid
    }

    /// The full-grid sweep of `site` at rate `n`, memoized.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a valid slot count for the site's resolution.
    pub fn sweep_for(&self, site: Site, n: u32) -> Rc<SweepResult> {
        if let Some(hit) = self.sweeps.borrow().get(&(site, n)) {
            return Rc::clone(hit);
        }
        let dataset = self.dataset(site);
        let view = SlotView::new(&dataset.trace, SlotsPerDay::new(n).expect("valid N"))
            .expect("N compatible with site resolution");
        let result = Rc::new(sweep(&view, &self.grid, &self.protocol));
        self.sweeps
            .borrow_mut()
            .insert((site, n), Rc::clone(&result));
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_memoizes_sweeps() {
        let ctx = Context::with_days(30);
        let a = ctx.sweep_for(Site::Pfci, 24);
        let b = ctx.sweep_for(Site::Pfci, 24);
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(ctx.datasets().len(), 6);
        assert_eq!(ctx.days(), 30);
    }

    #[test]
    fn output_saves_csvs() {
        let mut table = TextTable::new(vec!["a"]);
        table.push_row(vec!["1".into()]);
        let out = ExperimentOutput {
            id: "test",
            title: "t",
            tables: vec![("main".into(), table)],
        };
        let dir = std::env::temp_dir().join("paper_repro_ctx_test");
        let paths = out.save_csvs(&dir).unwrap();
        assert!(paths[0].exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
