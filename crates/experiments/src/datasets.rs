//! Deterministic generation of the six paper data sets (Table I).

use solar_synth::{Site, TraceGenerator};
use solar_trace::PowerTrace;

/// The fixed seed of the reproduction data sets (the publication year —
/// any constant works; what matters is that every run and every machine
/// regenerates identical traces).
pub const DATASET_SEED: u64 = 2010;

/// One generated data set.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// The site this trace stands in for.
    pub site: Site,
    /// The generated irradiance trace (W/m²).
    pub trace: PowerTrace,
}

impl Dataset {
    /// The sampling rates `N` the paper evaluates for this data set.
    /// All of {288, 96, 72, 48, 24} are representable for both 1- and
    /// 5-minute resolutions; at 5 minutes, `N = 288` is the degenerate
    /// one-sample-per-slot case the paper marks with a dagger.
    pub fn paper_n_values(&self) -> Vec<u32> {
        solar_trace::SlotsPerDay::PAPER_VALUES.to_vec()
    }

    /// `true` if a slot at rate `n` holds exactly one sample (the
    /// degenerate case where MAPE ≡ 0 at α = 1, Table III's †).
    pub fn is_degenerate_n(&self, n: u32) -> bool {
        self.trace.resolution().samples_per_day() == n as usize
    }
}

/// Generates the trace standing in for `site`, covering `days` days.
///
/// # Panics
///
/// Panics if `days` is zero.
pub fn site_trace(site: Site, days: usize) -> PowerTrace {
    TraceGenerator::new(site.config(), DATASET_SEED)
        .generate_days(days)
        .expect("days must be positive")
}

/// Generates all six data sets at `days` days each.
pub fn all_datasets(days: usize) -> Vec<Dataset> {
    Site::ALL
        .iter()
        .map(|&site| Dataset {
            site,
            trace: site_trace(site, days),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use solar_trace::Resolution;

    #[test]
    fn datasets_are_deterministic() {
        let a = site_trace(Site::Ornl, 3);
        let b = site_trace(Site::Ornl, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn table_one_shapes() {
        // Table I: 5-minute sites have 288 samples/day, 1-minute sites
        // 1440; a full year gives 105,120 and 525,600 observations.
        let spmd = site_trace(Site::Spmd, 365);
        assert_eq!(spmd.resolution(), Resolution::FIVE_MINUTES);
        assert_eq!(spmd.len(), 105_120);
        let ornl = site_trace(Site::Ornl, 365);
        assert_eq!(ornl.resolution(), Resolution::ONE_MINUTE);
        assert_eq!(ornl.len(), 525_600);
    }

    #[test]
    fn degenerate_n_detection() {
        let ds = Dataset {
            site: Site::Spmd,
            trace: site_trace(Site::Spmd, 2),
        };
        assert!(ds.is_degenerate_n(288));
        assert!(!ds.is_degenerate_n(48));
        let ds1 = Dataset {
            site: Site::Ornl,
            trace: site_trace(Site::Ornl, 2),
        };
        assert!(!ds1.is_degenerate_n(288));
        assert_eq!(ds.paper_n_values(), vec![288, 96, 72, 48, 24]);
    }
}
