//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--days DAYS] [--out DIR] (all | list | <experiment-id>...)
//! ```
//!
//! Experiment ids are the DESIGN.md §4 identifiers (`table1` … `table5`,
//! `fig2`, `fig6`, `fig7`, plus the ablations). Tables print to stdout
//! and are saved as CSV under `--out` (default `target/experiments`).

use paper_repro::{experiments, Context};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    days: usize,
    out: PathBuf,
    ids: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut days = 365usize;
    let mut out = PathBuf::from("target/experiments");
    let mut ids = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--days" => {
                let value = argv.next().ok_or("--days needs a value")?;
                days = value
                    .parse()
                    .map_err(|_| format!("invalid --days value {value:?}"))?;
                if days < 25 {
                    return Err("--days must be at least 25 (20 warm-up + evaluation)".into());
                }
            }
            "--out" => {
                out = PathBuf::from(argv.next().ok_or("--out needs a value")?);
            }
            "--help" | "-h" => {
                return Err("usage: repro [--days DAYS] [--out DIR] (all | list | <id>...)".into())
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        return Err("no experiment given; try `repro list` or `repro all`".into());
    }
    Ok(Args { days, out, ids })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    if args.ids.iter().any(|id| id == "list") {
        println!("available experiments:");
        for id in experiments::ALL_IDS {
            println!("  {id}");
        }
        return ExitCode::SUCCESS;
    }

    let ids: Vec<&str> = if args.ids.iter().any(|id| id == "all") {
        experiments::ALL_IDS.to_vec()
    } else {
        args.ids.iter().map(String::as_str).collect()
    };

    for id in &ids {
        if experiments::ALL_IDS.iter().all(|known| known != id) {
            eprintln!("unknown experiment {id:?}; try `repro list`");
            return ExitCode::FAILURE;
        }
    }

    eprintln!(
        "generating 6 data sets of {} days (seed {})...",
        args.days,
        paper_repro::datasets::DATASET_SEED
    );
    let ctx = Context::with_days(args.days);

    for id in ids {
        let started = std::time::Instant::now();
        let output = experiments::run_by_id(&ctx, id).expect("id validated above");
        println!("\n=== {} ===", output.title);
        for (name, table) in &output.tables {
            if table.len() > 60 {
                println!("[{name}: {} rows, see CSV]", table.len());
            } else {
                println!("{table}");
            }
        }
        match output.save_csvs(&args.out) {
            Ok(paths) => {
                for path in paths {
                    eprintln!("wrote {}", path.display());
                }
            }
            Err(err) => {
                eprintln!("failed to save CSVs for {id}: {err}");
                return ExitCode::FAILURE;
            }
        }
        eprintln!("[{id} took {:.1?}]", started.elapsed());
    }
    ExitCode::SUCCESS
}
