//! Experiment harness regenerating every table and figure of the DATE'10
//! paper *Evaluation and Design Exploration of Solar Harvested-Energy
//! Prediction Algorithm* (Ali, Al-Hashimi, Recas, Atienza).
//!
//! Each experiment is a library function producing paper-style
//! [`param_explore::report::TextTable`]s; the `repro` binary prints them
//! and saves CSVs under `target/experiments/`. The per-experiment mapping
//! to the paper is catalogued in DESIGN.md §4 and the measured-vs-paper
//! comparison lives in EXPERIMENTS.md.
//!
//! # Example
//!
//! ```no_run
//! use paper_repro::{Context, experiments};
//!
//! // Full-year contexts are expensive; see `Context::quick` for tests.
//! let ctx = Context::paper();
//! let output = experiments::table1::run(&ctx);
//! println!("{}", output.tables[0].1);
//! ```

mod context;
pub mod datasets;
pub mod experiments;

pub use context::{Context, ExperimentOutput};
