//! The machine-readable run report: both observability planes in one
//! JSON document.
//!
//! A [`RunReport`] bundles the deterministic [`Ledger`] with the
//! timing plane (wall time, span tree, per-scenario ranking). The
//! report as a whole is therefore *not* byte-deterministic — it exists
//! for humans and dashboards, not for golden pins. Anything that needs
//! byte-stability should read `report.ledger` (or
//! `Collector::ledger()`) alone.

use crate::json::Json;
use crate::ledger::Ledger;
use crate::spans::{format_ns, ScenarioTiming, SpanNode};

/// The original report schema (no histogram section).
const SCHEMA_V1: &str = "fleet-run-report/1";
/// The current report schema (ledger carries histograms).
const SCHEMA_V2: &str = "fleet-run-report/2";

/// One run's full observability output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// The deterministic plane.
    pub ledger: Ledger,
    /// Wall time from collector start to report assembly.
    pub wall_ns: u64,
    /// Aggregated phase tree (root is the synthetic `run` node).
    pub spans: SpanNode,
    /// Scenarios ranked by span time, heaviest first.
    pub scenario_top: Vec<ScenarioTiming>,
}

impl RunReport {
    /// The report of a collector that never recorded.
    pub fn empty() -> RunReport {
        RunReport {
            ledger: Ledger::new(),
            wall_ns: 0,
            spans: SpanNode {
                name: "run".to_string(),
                ..SpanNode::default()
            },
            scenario_top: Vec::new(),
        }
    }

    /// JSON form: `{schema, ledger, wall_ns, spans, scenario_top}`.
    ///
    /// Reports render as `fleet-run-report/2` — the `/2` schema added
    /// the ledger's `histograms` section. [`RunReport::from_json`]
    /// still reads `/1` documents (their histogram plane is empty).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(SCHEMA_V2.to_string())),
            ("ledger", self.ledger.to_json()),
            ("wall_ns", Json::Num(self.wall_ns as f64)),
            ("spans", self.spans.to_json()),
            (
                "scenario_top",
                Json::Arr(
                    self.scenario_top
                        .iter()
                        .map(ScenarioTiming::to_json)
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Rejects unknown schema tags and structurally invalid sections,
    /// so a consumer (e.g. the CI report check) fails loudly instead of
    /// reading half a document. Both `/1` and `/2` parse: the ledger's
    /// histogram section is optional, which is exactly the `/1`→`/2`
    /// difference.
    pub fn from_json(value: &Json) -> Result<RunReport, String> {
        let schema = value.req_str("schema")?;
        if schema != SCHEMA_V1 && schema != SCHEMA_V2 {
            return Err(format!("unsupported run-report schema {schema:?}"));
        }
        let scenario_top = match value.req("scenario_top")? {
            Json::Arr(items) => items
                .iter()
                .map(ScenarioTiming::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("report field \"scenario_top\" must be an array".to_string()),
        };
        Ok(RunReport {
            ledger: Ledger::from_json(value.req("ledger")?)?,
            wall_ns: value.req_index("wall_ns")?,
            spans: SpanNode::from_json(value.req("spans")?)?,
            scenario_top,
        })
    }

    /// Parses a report from JSON text.
    pub fn from_json_str(text: &str) -> Result<RunReport, String> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Writes the rendered report crash-safely (temp + fsync +
    /// rename via [`crate::fsio::write_atomic`]): a kill mid-write
    /// leaves the previous report (or nothing), never a torn file.
    pub fn write_atomic(&self, path: &std::path::Path) -> Result<(), String> {
        crate::fsio::write_atomic_str(path, &self.to_json_string())
            .map_err(|err| format!("cannot write report: {err}"))
    }

    /// Human-readable summary: wall time, span tree, scenario ranking,
    /// then the ledger.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "run report (wall {})", format_ns(self.wall_ns));
        let _ = writeln!(out, "\nphase spans:");
        out.push_str(&self.spans.render_text());
        if !self.scenario_top.is_empty() {
            let _ = writeln!(out, "\nheaviest scenarios:");
            for entry in &self.scenario_top {
                let _ = writeln!(
                    out,
                    "  {:<32} {:>12}  ({} spans)",
                    entry.scenario,
                    format_ns(entry.total_ns),
                    entry.spans
                );
            }
        }
        let _ = writeln!(out, "\nledger:");
        for line in self.ledger.render_text().lines() {
            let _ = writeln!(out, "  {line}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut ledger = Ledger::new();
        ledger.count("jobs/evaluated", 12);
        ledger.count_scenario("desert", "slots/processed", 96);
        ledger.label("admission/trace_budget_source", "bounded");
        let spans = crate::spans::build_tree(&[crate::spans::SpanRecord {
            path: "fleet/simulate".to_string(),
            scenario: Some("desert".to_string()),
            dur_ns: 1234,
        }]);
        RunReport {
            ledger,
            wall_ns: 5678,
            spans,
            scenario_top: vec![ScenarioTiming {
                scenario: "desert".to_string(),
                total_ns: 1234,
                spans: 1,
            }],
        }
    }

    #[test]
    fn report_json_round_trips() {
        let report = sample();
        let back = RunReport::from_json_str(&report.to_json_string()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn v1_reports_still_parse_and_rerender_as_v2() {
        let mut json = sample().to_json();
        if let Json::Obj(pairs) = &mut json {
            pairs[0].1 = Json::Str(SCHEMA_V1.to_string());
        }
        let report = RunReport::from_json(&json).unwrap();
        assert_eq!(report.ledger.counter("jobs/evaluated"), 12);
        assert!(report.to_json_string().contains(SCHEMA_V2));
    }

    #[test]
    fn report_rejects_unknown_schema() {
        let mut json = sample().to_json();
        if let Json::Obj(pairs) = &mut json {
            pairs[0].1 = Json::Str("fleet-run-report/999".to_string());
        }
        assert!(RunReport::from_json(&json).is_err());
    }

    #[test]
    fn empty_report_round_trips_and_renders() {
        let report = RunReport::empty();
        let back = RunReport::from_json_str(&report.to_json_string()).unwrap();
        assert_eq!(back, report);
        assert!(report.render_text().contains("wall 0ns"));
    }

    #[test]
    fn render_text_covers_spans_scenarios_and_ledger() {
        let text = sample().render_text();
        assert!(text.contains("phase spans:"));
        assert!(text.contains("simulate"));
        assert!(text.contains("heaviest scenarios:"));
        assert!(text.contains("desert"));
        assert!(text.contains("jobs/evaluated: 12"));
    }
}
