//! Dependency-free JSON tree, writer, and parser.
//!
//! The run ledger and reports here — and the scenario catalog and
//! scorecard one crate up (which re-exports this module as
//! `scenario_fleet::json` for source compatibility) — need
//! (de)serialization, and this build environment cannot fetch `serde`
//! (see `vendor/README.md`), so the workspace carries its own ~minimal
//! JSON layer. Two properties matter here beyond correctness:
//!
//! * **Deterministic output** — objects preserve insertion order and
//!   numbers render via Rust's shortest-round-trip float formatting, so
//!   the same value tree always produces byte-identical text (the fleet
//!   determinism tests assert this across thread counts).
//! * **Round-trip fidelity** — `parse(render(v)) == v` for every value
//!   the crate produces (property-tested in the catalog).

use std::fmt::Write as _;

/// A parse failure with the byte offset where parsing stopped.
///
/// Artifact loaders (scorecard shards, run reports, harness envelopes)
/// wrap this into their own typed errors so a truncated or bit-flipped
/// file is reported as "`<artifact>: <what> at byte <where>`" instead of
/// an anonymous string — or worse, a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed. For truncation
    /// ("unexpected end of input") this is the input length.
    pub offset: usize,
    /// What went wrong, without the offset (Display appends it).
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// A JSON value. Objects are ordered vectors, not maps: order in ==
/// order out.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with preserved key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Required-field helpers for deserialization error messages.
    pub fn req(&self, key: &str) -> Result<&Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    /// Required numeric field.
    pub fn req_num(&self, key: &str) -> Result<f64, String> {
        self.req(key)?
            .as_num()
            .ok_or_else(|| format!("field {key:?} must be a number"))
    }

    /// Required non-negative integer field: rejects negative and
    /// fractional numbers instead of silently truncating them, so a
    /// scenario runs with exactly the parameters its author wrote.
    pub fn req_index(&self, key: &str) -> Result<u64, String> {
        let value = self.req_num(key)?;
        // Strict `< 2^64`: `u64::MAX as f64` rounds *up* to 2^64, so a
        // `<=` bound would admit exactly 2^64 and saturate.
        if !(value.is_finite()
            && value >= 0.0
            && value.fract() == 0.0
            && value < 18_446_744_073_709_551_616.0)
        {
            return Err(format!(
                "field {key:?} must be a non-negative integer, got {value}"
            ));
        }
        Ok(value as u64)
    }

    /// Required string field.
    pub fn req_str(&self, key: &str) -> Result<&str, String> {
        self.req(key)?
            .as_str()
            .ok_or_else(|| format!("field {key:?} must be a string"))
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders human-readable JSON indented by two spaces.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_str(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        Self::parse_located(text).map_err(|e| e.to_string())
    }

    /// Parses a JSON document, reporting failures as a structured
    /// [`JsonError`] carrying the byte offset.
    pub fn parse_located(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing input"));
        }
        Ok(value)
    }
}

fn write_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no inf/nan; scorecard metrics are all finite, but a
        // total function keeps the writer panic-free.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Reads four hex digits starting at `at`.
fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, JsonError> {
    let hex = bytes
        .get(at..at + 4)
        .ok_or_else(|| JsonError::at(bytes.len(), "truncated \\u escape"))?;
    let text =
        std::str::from_utf8(hex).map_err(|e| JsonError::at(at, format!("bad \\u escape: {e}")))?;
    u32::from_str_radix(text, 16)
        .map_err(|_| JsonError::at(at, format!("bad \\u escape digits {text:?}")))
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: u8) -> Result<(), JsonError> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == token {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError::at(*pos, format!("expected {:?}", token as char)))
    }
}

/// Nesting ceiling for the recursive parser: scenario/scorecard
/// documents are a few levels deep; a malformed or hostile file must
/// return `Err`, not blow the stack.
const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(JsonError::at(
            *pos,
            format!("nesting deeper than {MAX_DEPTH} levels"),
        ));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at(bytes.len(), "unexpected end of input")),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key_at = *pos;
                let key = match parse_value(bytes, pos, depth + 1)? {
                    Json::Str(s) => s,
                    _ => return Err(JsonError::at(key_at, "object key must be a string")),
                };
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(JsonError::at(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError::at(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err(JsonError::at(bytes.len(), "unterminated string")),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let code = parse_hex4(bytes, *pos + 1)?;
                                *pos += 4;
                                let scalar = match code {
                                    // High surrogate: standard JSON
                                    // encodes non-BMP characters as a
                                    // \uD8xx\uDCxx pair (serde_json and
                                    // Python's ensure_ascii both emit
                                    // these) — combine it.
                                    0xD800..=0xDBFF => {
                                        if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                            return Err(JsonError::at(
                                                *pos,
                                                format!("lone high surrogate \\u{code:04x}"),
                                            ));
                                        }
                                        let low = parse_hex4(bytes, *pos + 3)?;
                                        if !(0xDC00..=0xDFFF).contains(&low) {
                                            return Err(JsonError::at(
                                                *pos,
                                                format!("invalid low surrogate \\u{low:04x}"),
                                            ));
                                        }
                                        *pos += 6;
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                    }
                                    0xDC00..=0xDFFF => {
                                        return Err(JsonError::at(
                                            *pos,
                                            format!("lone low surrogate \\u{code:04x}"),
                                        ))
                                    }
                                    code => code,
                                };
                                s.push(char::from_u32(scalar).ok_or_else(|| {
                                    JsonError::at(*pos, format!("invalid \\u{scalar:04x}"))
                                })?);
                            }
                            other => {
                                return Err(JsonError::at(*pos, format!("bad escape {other:?}")))
                            }
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar.
                        let rest = &bytes[*pos..];
                        let text = std::str::from_utf8(rest)
                            .map_err(|e| JsonError::at(*pos, format!("invalid UTF-8: {e}")))?;
                        let c = text.chars().next().expect("non-empty");
                        s.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos])
                .map_err(|e| JsonError::at(start, format!("invalid UTF-8: {e}")))?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| JsonError::at(start, format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj([
            ("name", Json::Str("désert \"dry\"\n".to_string())),
            ("days", Json::Num(40.0)),
            ("mape", Json::Num(0.1234567890123)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5), Json::Str("x".into())]),
            ),
        ]);
        let compact = doc.render();
        let pretty = doc.render_pretty();
        assert_eq!(Json::parse(&compact).unwrap(), doc);
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(40.0).render(), "40");
        assert_eq!(Json::Num(-3.0).render(), "-3");
        assert_eq!(Json::Num(0.5).render(), "0.5");
    }

    #[test]
    fn output_is_deterministic() {
        let doc = Json::obj([("b", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        assert_eq!(doc.render(), doc.render());
        assert_eq!(doc.render(), r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "nul", "1 2", "{1: 2}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn located_errors_carry_byte_offsets() {
        // Truncation points at the end of input.
        let err = Json::parse_located("{\"a\": 1").unwrap_err();
        assert_eq!(err.offset, 7, "{err}");
        // A mid-document syntax error points at the offending byte.
        let err = Json::parse_located(r#"{"a": 1 "b": 2}"#).unwrap_err();
        assert_eq!(err.offset, 8, "{err}");
        // Display appends the offset so string-typed surfaces keep it.
        assert!(err.to_string().contains("at byte 8"), "{err}");
        // Trailing garbage after a complete value.
        let err = Json::parse_located("1 2").unwrap_err();
        assert_eq!(err.offset, 2, "{err}");
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        let hostile = "[".repeat(200_000) + &"]".repeat(200_000);
        let err = Json::parse(&hostile).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // A document at reasonable depth still parses.
        let fine = "[".repeat(100) + "1" + &"]".repeat(100);
        assert!(Json::parse(&fine).is_ok());
    }

    #[test]
    fn req_index_rejects_negative_and_fractional() {
        let doc =
            Json::parse(r#"{"a": -5, "b": 2.9, "c": 40, "d": 1e20, "e": 18446744073709551616}"#)
                .unwrap();
        assert!(doc.req_index("a").is_err());
        assert!(doc.req_index("b").is_err());
        assert_eq!(doc.req_index("c").unwrap(), 40);
        assert!(doc.req_index("d").is_err());
        // Exactly 2^64: would saturate through `as u64` if admitted.
        assert!(doc.req_index("e").is_err());
    }

    #[test]
    fn surrogate_pairs_decode_to_non_bmp_characters() {
        // A sun-with-face emoji (U+1F31E), escaped the way serde_json /
        // Python's ensure_ascii emit non-BMP characters.
        let doc = Json::parse(r#""\ud83c\udf1e clear""#).unwrap();
        assert_eq!(doc, Json::Str("\u{1F31E} clear".to_string()));
        // BMP escapes still work.
        assert_eq!(
            Json::parse(r#""\u00e9""#).unwrap(),
            Json::Str("\u{e9}".to_string())
        );
        // Lone or malformed surrogates are rejected.
        for bad in [
            r#""\ud83c""#,
            r#""\ud83cAB""#,
            r#""\ud83cA""#,
            r#""\udf1e""#,
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = Json::parse(r#"{"site": {"preset": "PFCI"}, "days": 40}"#).unwrap();
        assert_eq!(doc.req_num("days").unwrap(), 40.0);
        assert_eq!(doc.req("site").unwrap().req_str("preset").unwrap(), "PFCI");
        assert!(doc.req_str("days").is_err());
        assert!(doc.req("missing").is_err());
    }
}
