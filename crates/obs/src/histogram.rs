//! Deterministic log-scale histograms for the ledger plane.
//!
//! A [`Histogram`] records a *distribution* (per-scenario MAPE, slots
//! per work unit, tuner candidates per round) under the same contract
//! as ledger counters: every observation is a pure function of the
//! run's inputs, merge is bucket-wise summation (commutative and
//! associative), and the JSON form renders in sorted bucket order — so
//! a histogram is byte-identical across thread counts and shard
//! splits whenever its observations are.
//!
//! # The bucket-edge contract
//!
//! Bucket edges are **part of the byte-pinned schema**: changing them
//! changes every committed ledger, so they are fixed, not
//! configurable. A finite value `v > 0` lands in the bucket indexed
//!
//! ```text
//! index = 4·e + m
//! ```
//!
//! where `e` is the unbiased IEEE-754 exponent of `v` and `m` is the
//! top two mantissa bits — four log-spaced buckets per octave, with
//! bucket `index` covering the half-open range
//!
//! ```text
//! [ 2^⌊index/4⌋ · (1 + (index mod 4)/4),  next edge )
//! ```
//!
//! The index is computed by bit manipulation alone (no `log2`, no
//! libm), so bucketing is exact and identical on every platform.
//! Indices clamp to `[MIN_BUCKET, MAX_BUCKET]` (≈ `9.3e-10` to
//! `2.2e12`); zero, negative, and non-finite observations count in a
//! separate `zeros` bucket rather than poisoning a numeric one.

use crate::json::Json;
use std::collections::BTreeMap;

/// Lowest bucket index: values below ~2^-30 clamp here.
pub const MIN_BUCKET: i32 = 4 * -30;
/// Highest bucket index: values at or above ~2^41 clamp here.
pub const MAX_BUCKET: i32 = 4 * 40 + 3;

/// Glyphs for [`Histogram::sparkline`], lowest to highest.
const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Widest sparkline rendered before buckets are grouped into cells.
const SPARK_CELLS: usize = 32;

/// A deterministic log-scale histogram; merge sums bucket-wise.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Observation counts keyed by bucket index (sparse; sorted).
    buckets: BTreeMap<i32, u64>,
    /// Observations that have no log-scale bucket: zero, negative,
    /// NaN, and infinite values.
    zeros: u64,
}

/// The bucket index for a finite positive value, clamped to the fixed
/// range; `None` for zero, negative, and non-finite values.
pub fn bucket_index(value: f64) -> Option<i32> {
    if !value.is_finite() || value <= 0.0 {
        return None;
    }
    let bits = value.to_bits();
    let exponent = ((bits >> 52) & 0x7ff) as i32 - 1023;
    let mantissa_top = ((bits >> 50) & 0x3) as i32;
    // Subnormals decode as exponent -1023, far below MIN_BUCKET, so
    // the clamp handles them without a special case.
    Some((4 * exponent + mantissa_top).clamp(MIN_BUCKET, MAX_BUCKET))
}

/// The inclusive lower edge of bucket `index` (exact: a power of two
/// scaled by 1, 1.25, 1.5, or 1.75).
pub fn bucket_lower_edge(index: i32) -> f64 {
    let exponent = index.div_euclid(4);
    let quarter = index.rem_euclid(4);
    let pow2 = f64::from_bits(((exponent + 1023) as u64) << 52);
    pow2 * (1.0 + quarter as f64 / 4.0)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Whether nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty() && self.zeros == 0
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        match bucket_index(value) {
            Some(index) => *self.buckets.entry(index).or_default() += 1,
            None => self.zeros += 1,
        }
    }

    /// Total observations, including the `zeros` bucket.
    pub fn count(&self) -> u64 {
        self.zeros + self.buckets.values().sum::<u64>()
    }

    /// Observations that had no log-scale bucket.
    pub fn zeros(&self) -> u64 {
        self.zeros
    }

    /// The count in bucket `index` (0 when never hit).
    pub fn bucket(&self, index: i32) -> u64 {
        self.buckets.get(&index).copied().unwrap_or(0)
    }

    /// Sorted `(bucket index, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (i32, u64)> + '_ {
        self.buckets.iter().map(|(&k, &v)| (k, v))
    }

    /// Bucket-wise sum; the histogram analogue of counter merge.
    pub fn merge(&mut self, other: &Histogram) {
        self.zeros += other.zeros;
        for (&index, &n) in &other.buckets {
            *self.buckets.entry(index).or_default() += n;
        }
    }

    /// The smallest bucket lower edge at or above quantile `q`
    /// (0 ≤ q ≤ 1) over the bucketed observations, ignoring `zeros`.
    /// `None` when no bucketed observations exist.
    pub fn quantile_edge(&self, q: f64) -> Option<f64> {
        let total: u64 = self.buckets.values().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (&index, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(bucket_lower_edge(index));
            }
        }
        None
    }

    /// Deterministic JSON: `{"zeros": n, "buckets": {"<index>": n}}`,
    /// bucket keys in ascending numeric order.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("zeros", Json::Num(self.zeros as f64)),
            (
                "buckets",
                Json::Obj(
                    self.buckets
                        .iter()
                        .map(|(index, n)| (index.to_string(), Json::Num(*n as f64)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses the JSON form.
    ///
    /// # Errors
    ///
    /// Rejects non-integer bucket keys, out-of-range indices, and
    /// counts that are not non-negative integers.
    pub fn from_json(value: &Json) -> Result<Histogram, String> {
        let zeros = value.req_index("zeros")?;
        let section = value.req("buckets")?;
        let buckets = match section {
            Json::Obj(pairs) => {
                let mut map = BTreeMap::new();
                for (key, _) in pairs {
                    let index: i32 = key
                        .parse()
                        .map_err(|_| format!("histogram bucket key {key:?} is not an integer"))?;
                    if !(MIN_BUCKET..=MAX_BUCKET).contains(&index) {
                        return Err(format!("histogram bucket index {index} out of range"));
                    }
                    map.insert(index, section.req_index(key)?);
                }
                map
            }
            _ => return Err("histogram field \"buckets\" must be an object".to_string()),
        };
        Ok(Histogram { buckets, zeros })
    }

    /// A unicode sparkline over the occupied bucket range (≤
    /// `SPARK_CELLS` cells; adjacent buckets group when the range is
    /// wider). Empty string when nothing has been observed.
    pub fn sparkline(&self) -> String {
        let (Some((&lo, _)), Some((&hi, _))) = (
            self.buckets.first_key_value(),
            self.buckets.last_key_value(),
        ) else {
            return String::new();
        };
        let span = (hi - lo + 1) as usize;
        let cells = span.min(SPARK_CELLS);
        let mut grouped = vec![0u64; cells];
        for (&index, &n) in &self.buckets {
            let cell = ((index - lo) as usize * cells) / span;
            grouped[cell] += n;
        }
        let max = grouped.iter().copied().max().unwrap_or(0).max(1);
        grouped
            .iter()
            .map(|&n| {
                if n == 0 {
                    '·'
                } else {
                    SPARK[(((n * SPARK.len() as u64 - 1) / max) as usize).min(SPARK.len() - 1)]
                }
            })
            .collect()
    }

    /// One-line summary: count, zeros, edge range, sparkline.
    pub fn render_line(&self) -> String {
        if self.buckets.is_empty() {
            return format!("count {} (all zero/out-of-range)", self.count());
        }
        let lo = *self.buckets.first_key_value().expect("non-empty").0;
        let hi = *self.buckets.last_key_value().expect("non-empty").0;
        format!(
            "count {} [{:.3e}, {:.3e}) {}{}",
            self.count(),
            bucket_lower_edge(lo),
            bucket_lower_edge(hi + 1),
            self.sparkline(),
            if self.zeros > 0 {
                format!(" (+{} zero)", self.zeros)
            } else {
                String::new()
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_the_documented_edges() {
        // 1.0 = 2^0 with top mantissa bits 00 → index 0.
        assert_eq!(bucket_index(1.0), Some(0));
        assert_eq!(bucket_index(1.25), Some(1));
        assert_eq!(bucket_index(1.5), Some(2));
        assert_eq!(bucket_index(1.75), Some(3));
        assert_eq!(bucket_index(2.0), Some(4));
        assert_eq!(bucket_index(0.5), Some(-4));
        // Every value lands at or above its bucket's lower edge and
        // below the next bucket's edge.
        for &v in &[1e-6, 0.037, 0.99, 1.0, 3.2, 240.0, 86400.0] {
            let index = bucket_index(v).unwrap();
            assert!(bucket_lower_edge(index) <= v, "edge ≤ {v}");
            assert!(v < bucket_lower_edge(index + 1), "{v} < next edge");
        }
    }

    #[test]
    fn out_of_range_values_clamp_and_specials_go_to_zeros() {
        assert_eq!(bucket_index(1e-300), Some(MIN_BUCKET));
        assert_eq!(bucket_index(f64::MIN_POSITIVE / 4.0), Some(MIN_BUCKET));
        assert_eq!(bucket_index(1e300), Some(MAX_BUCKET));
        assert_eq!(bucket_index(0.0), None);
        assert_eq!(bucket_index(-1.0), None);
        assert_eq!(bucket_index(f64::NAN), None);
        assert_eq!(bucket_index(f64::INFINITY), None);
        let mut hist = Histogram::new();
        hist.observe(0.0);
        hist.observe(f64::NAN);
        hist.observe(2.0);
        assert_eq!(hist.zeros(), 2);
        assert_eq!(hist.count(), 3);
        assert_eq!(hist.bucket(4), 1);
    }

    #[test]
    fn merge_is_bucket_wise_summation() {
        let mut a = Histogram::new();
        a.observe(1.0);
        a.observe(3.0);
        a.observe(0.0);
        let mut b = Histogram::new();
        b.observe(3.0);
        b.observe(3.1);
        let mut merged = a.clone();
        merged.merge(&b);
        // Merge equals observing everything into one histogram.
        let mut whole = Histogram::new();
        for v in [1.0, 3.0, 0.0, 3.0, 3.1] {
            whole.observe(v);
        }
        assert_eq!(merged, whole);
        assert_eq!(merged.count(), 5);
        // And it commutes.
        let mut swapped = b.clone();
        swapped.merge(&a);
        assert_eq!(swapped, merged);
    }

    #[test]
    fn json_round_trips_and_is_deterministic() {
        let mut hist = Histogram::new();
        for v in [0.0037, 0.04, 0.04, 1.9, 240.0, 0.0] {
            hist.observe(v);
        }
        let text = hist.to_json().render_pretty();
        let back = Histogram::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, hist);
        assert_eq!(back.to_json().render_pretty(), text);
        // Observation order never shows through.
        let mut reversed = Histogram::new();
        for v in [0.0, 240.0, 1.9, 0.04, 0.04, 0.0037] {
            reversed.observe(v);
        }
        assert_eq!(reversed.to_json().render_pretty(), text);
    }

    #[test]
    fn from_json_rejects_malformed_histograms() {
        let parse = |s: &str| Histogram::from_json(&Json::parse(s).unwrap());
        assert!(parse(r#"{"zeros": 0}"#).is_err());
        assert!(parse(r#"{"zeros": 0, "buckets": {"x": 1}}"#).is_err());
        assert!(parse(r#"{"zeros": 0, "buckets": {"9999": 1}}"#).is_err());
        assert!(parse(r#"{"zeros": 0, "buckets": {"0": -2}}"#).is_err());
        assert!(parse(r#"{"zeros": -1, "buckets": {}}"#).is_err());
    }

    #[test]
    fn quantile_edge_walks_the_cumulative_counts() {
        let mut hist = Histogram::new();
        for _ in 0..9 {
            hist.observe(1.0);
        }
        hist.observe(1000.0);
        assert_eq!(hist.quantile_edge(0.5), Some(1.0));
        assert_eq!(hist.quantile_edge(0.0), Some(1.0));
        let p99 = hist.quantile_edge(0.99).unwrap();
        assert!(p99 <= 1000.0 && p99 > 512.0, "p99 edge near 1000: {p99}");
        assert_eq!(Histogram::new().quantile_edge(0.5), None);
    }

    #[test]
    fn sparkline_spans_the_occupied_range() {
        let mut hist = Histogram::new();
        for _ in 0..50 {
            hist.observe(1.0);
        }
        hist.observe(16.0);
        let line = hist.sparkline();
        assert_eq!(line.chars().count(), 17, "one cell per bucket in range");
        assert_eq!(line.chars().next(), Some('█'));
        assert_eq!(line.chars().last(), Some('▁'));
        assert!(line.contains('·'), "unoccupied buckets render hollow");
        assert_eq!(Histogram::new().sparkline(), "");
        // A wide range groups down to the cell budget.
        let mut wide = Histogram::new();
        wide.observe(1e-6);
        wide.observe(1e6);
        assert_eq!(wide.sparkline().chars().count(), SPARK_CELLS);
    }
}
