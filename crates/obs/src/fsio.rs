//! Crash-safe file writes: temp file + fsync + atomic rename.
//!
//! Every artifact this workspace persists — run reports, archive
//! JSONL, harness shard envelopes — lands through [`write_atomic`], so
//! a crash (or a chaos-injected worker kill) mid-write can leave
//! behind either the old file or the new one, never a torn hybrid.
//! The sequence is the standard one:
//!
//! 1. write the full contents to a unique dot-temp file in the target
//!    directory (same filesystem, so the rename cannot degrade to a
//!    copy),
//! 2. `fsync` the temp file so the data is durable before it becomes
//!    visible under the real name,
//! 3. `rename` over the target — atomic on POSIX,
//! 4. best-effort `fsync` of the parent directory so the rename itself
//!    survives power loss (some filesystems don't support directory
//!    fsync; that failure is ignored by design).
//!
//! Readers still defend in depth (the harness artifact envelope
//! carries a length + checksum) because not every byte that reaches a
//! loader came from this writer.

use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes temp files from concurrent writers in one process
/// (e.g. parallel tests targeting sibling paths).
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` crash-safely (temp + fsync + rename).
///
/// Parent directories are created if missing. On any failure the
/// target file is left untouched (either absent or holding its prior
/// contents) and the temp file is cleaned up best-effort.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), String> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    fs::create_dir_all(&dir).map_err(|e| format!("creating directory {}: {e}", dir.display()))?;
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| format!("invalid target path {}", path.display()))?;
    let tmp = dir.join(format!(
        ".{file_name}.tmp.{}.{}",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));

    let write_result = (|| -> Result<(), String> {
        let mut file =
            File::create(&tmp).map_err(|e| format!("creating {}: {e}", tmp.display()))?;
        file.write_all(bytes)
            .map_err(|e| format!("writing {}: {e}", tmp.display()))?;
        file.sync_all()
            .map_err(|e| format!("syncing {}: {e}", tmp.display()))?;
        fs::rename(&tmp, path)
            .map_err(|e| format!("renaming {} over {}: {e}", tmp.display(), path.display()))?;
        Ok(())
    })();
    if write_result.is_err() {
        let _ = fs::remove_file(&tmp);
        return write_result;
    }

    // Durability of the rename itself; unsupported on some
    // filesystems, so failures are deliberately ignored.
    if let Ok(dir_handle) = File::open(&dir) {
        let _ = dir_handle.sync_all();
    }
    Ok(())
}

/// String-payload convenience over [`write_atomic`].
pub fn write_atomic_str(path: &Path, text: &str) -> Result<(), String> {
    write_atomic(path, text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fleet_fsio_{tag}_{}_{}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces_contents() {
        let dir = temp_dir("replace");
        let path = dir.join("report.json");
        write_atomic_str(&path, "first").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first");
        write_atomic_str(&path, "second").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn creates_missing_parent_directories() {
        let dir = temp_dir("mkdirs");
        let path = dir.join("nested/deeper/out.json");
        write_atomic_str(&path, "x").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "x");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leaves_no_temp_files_behind() {
        let dir = temp_dir("clean");
        write_atomic_str(&dir.join("a.json"), "a").unwrap();
        write_atomic_str(&dir.join("a.json"), "b").unwrap();
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["a.json".to_string()], "{names:?}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
