//! The timing plane: hierarchical phase spans.
//!
//! Spans are the *non-deterministic* half of observability — they carry
//! wall-clock nanoseconds and therefore never appear in byte-pinned
//! JSON. A span is identified by a '/'-separated path (`fleet/simulate`
//! nests under `fleet`), optionally tagged with the scenario it worked
//! on. Raw [`SpanRecord`]s are flat; [`build_tree`] folds them into a
//! [`SpanNode`] hierarchy with total/self splits, and
//! [`scenario_top`] ranks scenarios by time spent for the per-scenario
//! "where did it go" view.

use crate::json::Json;

/// One finished span, flat, as recorded by a worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// '/'-separated phase path, e.g. `fleet/simulate`.
    pub path: String,
    /// Scenario the span worked on, when it was scenario-scoped.
    pub scenario: Option<String>,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// An aggregated node of the span tree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanNode {
    /// Last path segment (`simulate` for `fleet/simulate`).
    pub name: String,
    /// Nanoseconds recorded at exactly this path, summed over entries.
    pub total_ns: u64,
    /// `total_ns` minus time covered by direct children, clamped at 0
    /// (children recorded outside an enclosing span can exceed it).
    pub self_ns: u64,
    /// How many spans were recorded at this path.
    pub count: u64,
    /// Child phases, heaviest first.
    pub children: Vec<SpanNode>,
}

/// Time attributed to one scenario across all spans tagged with it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioTiming {
    pub scenario: String,
    pub total_ns: u64,
    pub spans: u64,
}

impl SpanNode {
    fn child_mut(&mut self, name: &str) -> &mut SpanNode {
        // Linear scan: span trees are a handful of phases wide.
        let at = match self.children.iter().position(|c| c.name == name) {
            Some(at) => at,
            None => {
                self.children.push(SpanNode {
                    name: name.to_string(),
                    ..SpanNode::default()
                });
                self.children.len() - 1
            }
        };
        &mut self.children[at]
    }

    fn finalize(&mut self) {
        let covered: u64 = self.children.iter().map(|c| c.total_ns).sum();
        self.self_ns = self.total_ns.saturating_sub(covered);
        for child in &mut self.children {
            child.finalize();
        }
        // Heaviest first; name breaks ties so equal-duration siblings
        // still render in one stable order.
        self.children
            .sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    }

    /// JSON form of this node and its subtree.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("total_ns", Json::Num(self.total_ns as f64)),
            ("self_ns", Json::Num(self.self_ns as f64)),
            ("count", Json::Num(self.count as f64)),
            (
                "children",
                Json::Arr(self.children.iter().map(SpanNode::to_json).collect()),
            ),
        ])
    }

    /// Parses a node (and subtree) back from JSON.
    pub fn from_json(value: &Json) -> Result<SpanNode, String> {
        let children = match value.req("children")? {
            Json::Arr(items) => items
                .iter()
                .map(SpanNode::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("span field \"children\" must be an array".to_string()),
        };
        Ok(SpanNode {
            name: value.req_str("name")?.to_string(),
            total_ns: value.req_index("total_ns")?,
            self_ns: value.req_index("self_ns")?,
            count: value.req_index("count")?,
            children,
        })
    }

    /// Renders an indented tree, one line per phase:
    /// `name  total  (self xx%)  ×count`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        let pct = if self.total_ns == 0 {
            100.0
        } else {
            self.self_ns as f64 * 100.0 / self.total_ns as f64
        };
        let _ = writeln!(
            out,
            "{:indent$}{:<24} {:>12}  (self {:>3.0}%)  x{}",
            "",
            self.name,
            format_ns(self.total_ns),
            pct,
            self.count,
            indent = depth * 2,
        );
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }
}

/// Renders nanoseconds with a readable unit.
pub fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Folds flat records into the aggregated phase tree rooted at `run`.
pub fn build_tree(records: &[SpanRecord]) -> SpanNode {
    let mut root = SpanNode {
        name: "run".to_string(),
        ..SpanNode::default()
    };
    for record in records {
        let mut node = &mut root;
        for segment in record.path.split('/').filter(|s| !s.is_empty()) {
            node = node.child_mut(segment);
        }
        node.total_ns += record.dur_ns;
        node.count += 1;
    }
    root.total_ns = root.children.iter().map(|c| c.total_ns).sum();
    root.finalize();
    root
}

/// The `top_n` scenarios by recorded span time, heaviest first (name
/// breaks ties for a stable order).
pub fn scenario_top(records: &[SpanRecord], top_n: usize) -> Vec<ScenarioTiming> {
    let mut by_scenario = std::collections::BTreeMap::<&str, (u64, u64)>::new();
    for record in records {
        if let Some(scenario) = &record.scenario {
            let slot = by_scenario.entry(scenario).or_default();
            slot.0 += record.dur_ns;
            slot.1 += 1;
        }
    }
    let mut ranked: Vec<ScenarioTiming> = by_scenario
        .into_iter()
        .map(|(scenario, (total_ns, spans))| ScenarioTiming {
            scenario: scenario.to_string(),
            total_ns,
            spans,
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.total_ns
            .cmp(&a.total_ns)
            .then(a.scenario.cmp(&b.scenario))
    });
    ranked.truncate(top_n);
    ranked
}

impl ScenarioTiming {
    /// JSON form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", Json::Str(self.scenario.clone())),
            ("total_ns", Json::Num(self.total_ns as f64)),
            ("spans", Json::Num(self.spans as f64)),
        ])
    }

    /// Parses back from JSON.
    pub fn from_json(value: &Json) -> Result<ScenarioTiming, String> {
        Ok(ScenarioTiming {
            scenario: value.req_str("scenario")?.to_string(),
            total_ns: value.req_index("total_ns")?,
            spans: value.req_index("spans")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(path: &str, scenario: Option<&str>, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            path: path.to_string(),
            scenario: scenario.map(str::to_string),
            dur_ns,
        }
    }

    #[test]
    fn tree_aggregates_paths_and_splits_self_time() {
        let records = vec![
            rec("fleet", None, 100),
            rec("fleet/synthesis", None, 30),
            rec("fleet/simulate", Some("a"), 25),
            rec("fleet/simulate", Some("b"), 35),
        ];
        let root = build_tree(&records);
        assert_eq!(root.total_ns, 100);
        let fleet = &root.children[0];
        assert_eq!(fleet.name, "fleet");
        assert_eq!(fleet.count, 1);
        // 100 total − (30 + 60) children = 10 self.
        assert_eq!(fleet.self_ns, 10);
        // Heaviest child first.
        assert_eq!(fleet.children[0].name, "simulate");
        assert_eq!(fleet.children[0].total_ns, 60);
        assert_eq!(fleet.children[0].count, 2);
        assert_eq!(fleet.children[1].name, "synthesis");
    }

    #[test]
    fn self_time_clamps_when_children_exceed_parent() {
        let records = vec![rec("fleet", None, 10), rec("fleet/simulate", None, 50)];
        let root = build_tree(&records);
        assert_eq!(root.children[0].self_ns, 0);
    }

    #[test]
    fn scenario_top_ranks_heaviest_first_and_truncates() {
        let records = vec![
            rec("fleet/simulate", Some("a"), 10),
            rec("fleet/simulate", Some("b"), 40),
            rec("fleet/score", Some("b"), 5),
            rec("fleet/simulate", Some("c"), 20),
            rec("fleet/merge", None, 99),
        ];
        let top = scenario_top(&records, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].scenario, "b");
        assert_eq!(top[0].total_ns, 45);
        assert_eq!(top[0].spans, 2);
        assert_eq!(top[1].scenario, "c");
    }

    #[test]
    fn equal_duration_siblings_render_in_stable_name_order() {
        // Heaviest-first sorting must fall back to path order on equal
        // totals, or `render_text` would depend on insertion (thread)
        // order. Build the same tie twice with opposite insertion
        // orders and pin both the order and the rendered text.
        let forward = build_tree(&[
            rec("fleet/alpha", None, 500),
            rec("fleet/omega", None, 500),
            rec("fleet/mid", Some("a"), 500),
        ]);
        let reversed = build_tree(&[
            rec("fleet/mid", Some("a"), 500),
            rec("fleet/omega", None, 500),
            rec("fleet/alpha", None, 500),
        ]);
        let names: Vec<&str> = forward.children[0]
            .children
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, ["alpha", "mid", "omega"]);
        assert_eq!(forward, reversed);
        assert_eq!(forward.render_text(), reversed.render_text());
        // The scenario ranking breaks span-time ties the same way.
        let top = scenario_top(
            &[
                rec("fleet", Some("zeta"), 500),
                rec("fleet", Some("beta"), 500),
            ],
            10,
        );
        assert_eq!(top[0].scenario, "beta");
        assert_eq!(top[1].scenario, "zeta");
    }

    #[test]
    fn node_json_round_trips() {
        let root = build_tree(&[
            rec("fleet", None, 100),
            rec("fleet/simulate", Some("a"), 60),
        ]);
        let back = SpanNode::from_json(&root.to_json()).unwrap();
        assert_eq!(back, root);
    }

    #[test]
    fn render_text_indents_children() {
        let text = build_tree(&[rec("fleet", None, 2_500_000), rec("fleet/score", None, 500)])
            .render_text();
        assert!(text.contains("run"));
        assert!(text.contains("fleet"));
        assert!(text.contains("2.50ms"));
        assert!(text.contains("  score") || text.contains("score"));
    }

    #[test]
    fn format_ns_picks_units() {
        assert_eq!(format_ns(12), "12ns");
        assert_eq!(format_ns(1_500), "1.5us");
        assert_eq!(format_ns(2_500_000), "2.50ms");
        assert_eq!(format_ns(3_000_000_000), "3.000s");
    }
}
