//! Structural comparison of two run reports.
//!
//! A [`ReportDiff`] turns "eyeball two JSON files" into a machine
//! verdict: it walks both observability planes of a *before* and an
//! *after* [`RunReport`] and classifies the run pair as
//! [`Verdict::Clean`], [`Verdict::Drifted`], or [`Verdict::Regressed`].
//!
//! The two planes are judged by different rules, matching their
//! contracts:
//!
//! - **deterministic plane** (counters, per-scenario counters, gauges,
//!   labels, histograms): *any* delta is a regression. Two runs of the
//!   same workload must agree bit-for-bit, so a changed counter means
//!   the work itself changed — the property the CI sentinel fails on;
//! - **timing plane** (span tree, wall time): compared with a
//!   configurable noise threshold ([`DiffConfig`]). Small wall-time
//!   movement is [`Verdict::Clean`], movement beyond the noise ratio
//!   is [`Verdict::Drifted`], and blowing past the regression
//!   multiplier is [`Verdict::Regressed`].
//!
//! Scenario drift is ranked by the summed absolute counter delta, so
//! the worst-regressing scenario leads every report.

use crate::json::Json;
use crate::ledger::Ledger;
use crate::report::RunReport;
use crate::spans::{format_ns, SpanNode};
use std::collections::BTreeMap;

/// Thresholds for the timing plane (the deterministic plane takes no
/// configuration: any delta there is a regression).
#[derive(Clone, Copy, Debug)]
pub struct DiffConfig {
    /// Relative wall-time change treated as noise (0.25 = ±25%).
    pub wall_noise_ratio: f64,
    /// Spans shorter than this on both sides are never compared —
    /// micro-spans jitter freely.
    pub wall_min_ns: u64,
    /// A span growing past `before × ratio` (and the floor) regresses
    /// the verdict instead of merely drifting it.
    pub wall_regress_ratio: f64,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            wall_noise_ratio: 0.25,
            wall_min_ns: 1_000_000,
            wall_regress_ratio: 4.0,
        }
    }
}

/// The machine-readable outcome of a diff.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Deterministic planes identical; timing within noise.
    Clean,
    /// Deterministic planes identical; timing moved beyond noise.
    Drifted,
    /// A deterministic value changed, or timing blew the regression
    /// multiplier.
    Regressed,
}

impl Verdict {
    /// The canonical lowercase tag (`clean` / `drifted` / `regressed`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Clean => "clean",
            Verdict::Drifted => "drifted",
            Verdict::Regressed => "regressed",
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One changed counter or gauge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterDelta {
    pub key: String,
    pub before: u64,
    pub after: u64,
}

impl CounterDelta {
    /// Signed change (`after - before`).
    pub fn delta(&self) -> i64 {
        self.after as i64 - self.before as i64
    }
}

/// One changed (or appearing/disappearing) label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabelChange {
    pub key: String,
    pub before: Option<String>,
    pub after: Option<String>,
}

/// All counter movement inside one scenario, ranked by magnitude.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioDrift {
    pub scenario: String,
    /// Σ |Δ| across this scenario's counters — the ranking key.
    pub magnitude: u64,
    pub deltas: Vec<CounterDelta>,
}

/// One histogram whose shape moved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramDelta {
    pub key: String,
    /// L1 distance between the bucket vectors (including `zeros`).
    pub l1: u64,
    pub before_count: u64,
    pub after_count: u64,
    /// Sparklines for the findings report ("" when absent on a side).
    pub before_spark: String,
    pub after_spark: String,
}

/// One span path whose wall time moved beyond noise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanDelta {
    /// Full `a/b/c` path below the synthetic root.
    pub path: String,
    pub before_ns: u64,
    pub after_ns: u64,
    /// Whether this span alone pushes the verdict to `Regressed`.
    pub regressed: bool,
}

/// The structural diff of two run reports.
#[derive(Clone, Debug, PartialEq)]
pub struct ReportDiff {
    pub verdict: Verdict,
    /// Run-level counter changes (sorted by key).
    pub counter_deltas: Vec<CounterDelta>,
    /// Gauge changes (sorted by key).
    pub gauge_deltas: Vec<CounterDelta>,
    /// Label changes (sorted by key).
    pub label_changes: Vec<LabelChange>,
    /// Per-scenario drift, worst first (magnitude desc, name asc).
    pub scenario_drift: Vec<ScenarioDrift>,
    /// Histogram shape changes (sorted by key).
    pub histogram_deltas: Vec<HistogramDelta>,
    /// Timing-plane movement beyond noise, largest |Δ| first.
    pub span_deltas: Vec<SpanDelta>,
    pub wall_before_ns: u64,
    pub wall_after_ns: u64,
}

fn diff_u64_maps(
    before: &BTreeMap<String, u64>,
    after: &BTreeMap<String, u64>,
) -> Vec<CounterDelta> {
    let mut keys: Vec<&String> = before.keys().chain(after.keys()).collect();
    keys.sort();
    keys.dedup();
    keys.into_iter()
        .filter_map(|key| {
            let b = before.get(key).copied().unwrap_or(0);
            let a = after.get(key).copied().unwrap_or(0);
            (b != a).then(|| CounterDelta {
                key: key.clone(),
                before: b,
                after: a,
            })
        })
        .collect()
}

fn counters_of(ledger: &Ledger, scenario: Option<&str>) -> BTreeMap<String, u64> {
    match scenario {
        None => ledger
            .counter_keys()
            .map(|k| (k.to_string(), ledger.counter(k)))
            .collect(),
        Some(name) => ledger
            .scenario_counter_keys(name)
            .map(|k| (k.to_string(), ledger.scenario_counter(name, k)))
            .collect(),
    }
}

/// Flattens a span tree into `path → total_ns`, skipping the synthetic
/// root. Sibling paths are unique after `build_tree`, so no summing.
fn flatten_spans(node: &SpanNode, prefix: &str, out: &mut BTreeMap<String, u64>) {
    for child in &node.children {
        let path = if prefix.is_empty() {
            child.name.clone()
        } else {
            format!("{prefix}/{}", child.name)
        };
        out.insert(path.clone(), child.total_ns);
        flatten_spans(child, &path, out);
    }
}

impl ReportDiff {
    /// Computes the diff of `before` → `after` under `config`.
    pub fn compute(before: &RunReport, after: &RunReport, config: &DiffConfig) -> ReportDiff {
        let counter_deltas = diff_u64_maps(
            &counters_of(&before.ledger, None),
            &counters_of(&after.ledger, None),
        );
        let gauge_deltas = diff_u64_maps(
            &before
                .ledger
                .gauge_keys()
                .map(|k| (k.to_string(), before.ledger.gauge_value(k).unwrap_or(0)))
                .collect(),
            &after
                .ledger
                .gauge_keys()
                .map(|k| (k.to_string(), after.ledger.gauge_value(k).unwrap_or(0)))
                .collect(),
        );

        let mut label_keys: Vec<String> = before
            .ledger
            .label_keys()
            .chain(after.ledger.label_keys())
            .map(str::to_string)
            .collect();
        label_keys.sort();
        label_keys.dedup();
        let label_changes: Vec<LabelChange> = label_keys
            .into_iter()
            .filter_map(|key| {
                let b = before.ledger.label_value(&key).map(str::to_string);
                let a = after.ledger.label_value(&key).map(str::to_string);
                (b != a).then_some(LabelChange {
                    key,
                    before: b,
                    after: a,
                })
            })
            .collect();

        let mut scenario_names: Vec<String> = before
            .ledger
            .scenario_names()
            .chain(after.ledger.scenario_names())
            .map(str::to_string)
            .collect();
        scenario_names.sort();
        scenario_names.dedup();
        let mut scenario_drift: Vec<ScenarioDrift> = scenario_names
            .into_iter()
            .filter_map(|name| {
                let deltas = diff_u64_maps(
                    &counters_of(&before.ledger, Some(&name)),
                    &counters_of(&after.ledger, Some(&name)),
                );
                if deltas.is_empty() {
                    return None;
                }
                let magnitude = deltas.iter().map(|d| d.delta().unsigned_abs()).sum();
                Some(ScenarioDrift {
                    scenario: name,
                    magnitude,
                    deltas,
                })
            })
            .collect();
        scenario_drift.sort_by(|a, b| {
            b.magnitude
                .cmp(&a.magnitude)
                .then_with(|| a.scenario.cmp(&b.scenario))
        });

        let mut histogram_keys: Vec<String> = before
            .ledger
            .histograms()
            .map(|(k, _)| k.to_string())
            .chain(after.ledger.histograms().map(|(k, _)| k.to_string()))
            .collect();
        histogram_keys.sort();
        histogram_keys.dedup();
        let empty = crate::histogram::Histogram::new();
        let histogram_deltas: Vec<HistogramDelta> = histogram_keys
            .into_iter()
            .filter_map(|key| {
                let b = before.ledger.histogram(&key).unwrap_or(&empty);
                let a = after.ledger.histogram(&key).unwrap_or(&empty);
                if b == a {
                    return None;
                }
                let mut indices: Vec<i32> = b
                    .iter()
                    .map(|(i, _)| i)
                    .chain(a.iter().map(|(i, _)| i))
                    .collect();
                indices.sort_unstable();
                indices.dedup();
                let l1 = indices
                    .into_iter()
                    .map(|i| b.bucket(i).abs_diff(a.bucket(i)))
                    .sum::<u64>()
                    + b.zeros().abs_diff(a.zeros());
                Some(HistogramDelta {
                    key,
                    l1,
                    before_count: b.count(),
                    after_count: a.count(),
                    before_spark: b.sparkline(),
                    after_spark: a.sparkline(),
                })
            })
            .collect();

        let mut before_spans = BTreeMap::new();
        let mut after_spans = BTreeMap::new();
        flatten_spans(&before.spans, "", &mut before_spans);
        flatten_spans(&after.spans, "", &mut after_spans);
        let mut span_paths: Vec<&String> = before_spans.keys().chain(after_spans.keys()).collect();
        span_paths.sort();
        span_paths.dedup();
        let mut timing_regressed = false;
        let mut span_deltas: Vec<SpanDelta> = span_paths
            .into_iter()
            .filter_map(|path| {
                let b = before_spans.get(path).copied().unwrap_or(0);
                let a = after_spans.get(path).copied().unwrap_or(0);
                if b.max(a) < config.wall_min_ns {
                    return None;
                }
                let base = b.max(1) as f64;
                let regressed = a as f64 > base * config.wall_regress_ratio
                    && a >= config.wall_min_ns
                    && b >= config.wall_min_ns;
                let beyond_noise =
                    (a.abs_diff(b)) as f64 > config.wall_noise_ratio * b.max(a).max(1) as f64;
                if !regressed && !beyond_noise {
                    return None;
                }
                timing_regressed |= regressed;
                Some(SpanDelta {
                    path: path.clone(),
                    before_ns: b,
                    after_ns: a,
                    regressed,
                })
            })
            .collect();
        span_deltas.sort_by(|x, y| {
            y.after_ns
                .abs_diff(y.before_ns)
                .cmp(&x.after_ns.abs_diff(x.before_ns))
                .then_with(|| x.path.cmp(&y.path))
        });

        let deterministic_delta = !counter_deltas.is_empty()
            || !gauge_deltas.is_empty()
            || !label_changes.is_empty()
            || !scenario_drift.is_empty()
            || !histogram_deltas.is_empty();
        let verdict = if deterministic_delta || timing_regressed {
            Verdict::Regressed
        } else if !span_deltas.is_empty() {
            Verdict::Drifted
        } else {
            Verdict::Clean
        };

        ReportDiff {
            verdict,
            counter_deltas,
            gauge_deltas,
            label_changes,
            scenario_drift,
            histogram_deltas,
            span_deltas,
            wall_before_ns: before.wall_ns,
            wall_after_ns: after.wall_ns,
        }
    }

    /// Whether the deterministic planes matched exactly.
    pub fn deterministic_clean(&self) -> bool {
        self.counter_deltas.is_empty()
            && self.gauge_deltas.is_empty()
            && self.label_changes.is_empty()
            && self.scenario_drift.is_empty()
            && self.histogram_deltas.is_empty()
    }

    /// Machine-readable form for archives and tooling.
    pub fn to_json(&self) -> Json {
        let counters = |deltas: &[CounterDelta]| {
            Json::Arr(
                deltas
                    .iter()
                    .map(|d| {
                        Json::obj([
                            ("key", Json::Str(d.key.clone())),
                            ("before", Json::Num(d.before as f64)),
                            ("after", Json::Num(d.after as f64)),
                        ])
                    })
                    .collect(),
            )
        };
        Json::obj([
            ("schema", Json::Str("fleet-report-diff/1".to_string())),
            ("verdict", Json::Str(self.verdict.as_str().to_string())),
            ("counter_deltas", counters(&self.counter_deltas)),
            ("gauge_deltas", counters(&self.gauge_deltas)),
            (
                "label_changes",
                Json::Arr(
                    self.label_changes
                        .iter()
                        .map(|c| {
                            let opt = |v: &Option<String>| match v {
                                Some(s) => Json::Str(s.clone()),
                                None => Json::Null,
                            };
                            Json::obj([
                                ("key", Json::Str(c.key.clone())),
                                ("before", opt(&c.before)),
                                ("after", opt(&c.after)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "scenario_drift",
                Json::Arr(
                    self.scenario_drift
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("scenario", Json::Str(s.scenario.clone())),
                                ("magnitude", Json::Num(s.magnitude as f64)),
                                ("deltas", counters(&s.deltas)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "histogram_deltas",
                Json::Arr(
                    self.histogram_deltas
                        .iter()
                        .map(|h| {
                            Json::obj([
                                ("key", Json::Str(h.key.clone())),
                                ("l1", Json::Num(h.l1 as f64)),
                                ("before_count", Json::Num(h.before_count as f64)),
                                ("after_count", Json::Num(h.after_count as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "span_deltas",
                Json::Arr(
                    self.span_deltas
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("path", Json::Str(s.path.clone())),
                                ("before_ns", Json::Num(s.before_ns as f64)),
                                ("after_ns", Json::Num(s.after_ns as f64)),
                                ("regressed", Json::Bool(s.regressed)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("wall_before_ns", Json::Num(self.wall_before_ns as f64)),
            ("wall_after_ns", Json::Num(self.wall_after_ns as f64)),
        ])
    }

    /// Terminal summary: verdict, then each section that moved.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "verdict: {}  (wall {} → {})",
            self.verdict,
            format_ns(self.wall_before_ns),
            format_ns(self.wall_after_ns)
        );
        for d in &self.counter_deltas {
            let _ = writeln!(
                out,
                "  counter {:<32} {} → {} ({:+})",
                d.key,
                d.before,
                d.after,
                d.delta()
            );
        }
        for d in &self.gauge_deltas {
            let _ = writeln!(out, "  gauge   {:<32} {} → {}", d.key, d.before, d.after);
        }
        for c in &self.label_changes {
            let _ = writeln!(
                out,
                "  label   {:<32} {:?} → {:?}",
                c.key, c.before, c.after
            );
        }
        for h in &self.histogram_deltas {
            let _ = writeln!(
                out,
                "  histo   {:<32} count {} → {} (L1 {})",
                h.key, h.before_count, h.after_count, h.l1
            );
        }
        for s in self.scenario_drift.iter().take(10) {
            let _ = writeln!(
                out,
                "  drift   {:<32} magnitude {} across {} counters",
                s.scenario,
                s.magnitude,
                s.deltas.len()
            );
        }
        if self.scenario_drift.len() > 10 {
            let _ = writeln!(
                out,
                "  drift   … and {} more scenarios",
                self.scenario_drift.len() - 10
            );
        }
        for s in self.span_deltas.iter().take(10) {
            let _ = writeln!(
                out,
                "  span    {:<32} {} → {}{}",
                s.path,
                format_ns(s.before_ns),
                format_ns(s.after_ns),
                if s.regressed { "  ← regressed" } else { "" }
            );
        }
        if self.verdict == Verdict::Clean {
            let _ = writeln!(out, "  deterministic planes identical; timing within noise");
        }
        out
    }

    /// The ranked findings report: markdown, worst first, with
    /// histogram sparklines and the heaviest span movement.
    pub fn render_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# Fleet run findings\n");
        let _ = writeln!(out, "**Verdict: {}**\n", self.verdict);
        let _ = writeln!(
            out,
            "Wall time {} → {}.\n",
            format_ns(self.wall_before_ns),
            format_ns(self.wall_after_ns)
        );

        if !self.scenario_drift.is_empty() {
            let _ = writeln!(out, "## Worst-regressing scenarios\n");
            let _ = writeln!(out, "| rank | scenario | magnitude | top counter deltas |");
            let _ = writeln!(out, "|---:|---|---:|---|");
            for (rank, s) in self.scenario_drift.iter().take(20).enumerate() {
                let tops: Vec<String> = s
                    .deltas
                    .iter()
                    .take(3)
                    .map(|d| format!("`{}` {:+}", d.key, d.delta()))
                    .collect();
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} |",
                    rank + 1,
                    s.scenario,
                    s.magnitude,
                    tops.join(", ")
                );
            }
            if self.scenario_drift.len() > 20 {
                let _ = writeln!(
                    out,
                    "\n…and {} more drifting scenarios.",
                    self.scenario_drift.len() - 20
                );
            }
            let _ = writeln!(out);
        }

        if !self.counter_deltas.is_empty() || !self.gauge_deltas.is_empty() {
            let _ = writeln!(out, "## Counter and gauge deltas\n");
            let _ = writeln!(out, "| key | before | after | Δ |");
            let _ = writeln!(out, "|---|---:|---:|---:|");
            for d in &self.counter_deltas {
                let _ = writeln!(
                    out,
                    "| `{}` | {} | {} | {:+} |",
                    d.key,
                    d.before,
                    d.after,
                    d.delta()
                );
            }
            for d in &self.gauge_deltas {
                let _ = writeln!(
                    out,
                    "| `{}` (gauge) | {} | {} | {:+} |",
                    d.key,
                    d.before,
                    d.after,
                    d.delta()
                );
            }
            let _ = writeln!(out);
        }

        if !self.label_changes.is_empty() {
            let _ = writeln!(out, "## Label changes\n");
            for c in &self.label_changes {
                let fmt = |v: &Option<String>| v.clone().unwrap_or_else(|| "∅".to_string());
                let _ = writeln!(out, "- `{}`: {} → {}", c.key, fmt(&c.before), fmt(&c.after));
            }
            let _ = writeln!(out);
        }

        if !self.histogram_deltas.is_empty() {
            let _ = writeln!(out, "## Histogram drift\n");
            for h in &self.histogram_deltas {
                let _ = writeln!(
                    out,
                    "- `{}` — count {} → {}, L1 distance {}",
                    h.key, h.before_count, h.after_count, h.l1
                );
                let _ = writeln!(out, "  - before `{}`", h.before_spark);
                let _ = writeln!(out, "  - after  `{}`", h.after_spark);
            }
            let _ = writeln!(out);
        }

        if !self.span_deltas.is_empty() {
            let _ = writeln!(out, "## Heaviest span movement\n");
            let _ = writeln!(out, "| span | before | after | regressed |");
            let _ = writeln!(out, "|---|---:|---:|:---:|");
            for s in self.span_deltas.iter().take(15) {
                let _ = writeln!(
                    out,
                    "| `{}` | {} | {} | {} |",
                    s.path,
                    format_ns(s.before_ns),
                    format_ns(s.after_ns),
                    if s.regressed { "yes" } else { "" }
                );
            }
            let _ = writeln!(out);
        }

        if self.verdict == Verdict::Clean {
            let _ = writeln!(
                out,
                "No findings: deterministic planes identical, timing within noise.\n"
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans::{build_tree, SpanRecord};

    fn report_with(counters: &[(&str, u64)], scenario: &str, slots: u64) -> RunReport {
        let mut ledger = Ledger::new();
        for (key, n) in counters {
            ledger.count(key, *n);
        }
        ledger.count_scenario(scenario, "slots/processed", slots);
        ledger.observe("score/mape", 0.1 + slots as f64 / 1e6);
        RunReport {
            ledger,
            wall_ns: 10_000_000,
            spans: build_tree(&[SpanRecord {
                path: "fleet/simulate".to_string(),
                scenario: Some(scenario.to_string()),
                dur_ns: 8_000_000,
            }]),
            scenario_top: Vec::new(),
        }
    }

    #[test]
    fn identical_reports_are_clean() {
        let a = report_with(&[("jobs/evaluated", 12)], "desert", 960);
        let diff = ReportDiff::compute(&a, &a.clone(), &DiffConfig::default());
        assert_eq!(diff.verdict, Verdict::Clean);
        assert!(diff.deterministic_clean());
        assert!(diff.span_deltas.is_empty());
        assert!(diff.render_text().contains("verdict: clean"));
        assert!(diff.render_markdown().contains("No findings"));
    }

    #[test]
    fn counter_delta_regresses_and_ranks_scenarios() {
        let before = report_with(&[("jobs/evaluated", 12)], "desert", 960);
        let mut after = report_with(&[("jobs/evaluated", 12)], "desert", 960);
        after
            .ledger
            .count_scenario("marine", "slots/processed", 480);
        after.ledger.count_scenario("desert", "jobs/fresh", 3);
        let diff = ReportDiff::compute(&before, &after, &DiffConfig::default());
        assert_eq!(diff.verdict, Verdict::Regressed);
        // marine moved 480 slots, desert only 3 jobs — marine ranks first.
        assert_eq!(diff.scenario_drift[0].scenario, "marine");
        assert_eq!(diff.scenario_drift[0].magnitude, 480);
        assert_eq!(diff.scenario_drift[1].scenario, "desert");
        let md = diff.render_markdown();
        assert!(md.contains("Worst-regressing scenarios"));
        assert!(md.contains("| 1 | marine | 480 |"));
    }

    #[test]
    fn histogram_shape_change_regresses_with_l1_distance() {
        let before = report_with(&[], "desert", 960);
        let mut after = report_with(&[], "desert", 960);
        after.ledger.observe("score/mape", 0.4);
        let diff = ReportDiff::compute(&before, &after, &DiffConfig::default());
        assert_eq!(diff.verdict, Verdict::Regressed);
        assert_eq!(diff.histogram_deltas.len(), 1);
        assert_eq!(diff.histogram_deltas[0].key, "score/mape");
        assert_eq!(diff.histogram_deltas[0].l1, 1);
        assert!(diff.render_markdown().contains("Histogram drift"));
    }

    #[test]
    fn label_and_gauge_changes_regress() {
        let before = report_with(&[], "desert", 960);
        let mut after = before.clone();
        after.ledger.gauge("admission/trace_budget_bytes", 1024);
        let diff = ReportDiff::compute(&before, &after, &DiffConfig::default());
        assert_eq!(diff.verdict, Verdict::Regressed);
        let mut after = before.clone();
        after
            .ledger
            .label("admission/trace_budget_source", "configured");
        let diff = ReportDiff::compute(&before, &after, &DiffConfig::default());
        assert_eq!(diff.verdict, Verdict::Regressed);
        assert_eq!(diff.label_changes[0].before, None);
    }

    #[test]
    fn wall_time_noise_is_clean_drift_is_drifted_blowup_is_regressed() {
        let base = report_with(&[("jobs/evaluated", 4)], "desert", 960);
        let with_span = |dur_ns: u64| {
            let mut r = base.clone();
            r.spans = build_tree(&[SpanRecord {
                path: "fleet/simulate".to_string(),
                scenario: None,
                dur_ns,
            }]);
            r
        };
        let config = DiffConfig::default();
        // +10% is inside the 25% noise band.
        let diff = ReportDiff::compute(&base, &with_span(8_800_000), &config);
        assert_eq!(diff.verdict, Verdict::Clean);
        // +50% drifts.
        let diff = ReportDiff::compute(&base, &with_span(12_000_000), &config);
        assert_eq!(diff.verdict, Verdict::Drifted);
        assert_eq!(diff.span_deltas[0].path, "fleet/simulate");
        assert!(!diff.span_deltas[0].regressed);
        // 5× regresses.
        let diff = ReportDiff::compute(&base, &with_span(40_000_000), &config);
        assert_eq!(diff.verdict, Verdict::Regressed);
        assert!(diff.span_deltas[0].regressed);
        assert!(diff.deterministic_clean());
        // A generous ratio turns the same blowup into mere drift.
        let generous = DiffConfig {
            wall_regress_ratio: 50.0,
            ..config
        };
        let diff = ReportDiff::compute(&base, &with_span(40_000_000), &generous);
        assert_eq!(diff.verdict, Verdict::Drifted);
    }

    #[test]
    fn micro_spans_never_compare() {
        let mut before = report_with(&[], "desert", 960);
        before.spans = build_tree(&[SpanRecord {
            path: "fleet/tiny".to_string(),
            scenario: None,
            dur_ns: 10_000,
        }]);
        let mut after = before.clone();
        after.spans = build_tree(&[SpanRecord {
            path: "fleet/tiny".to_string(),
            scenario: None,
            dur_ns: 900_000,
        }]);
        let diff = ReportDiff::compute(&before, &after, &DiffConfig::default());
        assert_eq!(
            diff.verdict,
            Verdict::Clean,
            "sub-millisecond spans jitter freely"
        );
    }

    #[test]
    fn diff_json_carries_the_verdict_and_sections() {
        let before = report_with(&[("jobs/evaluated", 12)], "desert", 960);
        let mut after = before.clone();
        after.ledger.count("jobs/evaluated", 1);
        let diff = ReportDiff::compute(&before, &after, &DiffConfig::default());
        let json = diff.to_json().render_pretty();
        assert!(json.contains("\"fleet-report-diff/1\""));
        assert!(json.contains("\"regressed\""));
        assert!(json.contains("\"jobs/evaluated\""));
    }
}
