//! The run archive: one JSONL line per archived report.
//!
//! A [`RunArchive`] is the trend store behind `fleet_report archive`:
//! each line is `{"run_id": ..., "report": ...}` rendered compactly,
//! oldest first, diff-friendly in version control. Run ids are
//! caller-supplied (a date, a commit hash, a CI build number) and must
//! be unique within one archive — appending a duplicate id is an
//! error, because a trend with two points at the same x tells no
//! story.
//!
//! Writes are crash-safe: `append` rewrites the whole file through
//! [`crate::fsio::write_atomic`] (temp + fsync + rename), so a crash
//! mid-append leaves the previous archive intact rather than a torn
//! final line. Reads still tolerate a torn *final* line — an archive
//! written by an older build, or by anything that died between
//! `write` and `rename` on a non-atomic filesystem — by dropping it
//! and reporting it in [`RunArchive::truncated`]; corruption anywhere
//! *before* the final line still fails the whole load, because a
//! trend built on a half-read archive lies.

use crate::fsio;
use crate::json::Json;
use crate::report::RunReport;
use crate::spans::format_ns;
use std::path::Path;

/// One archived run.
#[derive(Clone, Debug, PartialEq)]
pub struct ArchiveEntry {
    /// Caller-supplied key (commit, date, build number…).
    pub run_id: String,
    pub report: RunReport,
}

/// A torn final line dropped (and reported) by [`RunArchive::load`].
#[derive(Clone, Debug, PartialEq)]
pub struct TruncatedTail {
    /// 1-based line number of the dropped line.
    pub line: usize,
    /// Why it failed to parse (includes the byte offset within the
    /// line for JSON-level failures).
    pub error: String,
}

/// An in-memory view of a JSONL archive file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunArchive {
    /// Entries in file (append) order: oldest first.
    pub entries: Vec<ArchiveEntry>,
    /// Present when the final line was torn and dropped; the entries
    /// before it are intact. The next `append` rewrites the file and
    /// discards the torn tail for good.
    pub truncated: Option<TruncatedTail>,
}

/// Counters the trend table tracks per run.
const TREND_COUNTERS: [&str; 4] = [
    "jobs/evaluated",
    "slots/processed",
    "cache/job_hits",
    "synth/streamed_passes",
];

fn validate_run_id(run_id: &str) -> Result<(), String> {
    if run_id.is_empty() {
        return Err("archive run id must not be empty".to_string());
    }
    if run_id.contains('\n') || run_id.contains('\r') {
        return Err("archive run id must not contain newlines".to_string());
    }
    Ok(())
}

impl RunArchive {
    /// An empty archive.
    pub fn new() -> RunArchive {
        RunArchive::default()
    }

    /// Parses one JSONL line into an entry. The error string omits
    /// line context (the caller adds it) but keeps byte offsets from
    /// the JSON layer.
    fn parse_line(line: &str) -> Result<ArchiveEntry, String> {
        let value = Json::parse(line)?;
        let run_id = value.req_str("run_id")?.to_string();
        let report = RunReport::from_json(value.req("report")?)
            .map_err(|err| format!("({run_id:?}): {err}"))?;
        Ok(ArchiveEntry { run_id, report })
    }

    /// Loads an archive file; a missing file is an empty archive (the
    /// first `append` creates it).
    ///
    /// # Errors
    ///
    /// Unreadable files, malformed lines before the tail, and
    /// duplicate run ids all fail loudly — a trend built on a
    /// half-read archive lies. The one tolerated defect is a torn
    /// *final* line (a crash mid-append under a non-atomic writer):
    /// it is dropped and reported via [`RunArchive::truncated`].
    pub fn load(path: &Path) -> Result<RunArchive, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
                return Ok(RunArchive::new());
            }
            Err(err) => return Err(format!("cannot read archive {}: {err}", path.display())),
        };
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .filter(|(_, line)| !line.trim().is_empty())
            .collect();
        let mut archive = RunArchive::new();
        for (ordinal, &(number, line)) in lines.iter().enumerate() {
            let entry = match Self::parse_line(line) {
                Ok(entry) => entry,
                Err(err) if ordinal + 1 == lines.len() => {
                    archive.truncated = Some(TruncatedTail {
                        line: number + 1,
                        error: err,
                    });
                    break;
                }
                Err(err) => return Err(format!("archive line {}: {err}", number + 1)),
            };
            if archive.entries.iter().any(|e| e.run_id == entry.run_id) {
                return Err(format!(
                    "archive line {}: duplicate run id {:?}",
                    number + 1,
                    entry.run_id
                ));
            }
            archive.entries.push(entry);
        }
        Ok(archive)
    }

    /// Appends one report under `run_id`, creating the file if needed.
    ///
    /// The whole file is rewritten through the crash-safe
    /// temp+fsync+rename path, so a crash here leaves the previous
    /// archive intact. If the existing file carried a torn final
    /// line, the rewrite drops it for good (the intact entries are
    /// preserved).
    ///
    /// # Errors
    ///
    /// Rejects invalid ids, ids already present in the file, and I/O
    /// failures; on error the existing file is untouched.
    pub fn append(path: &Path, run_id: &str, report: &RunReport) -> Result<(), String> {
        validate_run_id(run_id)?;
        let existing = RunArchive::load(path)?;
        if existing.entries.iter().any(|e| e.run_id == run_id) {
            return Err(format!("archive already holds run id {run_id:?}"));
        }
        let mut text = String::new();
        for entry in &existing.entries {
            text.push_str(
                &Json::obj([
                    ("run_id", Json::Str(entry.run_id.clone())),
                    ("report", entry.report.to_json()),
                ])
                .render(),
            );
            text.push('\n');
        }
        text.push_str(
            &Json::obj([
                ("run_id", Json::Str(run_id.to_string())),
                ("report", report.to_json()),
            ])
            .render(),
        );
        text.push('\n');
        fsio::write_atomic_str(path, &text).map_err(|err| format!("cannot write archive: {err}"))
    }

    /// The last `n` entries, oldest first.
    pub fn last(&self, n: usize) -> &[ArchiveEntry] {
        let start = self.entries.len().saturating_sub(n);
        &self.entries[start..]
    }

    /// A trend table plus per-metric sparklines over the last `n`
    /// runs (oldest first, so trends read left to right).
    pub fn trend_text(&self, n: usize) -> String {
        use std::fmt::Write as _;
        let window = self.last(n);
        if window.is_empty() {
            return "archive is empty\n".to_string();
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>14} {:>14} {:>12} {:>10}",
            "run", "wall", "jobs", "slots", "cache hits", "streamed"
        );
        for entry in window {
            let ledger = &entry.report.ledger;
            let _ = writeln!(
                out,
                "{:<24} {:>12} {:>14} {:>14} {:>12} {:>10}",
                entry.run_id,
                format_ns(entry.report.wall_ns),
                ledger.counter("jobs/evaluated"),
                ledger.counter("slots/processed"),
                ledger.counter("cache/job_hits"),
                ledger.counter("synth/streamed_passes"),
            );
        }
        let _ = writeln!(out);
        let spark = |values: &[u64]| -> String {
            const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
            let max = values.iter().copied().max().unwrap_or(0).max(1);
            values
                .iter()
                .map(|&v| GLYPHS[(v * (GLYPHS.len() as u64 - 1)).div_ceil(max) as usize])
                .collect()
        };
        let walls: Vec<u64> = window.iter().map(|e| e.report.wall_ns).collect();
        let _ = writeln!(out, "{:<24} {}", "wall trend", spark(&walls));
        for key in TREND_COUNTERS {
            let values: Vec<u64> = window
                .iter()
                .map(|e| e.report.ledger.counter(key))
                .collect();
            if values.iter().any(|&v| v > 0) {
                let _ = writeln!(out, "{key:<24} {}", spark(&values));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::Ledger;

    fn report(jobs: u64) -> RunReport {
        let mut ledger = Ledger::new();
        ledger.count("jobs/evaluated", jobs);
        ledger.count("slots/processed", jobs * 96);
        RunReport {
            ledger,
            wall_ns: jobs * 1000,
            ..RunReport::empty()
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "fleet_obs_archive_{name}_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn append_load_round_trips_in_order() {
        let path = temp_path("roundtrip");
        RunArchive::append(&path, "run-1", &report(4)).unwrap();
        RunArchive::append(&path, "run-2", &report(8)).unwrap();
        RunArchive::append(&path, "run-3", &report(6)).unwrap();
        let archive = RunArchive::load(&path).unwrap();
        assert_eq!(archive.entries.len(), 3);
        assert_eq!(archive.entries[0].run_id, "run-1");
        assert_eq!(archive.entries[2].run_id, "run-3");
        assert_eq!(archive.entries[1].report, report(8));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_and_malformed_run_ids_are_rejected() {
        let path = temp_path("dupes");
        RunArchive::append(&path, "run-1", &report(4)).unwrap();
        assert!(RunArchive::append(&path, "run-1", &report(5)).is_err());
        assert!(RunArchive::append(&path, "", &report(5)).is_err());
        assert!(RunArchive::append(&path, "two\nlines", &report(5)).is_err());
        // The failed appends left the file untouched.
        assert_eq!(RunArchive::load(&path).unwrap().entries.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_empty_archive_and_mid_file_garbage_fails() {
        let path = temp_path("missing");
        assert_eq!(RunArchive::load(&path).unwrap().entries.len(), 0);
        // Garbage *before* intact lines is corruption, not a torn
        // tail: the whole load fails.
        RunArchive::append(&path, "run-1", &report(4)).unwrap();
        let good = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, format!("not json\n{good}")).unwrap();
        assert!(RunArchive::load(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_dropped_and_reported() {
        let path = temp_path("torn");
        RunArchive::append(&path, "run-1", &report(4)).unwrap();
        RunArchive::append(&path, "run-2", &report(8)).unwrap();
        // Simulate a crash mid-append: a half-written final line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"run_id\": \"run-3\", \"repo");
        std::fs::write(&path, &text).unwrap();

        let archive = RunArchive::load(&path).unwrap();
        assert_eq!(archive.entries.len(), 2, "intact entries survive");
        let tail = archive.truncated.as_ref().expect("tail reported");
        assert_eq!(tail.line, 3);
        assert!(tail.error.contains("at byte"), "{}", tail.error);

        // The next append heals the file: the torn tail is gone and
        // the archive parses clean.
        RunArchive::append(&path, "run-3", &report(6)).unwrap();
        let healed = RunArchive::load(&path).unwrap();
        assert_eq!(healed.entries.len(), 3);
        assert!(healed.truncated.is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trend_renders_last_n_with_sparklines() {
        let mut archive = RunArchive::new();
        for i in 1..=5u64 {
            archive.entries.push(ArchiveEntry {
                run_id: format!("run-{i}"),
                report: report(i * 3),
            });
        }
        let text = archive.trend_text(3);
        assert!(!text.contains("run-2"), "window holds only the last 3");
        assert!(text.contains("run-3"));
        assert!(text.contains("run-5"));
        assert!(text.contains("jobs/evaluated"));
        assert!(text.contains('█'), "sparkline rendered");
        assert_eq!(RunArchive::new().trend_text(3), "archive is empty\n");
    }
}
