//! The append-only run archive: one JSONL line per archived report.
//!
//! A [`RunArchive`] is the trend store behind `fleet_report archive`:
//! each line is `{"run_id": ..., "report": ...}` rendered compactly,
//! appended (never rewritten) so concurrent history survives crashes
//! and the file stays diff-friendly in version control. Run ids are
//! caller-supplied (a date, a commit hash, a CI build number) and must
//! be unique within one archive — appending a duplicate id is an
//! error, because a trend with two points at the same x tells no
//! story.

use crate::json::Json;
use crate::report::RunReport;
use crate::spans::format_ns;
use std::path::Path;

/// One archived run.
#[derive(Clone, Debug, PartialEq)]
pub struct ArchiveEntry {
    /// Caller-supplied key (commit, date, build number…).
    pub run_id: String,
    pub report: RunReport,
}

/// An in-memory view of a JSONL archive file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunArchive {
    /// Entries in file (append) order: oldest first.
    pub entries: Vec<ArchiveEntry>,
}

/// Counters the trend table tracks per run.
const TREND_COUNTERS: [&str; 4] = [
    "jobs/evaluated",
    "slots/processed",
    "cache/job_hits",
    "synth/streamed_passes",
];

fn validate_run_id(run_id: &str) -> Result<(), String> {
    if run_id.is_empty() {
        return Err("archive run id must not be empty".to_string());
    }
    if run_id.contains('\n') || run_id.contains('\r') {
        return Err("archive run id must not contain newlines".to_string());
    }
    Ok(())
}

impl RunArchive {
    /// An empty archive.
    pub fn new() -> RunArchive {
        RunArchive::default()
    }

    /// Loads an archive file; a missing file is an empty archive (the
    /// first `append` creates it).
    ///
    /// # Errors
    ///
    /// Unreadable files, malformed lines, and duplicate run ids all
    /// fail loudly — a trend built on a half-read archive lies.
    pub fn load(path: &Path) -> Result<RunArchive, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
                return Ok(RunArchive::new());
            }
            Err(err) => return Err(format!("cannot read archive {}: {err}", path.display())),
        };
        let mut archive = RunArchive::new();
        for (number, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let value =
                Json::parse(line).map_err(|err| format!("archive line {}: {err}", number + 1))?;
            let run_id = value
                .req_str("run_id")
                .map_err(|err| format!("archive line {}: {err}", number + 1))?
                .to_string();
            let report = RunReport::from_json(
                value
                    .req("report")
                    .map_err(|err| format!("archive line {}: {err}", number + 1))?,
            )
            .map_err(|err| format!("archive line {} ({run_id:?}): {err}", number + 1))?;
            if archive.entries.iter().any(|e| e.run_id == run_id) {
                return Err(format!(
                    "archive line {}: duplicate run id {run_id:?}",
                    number + 1
                ));
            }
            archive.entries.push(ArchiveEntry { run_id, report });
        }
        Ok(archive)
    }

    /// Appends one report under `run_id`, creating the file if needed.
    ///
    /// # Errors
    ///
    /// Rejects invalid ids, ids already present in the file, and I/O
    /// failures. The existing file is never rewritten.
    pub fn append(path: &Path, run_id: &str, report: &RunReport) -> Result<(), String> {
        validate_run_id(run_id)?;
        let existing = RunArchive::load(path)?;
        if existing.entries.iter().any(|e| e.run_id == run_id) {
            return Err(format!("archive already holds run id {run_id:?}"));
        }
        let line = Json::obj([
            ("run_id", Json::Str(run_id.to_string())),
            ("report", report.to_json()),
        ])
        .render();
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|err| format!("cannot open archive {}: {err}", path.display()))?;
        writeln!(file, "{line}")
            .map_err(|err| format!("cannot append to archive {}: {err}", path.display()))
    }

    /// The last `n` entries, oldest first.
    pub fn last(&self, n: usize) -> &[ArchiveEntry] {
        let start = self.entries.len().saturating_sub(n);
        &self.entries[start..]
    }

    /// A trend table plus per-metric sparklines over the last `n`
    /// runs (oldest first, so trends read left to right).
    pub fn trend_text(&self, n: usize) -> String {
        use std::fmt::Write as _;
        let window = self.last(n);
        if window.is_empty() {
            return "archive is empty\n".to_string();
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>14} {:>14} {:>12} {:>10}",
            "run", "wall", "jobs", "slots", "cache hits", "streamed"
        );
        for entry in window {
            let ledger = &entry.report.ledger;
            let _ = writeln!(
                out,
                "{:<24} {:>12} {:>14} {:>14} {:>12} {:>10}",
                entry.run_id,
                format_ns(entry.report.wall_ns),
                ledger.counter("jobs/evaluated"),
                ledger.counter("slots/processed"),
                ledger.counter("cache/job_hits"),
                ledger.counter("synth/streamed_passes"),
            );
        }
        let _ = writeln!(out);
        let spark = |values: &[u64]| -> String {
            const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
            let max = values.iter().copied().max().unwrap_or(0).max(1);
            values
                .iter()
                .map(|&v| GLYPHS[(v * (GLYPHS.len() as u64 - 1)).div_ceil(max) as usize])
                .collect()
        };
        let walls: Vec<u64> = window.iter().map(|e| e.report.wall_ns).collect();
        let _ = writeln!(out, "{:<24} {}", "wall trend", spark(&walls));
        for key in TREND_COUNTERS {
            let values: Vec<u64> = window
                .iter()
                .map(|e| e.report.ledger.counter(key))
                .collect();
            if values.iter().any(|&v| v > 0) {
                let _ = writeln!(out, "{key:<24} {}", spark(&values));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::Ledger;

    fn report(jobs: u64) -> RunReport {
        let mut ledger = Ledger::new();
        ledger.count("jobs/evaluated", jobs);
        ledger.count("slots/processed", jobs * 96);
        RunReport {
            ledger,
            wall_ns: jobs * 1000,
            ..RunReport::empty()
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "fleet_obs_archive_{name}_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn append_load_round_trips_in_order() {
        let path = temp_path("roundtrip");
        RunArchive::append(&path, "run-1", &report(4)).unwrap();
        RunArchive::append(&path, "run-2", &report(8)).unwrap();
        RunArchive::append(&path, "run-3", &report(6)).unwrap();
        let archive = RunArchive::load(&path).unwrap();
        assert_eq!(archive.entries.len(), 3);
        assert_eq!(archive.entries[0].run_id, "run-1");
        assert_eq!(archive.entries[2].run_id, "run-3");
        assert_eq!(archive.entries[1].report, report(8));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_and_malformed_run_ids_are_rejected() {
        let path = temp_path("dupes");
        RunArchive::append(&path, "run-1", &report(4)).unwrap();
        assert!(RunArchive::append(&path, "run-1", &report(5)).is_err());
        assert!(RunArchive::append(&path, "", &report(5)).is_err());
        assert!(RunArchive::append(&path, "two\nlines", &report(5)).is_err());
        // The failed appends left the file untouched.
        assert_eq!(RunArchive::load(&path).unwrap().entries.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_empty_archive_and_garbage_fails() {
        let path = temp_path("missing");
        assert_eq!(RunArchive::load(&path).unwrap().entries.len(), 0);
        std::fs::write(&path, "not json\n").unwrap();
        assert!(RunArchive::load(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trend_renders_last_n_with_sparklines() {
        let mut archive = RunArchive::new();
        for i in 1..=5u64 {
            archive.entries.push(ArchiveEntry {
                run_id: format!("run-{i}"),
                report: report(i * 3),
            });
        }
        let text = archive.trend_text(3);
        assert!(!text.contains("run-2"), "window holds only the last 3");
        assert!(text.contains("run-3"));
        assert!(text.contains("run-5"));
        assert!(text.contains("jobs/evaluated"));
        assert!(text.contains('█'), "sparkline rendered");
        assert_eq!(RunArchive::new().trend_text(3), "archive is empty\n");
    }
}
