//! Chrome-trace export of the span tree for flamegraph viewing.
//!
//! [`chrome_trace_json`] renders a [`RunReport`]'s aggregated span
//! tree as a JSON **array of complete events** (`"ph": "X"`) in the
//! Trace Event Format, which `about:tracing` and Perfetto open
//! directly.
//!
//! The span tree is an *aggregate* (each node sums every span recorded
//! at its path), not a timeline, so the export lays out a synthetic
//! one: each node starts where its parent starts and children follow
//! each other in rendered (heaviest-first) order. Horizontal extent is
//! therefore faithful — a node's width is exactly its recorded
//! nanoseconds — while horizontal *position* is presentational. The
//! true span multiplicity rides along in `args.count`.

use crate::json::Json;
use crate::report::RunReport;
use crate::spans::SpanNode;

fn push_events(node: &SpanNode, path: &str, start_ns: u64, out: &mut Vec<Json>) {
    let name = if node.name.is_empty() {
        "(unnamed)"
    } else {
        &node.name
    };
    out.push(Json::obj([
        ("name", Json::Str(name.to_string())),
        ("cat", Json::Str("fleet".to_string())),
        ("ph", Json::Str("X".to_string())),
        // Trace-event timestamps are microseconds (fractional is fine).
        ("ts", Json::Num(start_ns as f64 / 1000.0)),
        ("dur", Json::Num(node.total_ns as f64 / 1000.0)),
        ("pid", Json::Num(0.0)),
        ("tid", Json::Num(0.0)),
        (
            "args",
            Json::obj([
                ("path", Json::Str(path.to_string())),
                ("count", Json::Num(node.count as f64)),
                ("self_ns", Json::Num(node.self_ns as f64)),
            ]),
        ),
    ]));
    let mut cursor = start_ns;
    for child in &node.children {
        let child_path = if path.is_empty() {
            child.name.clone()
        } else {
            format!("{path}/{}", child.name)
        };
        push_events(child, &child_path, cursor, out);
        cursor += child.total_ns;
    }
}

/// The report's span tree as a Trace Event Format JSON array.
pub fn chrome_trace_json(report: &RunReport) -> Json {
    let mut events = Vec::new();
    // The synthetic root spans the whole run: wall time when the
    // collector recorded it, else the children's sum.
    let mut root = report.spans.clone();
    root.total_ns = root.total_ns.max(report.wall_ns);
    push_events(&root, "", 0, &mut events);
    Json::Arr(events)
}

/// [`chrome_trace_json`] rendered as text, ready to write to disk.
pub fn chrome_trace_string(report: &RunReport) -> String {
    chrome_trace_json(report).render_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans::{build_tree, SpanRecord};

    fn sample_report() -> RunReport {
        let rec = |path: &str, dur_ns: u64| SpanRecord {
            path: path.to_string(),
            scenario: None,
            dur_ns,
        };
        RunReport {
            spans: build_tree(&[
                rec("fleet", 100_000),
                rec("fleet/synthesis", 30_000),
                rec("fleet/simulate", 60_000),
                rec("merge", 10_000),
            ]),
            wall_ns: 150_000,
            ..RunReport::empty()
        }
    }

    #[test]
    fn export_is_an_array_of_complete_events() {
        let json = chrome_trace_json(&sample_report());
        let Json::Arr(events) = &json else {
            panic!("chrome trace must be a JSON array");
        };
        // run + fleet + 2 children + merge.
        assert_eq!(events.len(), 5);
        for event in events {
            assert_eq!(event.req_str("ph").unwrap(), "X");
            assert_eq!(event.req_str("cat").unwrap(), "fleet");
            assert!(event.req_num("ts").unwrap() >= 0.0);
            assert!(event.req_num("dur").unwrap() >= 0.0);
            event.req_num("pid").unwrap();
            event.req_num("tid").unwrap();
            event.req("args").unwrap().req_str("path").unwrap();
        }
        // And the rendered text parses back as the same array.
        let text = chrome_trace_string(&sample_report());
        assert_eq!(Json::parse(&text).unwrap(), json);
    }

    #[test]
    fn children_nest_inside_parents_on_the_synthetic_timeline() {
        let json = chrome_trace_json(&sample_report());
        let Json::Arr(events) = &json else {
            unreachable!()
        };
        let find = |name: &str| {
            events
                .iter()
                .find(|e| e.req_str("name").unwrap() == name)
                .expect(name)
        };
        let run = find("run");
        assert_eq!(run.req_num("ts").unwrap(), 0.0);
        assert_eq!(run.req_num("dur").unwrap(), 150.0, "root spans the wall");
        let fleet = find("fleet");
        let simulate = find("simulate");
        let synthesis = find("synthesis");
        // fleet starts at the run start; its children tile inside it,
        // heaviest (simulate) first.
        assert_eq!(fleet.req_num("ts").unwrap(), 0.0);
        assert_eq!(simulate.req_num("ts").unwrap(), 0.0);
        assert_eq!(
            synthesis.req_num("ts").unwrap(),
            simulate.req_num("dur").unwrap()
        );
        let fleet_end = fleet.req_num("ts").unwrap() + fleet.req_num("dur").unwrap();
        for child in [simulate, synthesis] {
            let end = child.req_num("ts").unwrap() + child.req_num("dur").unwrap();
            assert!(end <= fleet_end + 1e-9, "children fit inside fleet");
        }
        // The sibling top-level phase follows fleet.
        assert_eq!(find("merge").req_num("ts").unwrap(), fleet_end);
        assert_eq!(
            find("merge").req("args").unwrap().req_str("path").unwrap(),
            "merge"
        );
    }

    #[test]
    fn empty_report_exports_just_the_root() {
        let json = chrome_trace_json(&RunReport::empty());
        let Json::Arr(events) = &json else {
            unreachable!()
        };
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].req_str("name").unwrap(), "run");
    }
}
