//! The collection handle threaded through engines and tuners.
//!
//! A [`Collector`] is either *off* (the default — a `None` state, so
//! every call is a branch on a niche-optimized `Option` and returns
//! immediately, with no clock reads, no allocation, no locking) or
//! *recording* (an `Arc` around a shared state). Cloning is cheap
//! either way, so the same collector can be handed to an engine, its
//! worker closures, and a tuner at once.
//!
//! Recording keeps the two planes separate:
//!
//! - counters/gauges/labels go to a single [`Ledger`] behind a mutex —
//!   coarse recording (work-unit granularity, never per-slot) keeps
//!   that lock out of hot loops, and the ledger's commutative merges
//!   keep its JSON deterministic regardless of lock order;
//! - finished spans go to per-worker sinks (a fixed pool of vectors,
//!   picked by thread id), so concurrent workers almost never contend
//!   and never serialize behind one global buffer.

use crate::json::Json;
use crate::ledger::Ledger;
use crate::report::RunReport;
use crate::spans::{build_tree, scenario_top, SpanRecord};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Sink-pool width. Workers hash their thread id into this many
/// independent buffers; 64 comfortably exceeds the worker counts the
/// engine ever spawns, so collisions are rare and harmless (a shared
/// mutex, not corruption).
const SINK_SLOTS: usize = 64;

/// How many scenarios the run report ranks by span time.
const SCENARIO_TOP_N: usize = 10;

struct CollectorState {
    epoch: Instant,
    ledger: Mutex<Ledger>,
    sinks: Vec<Mutex<Vec<SpanRecord>>>,
}

/// Cloneable observability handle; off by default.
#[derive(Clone, Default)]
pub struct Collector {
    state: Option<Arc<CollectorState>>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Collector {
    /// The no-op collector: every recording call returns immediately.
    pub fn noop() -> Collector {
        Collector { state: None }
    }

    /// A recording collector with an empty ledger and running clock.
    pub fn recording() -> Collector {
        Collector {
            state: Some(Arc::new(CollectorState {
                epoch: Instant::now(),
                ledger: Mutex::new(Ledger::new()),
                sinks: (0..SINK_SLOTS).map(|_| Mutex::new(Vec::new())).collect(),
            })),
        }
    }

    /// Whether this collector records anything.
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Adds `n` to the run-level ledger counter `key` (`phase/name`).
    #[inline]
    pub fn count(&self, key: &str, n: u64) {
        if let Some(state) = &self.state {
            state.ledger.lock().unwrap().count(key, n);
        }
    }

    /// Adds `n` under `scenario` (and to the run total).
    #[inline]
    pub fn count_scenario(&self, scenario: &str, key: &str, n: u64) {
        if let Some(state) = &self.state {
            state
                .ledger
                .lock()
                .unwrap()
                .count_scenario(scenario, key, n);
        }
    }

    /// Records one observation into the ledger histogram `key`.
    /// Like counters, observations happen at work-unit granularity —
    /// never per-slot — so the ledger lock stays out of hot loops.
    #[inline]
    pub fn observe(&self, key: &str, value: f64) {
        if let Some(state) = &self.state {
            state.ledger.lock().unwrap().observe(key, value);
        }
    }

    /// Sets a ledger gauge.
    #[inline]
    pub fn gauge(&self, key: &str, value: u64) {
        if let Some(state) = &self.state {
            state.ledger.lock().unwrap().gauge(key, value);
        }
    }

    /// Sets a ledger label.
    #[inline]
    pub fn label(&self, key: &str, value: &str) {
        if let Some(state) = &self.state {
            state.ledger.lock().unwrap().label(key, value);
        }
    }

    /// Folds an externally built ledger in (shard workers build their
    /// own and merge on completion). A no-op when off.
    pub fn absorb_ledger(&self, other: &Ledger) -> Result<(), String> {
        match &self.state {
            Some(state) => state.ledger.lock().unwrap().merge(other),
            None => Ok(()),
        }
    }

    /// Opens a run-scoped span; it records on drop.
    #[inline]
    pub fn span(&self, path: &str) -> SpanGuard {
        self.open_span(path, None)
    }

    /// Opens a scenario-tagged span; it records on drop.
    #[inline]
    pub fn span_scenario(&self, path: &str, scenario: &str) -> SpanGuard {
        self.open_span(path, Some(scenario))
    }

    fn open_span(&self, path: &str, scenario: Option<&str>) -> SpanGuard {
        SpanGuard {
            live: self.state.as_ref().map(|state| LiveSpan {
                state: Arc::clone(state),
                path: path.to_string(),
                scenario: scenario.map(str::to_string),
                start: Instant::now(),
            }),
        }
    }

    /// A snapshot of the deterministic ledger (empty when off).
    pub fn ledger(&self) -> Ledger {
        match &self.state {
            Some(state) => state.ledger.lock().unwrap().clone(),
            None => Ledger::new(),
        }
    }

    /// Assembles the full run report: ledger snapshot, span tree,
    /// per-scenario top-{`SCENARIO_TOP_N`}, and wall time since this
    /// collector started recording. Empty (zero wall) when off.
    pub fn report(&self) -> RunReport {
        let Some(state) = &self.state else {
            return RunReport::empty();
        };
        let mut records = Vec::new();
        for sink in &state.sinks {
            records.extend(sink.lock().unwrap().iter().cloned());
        }
        RunReport {
            ledger: state.ledger.lock().unwrap().clone(),
            wall_ns: state.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            spans: build_tree(&records),
            scenario_top: scenario_top(&records, SCENARIO_TOP_N),
        }
    }

    /// `report()` rendered as a JSON document.
    pub fn report_json(&self) -> Json {
        self.report().to_json()
    }
}

struct LiveSpan {
    state: Arc<CollectorState>,
    path: String,
    scenario: Option<String>,
    start: Instant,
}

/// Drop guard for an open span. Holds nothing when the collector is
/// off, so opening and dropping it costs two branches and no clock
/// reads.
#[must_use = "a span measures the scope it lives in; dropping it immediately records ~0ns"]
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let dur_ns = live.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        let slot = (hasher.finish() as usize) % SINK_SLOTS;
        live.state.sinks[slot].lock().unwrap().push(SpanRecord {
            path: live.path,
            scenario: live.scenario,
            dur_ns,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_collector_records_nothing() {
        let collector = Collector::noop();
        assert!(!collector.is_enabled());
        collector.count("synth/trace_generations", 5);
        collector.observe("score/mape", 0.12);
        collector.gauge("admission/trace_budget_bytes", 1);
        collector.label("admission/trace_budget_source", "bounded");
        {
            let _span = collector.span("fleet/synthesis");
        }
        assert!(collector.ledger().is_empty());
        let report = collector.report();
        assert_eq!(report.wall_ns, 0);
        assert!(report.ledger.is_empty());
        assert!(report.spans.children.is_empty());
    }

    #[test]
    fn recording_collector_accumulates_counters_and_spans() {
        let collector = Collector::recording();
        assert!(collector.is_enabled());
        collector.count("jobs/evaluated", 3);
        collector.count_scenario("desert", "slots/processed", 96);
        collector.observe("fleet/unit_slots", 96.0);
        {
            let _outer = collector.span("fleet");
            let _inner = collector.span_scenario("fleet/simulate", "desert");
        }
        let report = collector.report();
        assert_eq!(report.ledger.counter("jobs/evaluated"), 3);
        assert_eq!(
            report.ledger.scenario_counter("desert", "slots/processed"),
            96
        );
        assert_eq!(
            report.ledger.histogram("fleet/unit_slots").unwrap().count(),
            1
        );
        let fleet = report
            .spans
            .children
            .iter()
            .find(|c| c.name == "fleet")
            .expect("fleet span recorded");
        assert_eq!(fleet.count, 1);
        assert_eq!(fleet.children[0].name, "simulate");
        assert_eq!(report.scenario_top.len(), 1);
        assert_eq!(report.scenario_top[0].scenario, "desert");
        assert!(report.wall_ns > 0);
    }

    #[test]
    fn clones_share_state() {
        let collector = Collector::recording();
        let clone = collector.clone();
        clone.count("jobs/evaluated", 2);
        assert_eq!(collector.ledger().counter("jobs/evaluated"), 2);
    }

    #[test]
    fn concurrent_recording_is_order_independent() {
        let collector = Collector::recording();
        let handles: Vec<_> = (0..8)
            .map(|worker| {
                let collector = collector.clone();
                std::thread::spawn(move || {
                    let scenario = format!("scenario-{}", worker % 3);
                    for _ in 0..100 {
                        collector.count_scenario(&scenario, "slots/processed", 1);
                        let _span = collector.span_scenario("fleet/simulate", &scenario);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let ledger = collector.ledger();
        assert_eq!(ledger.counter("slots/processed"), 800);
        // Same totals recorded serially yield byte-identical JSON.
        let serial = Collector::recording();
        for worker in 0..8 {
            let scenario = format!("scenario-{}", worker % 3);
            serial.count_scenario(&scenario, "slots/processed", 100);
        }
        assert_eq!(ledger.to_json_string(), serial.ledger().to_json_string());
        let report = collector.report();
        let simulate = &report.spans.children[0].children[0];
        assert_eq!(simulate.name, "simulate");
        assert_eq!(simulate.count, 800);
    }

    #[test]
    fn absorb_ledger_merges_and_respects_label_conflicts() {
        let collector = Collector::recording();
        collector.label("admission/trace_budget_source", "bounded");
        let mut shard = Ledger::new();
        shard.count("merge/scenario_tables", 100);
        collector.absorb_ledger(&shard).unwrap();
        assert_eq!(collector.ledger().counter("merge/scenario_tables"), 100);
        let mut conflicting = Ledger::new();
        conflicting.label("admission/trace_budget_source", "unbounded");
        assert!(collector.absorb_ledger(&conflicting).is_err());
        // No-op absorb always succeeds.
        assert!(Collector::noop().absorb_ledger(&conflicting).is_ok());
    }
}
